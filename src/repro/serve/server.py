"""The serving driver loop: multi-tenant inference over one SoC.

This is the layer the paper's Sec. V experiments gesture at ("multiple
applications run concurrently on the same SoC, invoking different
accelerator pipelines") turned into an explicit subsystem: tenants
register dataflows, requests arrive over time, and the server
coalesces, arbitrates and dispatches them as concurrent execution
plans over disjoint tile sets.

Data path of one request::

    submit() -> RequestQueue (admission control, backpressure)
             -> per-tenant batch loop (Batcher: coalesce + pad)
             -> TileArbiter.acquire (all-or-nothing tile grant)
             -> DataflowExecutor.run_process (re-entrant plan)
             -> TileArbiter.release + Completion (latency breakdown)

Attribution: the arbiter guarantees a tenant owns its tiles
exclusively between grant and release, so the hardware-counter delta
over that window (``tile_activity``) is exactly that tenant's
activity — per-tenant utilization without sampling.

Fault integration: when a run degrades (or dies), every device the
registry marked failed is handed back to the arbiter as *unavailable*.
Tenants whose pipelines need a failed tile keep being served through
the runtime's software fallback when the recovery policy allows it,
and are rejected with ``tile-unavailable`` when it does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from ..eval.harness import LatencySummary, summarize_latencies
from ..runtime import Dataflow, DataflowExecutor, EspRuntime
from ..sim import Environment, Interrupt, Process, ProgressCounter
from ..soc import (CoherenceMode, TileActivity, activity_delta,
                   tile_activity)
from ..trace.context import (TraceContext, TraceIdAllocator,
                             batch_trace_ids)
from .arbiter import TileArbiter, TileUnavailable
from .batcher import Batch, Batcher
from .queue import RequestQueue
from .request import (
    Completion,
    Failure,
    InferenceRequest,
    REJECT_TILE_UNAVAILABLE,
    Rejection,
    TracedRequest,
)


def _trace_args(requests) -> Dict[str, object]:
    """Span args attributing batch-level work to its member requests:
    the primary ``trace_id`` plus the full ``trace_ids`` membership
    when the batch coalesced more than one."""
    ids = batch_trace_ids(requests)
    if not ids:
        return {}
    if len(ids) == 1:
        return {"trace_id": ids[0]}
    return {"trace_id": ids[0], "trace_ids": ids}


@dataclass(frozen=True)
class TenantConfig:
    """One registered application: a dataflow plus serving knobs."""

    name: str
    dataflow: Dataflow
    mode: str = "p2p"
    priority: int = 0
    max_batch_frames: int = 32
    #: After the first request arrives, wait this long for more to
    #: coalesce before dispatching (0 = dispatch immediately).
    batch_window_cycles: int = 0
    #: DMA coherence for the tenant's runs: a single
    #: :class:`~repro.soc.CoherenceMode` (or string value), or a
    #: ``device -> mode`` mapping. ``None`` falls back to the
    #: deprecated ``coherent`` boolean below.
    coherence: Optional[object] = None
    coherent: bool = False
    dvfs: Optional[Dict[str, int]] = None


@dataclass(frozen=True)
class ServerConfig:
    """Global serving knobs."""

    max_queue_depth: int = 64
    policy: str = "fifo"             # tile-arbitration policy
    #: Bound on the posted-store quiesce of each request (see
    #: ``DataflowExecutor.quiesce_bound``); ``None`` waits fully.
    quiesce_bound: Optional[int] = None
    #: Probation delay for quarantined tiles (``None`` keeps the
    #: permanent quarantine). On re-admission the server resets the
    #: tile and clears its failed mark before the arbiter grants it.
    probation_cycles: Optional[int] = None


@dataclass
class _Tenant:
    """Server-internal per-tenant state."""

    config: TenantConfig
    batcher: Batcher
    tiles: FrozenSet[str]
    input_words: int
    est_cycles_per_frame: int
    activity: Dict[str, TileActivity] = field(default_factory=dict)
    batches_served: int = 0
    frames_served: int = 0
    #: True while a batch is between drain and release: a reshard
    #: arriving then is deferred to the next loop iteration.
    in_flight: bool = False
    #: Frames of the batch currently in flight (0 between batches) —
    #: the router's view of work already committed to the hardware.
    in_flight_frames: int = 0
    pending_reshard: Optional[TenantConfig] = None
    reshards: int = 0


@dataclass(frozen=True)
class ServerLoad:
    """One server's scheduler-visible load, at one instant.

    The introspection surface a fleet router balances on: what is
    queued (admitted but not yet drained into a batch), what is in
    flight (drained, tiles held, hardware busy), and a cycle-valued
    backlog estimate combining both through each tenant's
    ``est_cycles_per_frame`` pipeline estimate. Reading it never
    schedules events — it is a pure snapshot, usable mid-simulation.
    """

    queued_requests: int
    queued_frames: int
    in_flight_batches: int
    in_flight_frames: int
    #: Estimated cycles to drain everything queued plus in flight.
    est_backlog_cycles: int

    @property
    def outstanding_frames(self) -> int:
        """Queued + in-flight frames (the least-loaded score)."""
        return self.queued_frames + self.in_flight_frames


@dataclass
class ServerReport:
    """Everything one serving run measured."""

    clock_mhz: float
    makespan_cycles: int
    completions: List[Completion]
    rejections: List[Rejection]
    failures: List[Failure]
    latency_by_tenant: Dict[str, LatencySummary]
    queue_by_tenant: Dict[str, LatencySummary]
    activity_by_tenant: Dict[str, Dict[str, TileActivity]]
    batches_by_tenant: Dict[str, int]
    admitted: int
    peak_queue_depth: int
    arbiter_grants: int
    arbiter_wait_summary: Optional[LatencySummary]

    @property
    def completed_frames(self) -> int:
        return sum(c.n_frames for c in self.completions)

    @property
    def makespan_seconds(self) -> float:
        return self.makespan_cycles / (self.clock_mhz * 1e6)

    @property
    def throughput_fps(self) -> float:
        """Aggregate frames per second over the serving window."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.completed_frames / self.makespan_seconds

    def latency_summary(self) -> Optional[LatencySummary]:
        """Aggregate (all-tenant) request latency, in cycles."""
        if not self.completions:
            return None
        return summarize_latencies(
            [c.latency_cycles for c in self.completions])

    def render(self) -> str:
        us = 1.0 / self.clock_mhz   # cycles -> microseconds
        lines = [
            f"== serving report: {len(self.completions)} completed, "
            f"{len(self.rejections)} rejected, "
            f"{len(self.failures)} failed ==",
            f"makespan: {self.makespan_cycles:,} cycles "
            f"({self.makespan_seconds * 1e3:.2f} ms); aggregate "
            f"throughput: {self.throughput_fps:.1f} frames/s",
            f"{'tenant':<12}{'reqs':>6}{'batches':>8}{'p50 us':>10}"
            f"{'p95 us':>10}{'p99 us':>10}{'max us':>10}",
        ]
        for tenant, summary in sorted(self.latency_by_tenant.items()):
            s = summary.scaled(us)
            lines.append(
                f"{tenant:<12}{summary.count:>6}"
                f"{self.batches_by_tenant.get(tenant, 0):>8}"
                f"{s.p50:>10.1f}{s.p95:>10.1f}{s.p99:>10.1f}"
                f"{s.max:>10.1f}")
        for tenant, activity in sorted(self.activity_by_tenant.items()):
            busy = sum(a.busy_cycles for a in activity.values())
            frames = sum(a.frames for a in activity.values())
            lines.append(f"  {tenant}: {frames} device-frames, "
                         f"{busy:,} busy cycles across "
                         f"{len(activity)} tiles")
        lines.append(f"queue: {self.admitted} admitted, peak depth "
                     f"{self.peak_queue_depth}; arbiter: "
                     f"{self.arbiter_grants} grants"
                     + (f", wait {self.arbiter_wait_summary}"
                        if self.arbiter_wait_summary else ""))
        return "\n".join(lines)


class InferenceServer:
    """Multi-tenant serving over one booted SoC runtime."""

    def __init__(self, runtime: EspRuntime,
                 config: Optional[ServerConfig] = None) -> None:
        self.runtime = runtime
        self.executor: DataflowExecutor = runtime.executor
        self.soc = runtime.soc
        self.env: Environment = runtime.soc.env
        self.config = config or ServerConfig()
        self.executor.quiesce_bound = self.config.quiesce_bound
        self.queue = RequestQueue(self.config.max_queue_depth)
        self.queue.on_admit = self._on_admit
        self.arbiter = TileArbiter(
            self.env, sorted(self.soc.accelerators),
            policy=self.config.policy,
            probation_cycles=self.config.probation_cycles)
        self.arbiter.on_readmit = self.repair_tile
        self._tenants: Dict[str, _Tenant] = {}
        self._loops: List[Process] = []
        self._work: Dict[str, object] = {}
        self._terminal = ProgressCounter(self.env, name="serve:terminal")
        self._grant_waits: List[int] = []
        self._request_sids: Dict[str, int] = {}
        # Deterministic per-server trace-ID mint ("t-0", "t-1", ...);
        # a fleet router supplies its own context, so routed requests
        # never draw from this counter.
        self._trace_ids = TraceIdAllocator("t")
        self._started = False
        self.completions: List[Completion] = []
        self.rejections: List[Rejection] = []
        self.failures: List[Failure] = []

    # -- registration ---------------------------------------------------------

    def register(self, config: TenantConfig) -> None:
        """Register a tenant; validates its dataflow against the SoC."""
        if self._started:
            raise RuntimeError("register tenants before starting the "
                               "server")
        if config.name in self._tenants:
            raise ValueError(f"tenant {config.name!r} already registered")
        input_words, est = self._pipeline_estimates(config.dataflow)
        tenant = _Tenant(
            config=config,
            batcher=Batcher(config.dataflow,
                            max_batch_frames=config.max_batch_frames),
            tiles=frozenset(config.dataflow.devices),
            input_words=input_words,
            est_cycles_per_frame=est,
        )
        self._tenants[config.name] = tenant
        self.queue.register(config.name, input_words)

    def _pipeline_estimates(self, dataflow: Dataflow) -> tuple:
        """``(input_words, est_cycles_per_frame)`` for a dataflow;
        validates every device against the registry."""
        registry = self.executor.registry
        for device in dataflow.devices:
            registry.by_name(device)   # raises on unknown devices
        levels = dataflow.levels()
        first = registry.by_name(levels[0][0])
        est = 0
        for names in levels:
            spec = registry.by_name(names[0]).tile.spec
            est += max(1, spec.latency_cycles // len(names))
        return first.tile.spec.input_words, est

    @property
    def tenants(self) -> List[str]:
        return sorted(self._tenants)

    def tenant_tiles(self) -> Dict[str, FrozenSet[str]]:
        """Target tile set per tenant: where each tenant is *headed* —
        a pending (deferred) reshard counts, so a controller does not
        re-remediate a swap that is already scheduled. The tiles a
        dispatch actually holds are snapshotted in ``_dispatch``."""
        placed = {}
        for name, tenant in self._tenants.items():
            config = tenant.pending_reshard or tenant.config
            placed[name] = frozenset(config.dataflow.devices)
        return placed

    def batch_bound(self, name: str) -> int:
        """A tenant's current ``max_batch_frames`` (widening included)."""
        return self._tenants[name].batcher.max_batch_frames

    # -- load introspection (the fleet router's view) -------------------------

    def load(self) -> ServerLoad:
        """Snapshot this server's queued + in-flight load.

        Pure read — no events, no clock movement — so a router may
        call it between lockstep advances without perturbing the sim.
        """
        queued_requests = 0
        queued_frames = 0
        in_flight_batches = 0
        in_flight_frames = 0
        backlog = 0
        for name, tenant in self._tenants.items():
            requests, frames = self.queue.tenant_backlog(name)
            queued_requests += requests
            queued_frames += frames
            backlog += frames * tenant.est_cycles_per_frame
            if tenant.in_flight:
                in_flight_batches += 1
                in_flight_frames += tenant.in_flight_frames
                backlog += (tenant.in_flight_frames
                            * tenant.est_cycles_per_frame)
        return ServerLoad(
            queued_requests=queued_requests,
            queued_frames=queued_frames,
            in_flight_batches=in_flight_batches,
            in_flight_frames=in_flight_frames,
            est_backlog_cycles=backlog,
        )

    @property
    def terminal_count(self) -> int:
        """Requests that reached a terminal state (completed, failed,
        or rejected after admission) since boot."""
        return self._terminal.value

    def wait_terminal(self, threshold: int):
        """Event triggering once ``terminal_count`` reaches ``threshold``
        (the fleet coordinator's drain barrier)."""
        return self._terminal.wait_until(threshold)

    # -- remediation hooks (driven by the control plane) ----------------------

    def reshard_tenant(self, name: str,
                       mapping: Dict[str, str]) -> str:
        """Re-place a tenant's pipeline onto substitute tiles.

        ``mapping`` renames devices of the tenant's dataflow (old ->
        new); each substitute must implement the same kernel (equal
        spec) so the pipeline's geometry and semantics are unchanged —
        the paper's runtime reconfigurability, exercised to move a
        tenant off a saturated or quarantined tile. Validation happens
        here; the swap itself lands between batches (a batch in flight
        keeps its tiles until it releases them). Returns ``"applied"``
        or ``"deferred"``.
        """
        tenant = self._tenants.get(name)
        if tenant is None:
            raise KeyError(f"no tenant named {name!r}")
        registry = self.executor.registry
        base = tenant.pending_reshard or tenant.config
        for old, new in mapping.items():
            old_spec = registry.by_name(old).spec_name
            new_spec = registry.by_name(new).spec_name
            if old_spec != new_spec:
                raise ValueError(
                    f"cannot reshard {old!r} ({old_spec}) onto "
                    f"{new!r} ({new_spec}): different kernels")
        dataflow = base.dataflow.substitute(mapping)
        if base.mode == "p2p":
            dataflow.validate_for_p2p()
        elif base.mode == "custom":
            dataflow.validate_for_custom()
        else:
            dataflow.validate()
        tenant.pending_reshard = replace(base, dataflow=dataflow)
        if tenant.in_flight:
            return "deferred"
        self._apply_reshard(tenant)
        return "applied"

    def _apply_reshard(self, tenant: _Tenant) -> None:
        config = tenant.pending_reshard
        if config is None:
            return
        tenant.pending_reshard = None
        input_words, est = self._pipeline_estimates(config.dataflow)
        # Keep a widened batch bound across the reshard.
        max_frames = max(tenant.batcher.max_batch_frames,
                         config.max_batch_frames)
        tenant.config = config
        tenant.batcher = Batcher(config.dataflow,
                                 max_batch_frames=max_frames)
        tenant.tiles = frozenset(config.dataflow.devices)
        tenant.input_words = input_words
        tenant.est_cycles_per_frame = est
        tenant.reshards += 1

    def widen_batch(self, name: str, factor: float = 2.0,
                    cap: int = 256) -> int:
        """Grow a tenant's batch bound (queue-saturation remediation);
        returns the new ``max_batch_frames``."""
        tenant = self._tenants.get(name)
        if tenant is None:
            raise KeyError(f"no tenant named {name!r}")
        return tenant.batcher.widen(factor, cap)

    def repair_tile(self, tile: str) -> None:
        """Reset a tile and clear its failure state (probation
        re-admission, or the control plane activating a spare)."""
        self.soc.accelerators[tile].host_reset()
        self.executor.registry.clear_failed(tile)
        self.executor.clear_forced(tile)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Spawn the per-tenant batch loops (idempotent)."""
        if self._started:
            return
        if not self._tenants:
            raise RuntimeError("no tenants registered")
        self._started = True
        for name in sorted(self._tenants):
            self._loops.append(self.env.process(
                self._tenant_loop(self._tenants[name]),
                name=f"serve:loop:{name}"))

    def stop(self) -> None:
        """Cancel the batch loops (they park between batches)."""
        for loop in self._loops:
            if loop.is_alive:
                loop.interrupt("server stopped")
        self._loops = []
        self._started = False

    # -- submission -------------------------------------------------------------

    def submit(self, tenant: str, frames: np.ndarray,
               priority: int = 0,
               trace_ctx: Optional[TraceContext] = None
               ) -> Optional[Rejection]:
        """Submit one request now; ``None`` on admission.

        A :class:`Rejection` (also recorded on the server) means the
        request never entered the system — backpressure the client
        observes immediately. ``trace_ctx`` propagates an upstream
        trace identity (the fleet router's); when absent the server
        mints one — either way the request carries exactly one
        ``trace_id`` for its whole life.
        """
        if trace_ctx is None:
            trace_ctx = self._trace_ids.mint()
        request = InferenceRequest(tenant=tenant, frames=frames,
                                   priority=priority,
                                   trace_ctx=trace_ctx)
        rejection = self.queue.submit(request, now=self.env.now)
        metrics = self.env.metrics
        if rejection is not None:
            self.rejections.append(rejection)
            if metrics is not None:
                metrics.serve_rejected.labels(tenant,
                                              rejection.reason).inc()
            return rejection
        if metrics is not None:
            metrics.serve_admitted.labels(tenant).inc()
            metrics.serve_queue_depth.set(self.queue.depth)
        tracer = self.env.tracer
        if tracer is not None:
            self._request_sids[request.request_id] = tracer.begin(
                "serve", f"tenant:{tenant}", request.request_id,
                "serve.request", tenant=tenant,
                frames=request.n_frames, priority=priority,
                trace_id=trace_ctx.trace_id)
            tracer.instant("serve", f"tenant:{tenant}", "admit",
                           "serve.submit", request=request.request_id,
                           trace_id=trace_ctx.trace_id)
            tracer.counter("serve", "queue_depth",
                           depth=self.queue.depth)
        return None

    def _end_request_span(self, request_id: str, outcome: str) -> None:
        """Close a request's trace span at its terminal state."""
        sid = self._request_sids.pop(request_id, None)
        if sid is not None and self.env.tracer is not None:
            self.env.tracer.end(sid, outcome=outcome)

    def _on_admit(self, request: InferenceRequest) -> None:
        event = self._work.get(request.tenant)
        if event is not None and not event.triggered:
            event.succeed()

    # -- the per-tenant batch loop ------------------------------------------------

    def _can_degrade(self) -> bool:
        policy = self.executor.recovery
        return policy is not None and policy.software_fallback

    def _tenant_loop(self, tenant: _Tenant):
        env = self.env
        name = tenant.config.name
        while True:
            while self.queue.tenant_depth(name) == 0:
                event = env.event()
                event.wait_reason = f"serve:{name} waiting for requests"
                self._work[name] = event
                yield event
            if tenant.config.batch_window_cycles:
                yield env.timeout(tenant.config.batch_window_cycles)
            self._apply_reshard(tenant)
            tenant.in_flight = True
            requests = self.queue.drain(
                name, tenant.batcher.max_batch_frames)
            if env.metrics is not None:
                env.metrics.serve_queue_depth.set(self.queue.depth)
                env.metrics.serve_batches.labels(name).inc()
            if env.tracer is not None:
                env.tracer.counter("serve", "queue_depth",
                                   depth=self.queue.depth)
                env.tracer.instant("serve", f"tenant:{name}", "batch",
                                   "serve.batch", requests=len(requests),
                                   **_trace_args(requests))
            batch = tenant.batcher.form(requests)
            tenant.in_flight_frames = batch.total_frames
            granted = yield from self._acquire_tiles(tenant, batch)
            if granted:
                yield from self._dispatch(tenant, batch)
            tenant.in_flight = False
            tenant.in_flight_frames = 0

    def _acquire_tiles(self, tenant: _Tenant, batch: Batch):
        """All-or-nothing grant of the tenant's tile set.

        Returns True when granted. When a needed tile is unavailable
        (failed), retries the claim in degraded mode if the recovery
        policy supports software fallback, else rejects the batch.
        """
        env = self.env
        priority = max([tenant.config.priority]
                       + [r.priority for r in batch.requests])
        est = tenant.est_cycles_per_frame * batch.total_frames
        queued = env.now
        tracer = env.tracer
        sid = None if tracer is None else tracer.begin(
            "serve", f"tenant:{tenant.config.name}", "grant-wait",
            "serve.grant_wait", tiles=len(tenant.tiles),
            **_trace_args(batch.requests))
        claim = self.arbiter.acquire(
            tenant.tiles, priority=priority, est_cycles=est,
            label=tenant.config.name)
        try:
            yield claim
        except TileUnavailable as exc:
            if not self._can_degrade():
                if sid is not None:
                    tracer.end(sid, granted=False)
                for request in batch.requests:
                    self.rejections.append(Rejection(
                        request_id=request.request_id,
                        tenant=request.tenant,
                        reason=REJECT_TILE_UNAVAILABLE, at=env.now,
                        detail=str(exc)))
                    if env.metrics is not None:
                        env.metrics.serve_rejected.labels(
                            request.tenant,
                            REJECT_TILE_UNAVAILABLE).inc()
                    self._end_request_span(request.request_id,
                                           "rejected")
                    self._terminal.increment()
                return False
            claim = self.arbiter.acquire(
                tenant.tiles, priority=priority, est_cycles=est,
                allow_unavailable=True, label=tenant.config.name)
            yield claim
        if sid is not None:
            tracer.end(sid, granted=True)
        self._grant_waits.append(env.now - queued)
        return True

    def _dispatch(self, tenant: _Tenant, batch: Batch):
        """Run one coalesced batch; always releases the tile set."""
        env = self.env
        config = tenant.config
        started = env.now
        # Snapshot the tile set: a reshard landing mid-dispatch swaps
        # ``tenant.tiles``, but *these* tiles are the ones held.
        tiles = tenant.tiles
        names = sorted(tiles)
        before = tile_activity(self.soc, names)
        tracer = env.tracer
        sid = None
        bound_keys: List[object] = []
        if tracer is not None:
            sid = tracer.begin(
                "serve", f"tenant:{config.name}", "dispatch",
                "serve.dispatch", mode=config.mode,
                frames=batch.total_frames, requests=batch.n_requests,
                **_trace_args(batch.requests))
            # Bind the exclusively-granted tile set to this batch's
            # trace IDs: every span the hardware records against these
            # devices (wrapper phases, DMA bursts, driver threads, NoC
            # packets to/from the tiles' coordinates) is annotated
            # with the batch's trace_id until the tiles release.
            ids = batch_trace_ids(batch.requests)
            if ids:
                for device in names:
                    bound_keys.append(device)
                    bound_keys.append(("cpu", f"driver:{device}"))
                    socket = self.soc.accelerators.get(device)
                    if socket is not None:
                        bound_keys.append(str(socket.coord))
                for key in bound_keys:
                    tracer.bind(key, ids)
        error: Optional[BaseException] = None
        result = None
        try:
            coherence = config.coherence
            if coherence is None and config.coherent:
                coherence = CoherenceMode.LLC_COHERENT
            result = yield from self.executor.run_process(
                config.dataflow, batch.frames, config.mode,
                coherence=coherence, dvfs=config.dvfs)
        except Interrupt:
            if sid is not None:
                for key in bound_keys:
                    tracer.unbind(key)
                tracer.end(sid, outcome="interrupted")
            self.arbiter.release(tiles)
            raise
        except Exception as exc:
            error = exc
        # Attribute the exclusive-ownership window's hardware activity.
        delta = activity_delta(before, tile_activity(self.soc, names))
        for device, activity in delta.items():
            held = tenant.activity.get(device)
            tenant.activity[device] = \
                activity if held is None else held + activity
        self.arbiter.release(tiles)
        self._quarantine_failed(tiles)
        if sid is not None:
            for key in bound_keys:
                tracer.unbind(key)
            tracer.end(sid, outcome="failed" if error else "completed")
        if error is not None:
            for request in batch.requests:
                self.failures.append(Failure(
                    request_id=request.request_id,
                    tenant=request.tenant,
                    submitted_at=request.submitted_at,
                    failed_at=env.now, error=error))
                if env.metrics is not None:
                    env.metrics.serve_failed.labels(
                        request.tenant).inc()
                self._end_request_span(request.request_id, "failed")
                self._terminal.increment()
            return
        tenant.batches_served += 1
        tenant.frames_served += batch.real_frames
        for request, outputs in batch.split_outputs(result.outputs):
            completion = Completion(
                request_id=request.request_id,
                tenant=request.tenant,
                submitted_at=request.submitted_at,
                started_at=started,
                completed_at=env.now,
                n_frames=request.n_frames,
                batch_frames=batch.total_frames,
                batch_requests=batch.n_requests,
                degraded=result.degraded,
                outputs=np.array(outputs, copy=True))
            self.completions.append(completion)
            if env.metrics is not None:
                metrics = env.metrics
                exemplar = (None if request.trace_ctx is None
                            else request.trace_ctx.trace_id)
                metrics.serve_completed.labels(request.tenant).inc()
                metrics.serve_frames.labels(request.tenant).inc(
                    request.n_frames)
                metrics.serve_request_cycles.labels(
                    request.tenant).observe(completion.latency_cycles,
                                            exemplar=exemplar)
                metrics.serve_queue_wait_cycles.labels(
                    request.tenant).observe(completion.queue_cycles,
                                            exemplar=exemplar)
            self._end_request_span(request.request_id, "completed")
            self._terminal.increment()

    def _quarantine_failed(self, tiles: FrozenSet[str]) -> None:
        registry = self.executor.registry
        for device in tiles:
            if registry.is_failed(device) \
                    and device not in self.arbiter.unavailable_tiles:
                self.arbiter.mark_unavailable(device)

    # -- trace driving --------------------------------------------------------------

    def run_trace(self, trace: Sequence[TracedRequest]) -> ServerReport:
        """Drive a timestamped request trace to completion.

        Submits each entry at ``start + entry.at`` cycles, waits until
        every admitted request reached a terminal state (completed,
        failed, or rejected post-admission), then stops the loops and
        returns the report. Owns the event loop while running, like
        ``DataflowExecutor.execute``.
        """
        env = self.env
        self.start()
        # Per-run statistics: peak depth and admission counters in the
        # report describe *this* trace, not every trace since boot.
        self.queue.reset_stats()
        origin = env.now

        def driver():
            for entry in sorted(trace, key=lambda t: t.at):
                target = origin + entry.at
                if target > env.now:
                    yield env.timeout(target - env.now)
                self.submit(entry.tenant, entry.frames,
                            priority=entry.priority)
            return None

        submitted_before = self.queue.admitted
        terminal_before = self._terminal.value
        done = env.process(driver(), name="serve:trace-driver")
        env.run(until=done)
        admitted = self.queue.admitted - submitted_before
        env.run(until=self._terminal.wait_until(
            terminal_before + admitted))
        self.stop()
        return self.report(makespan_cycles=env.now - origin)

    # -- reporting --------------------------------------------------------------------

    def report(self, makespan_cycles: Optional[int] = None
               ) -> ServerReport:
        by_tenant: Dict[str, List[int]] = {}
        queue_by_tenant: Dict[str, List[int]] = {}
        for completion in self.completions:
            by_tenant.setdefault(completion.tenant, []).append(
                completion.latency_cycles)
            queue_by_tenant.setdefault(completion.tenant, []).append(
                completion.queue_cycles)
        if makespan_cycles is None:
            if self.completions:
                first = min(c.submitted_at for c in self.completions)
                last = max(c.completed_at for c in self.completions)
                makespan_cycles = last - first
            else:
                makespan_cycles = 0
        return ServerReport(
            clock_mhz=self.soc.clock_mhz,
            makespan_cycles=makespan_cycles,
            completions=list(self.completions),
            rejections=list(self.rejections),
            failures=list(self.failures),
            latency_by_tenant={t: summarize_latencies(v)
                               for t, v in sorted(by_tenant.items())},
            queue_by_tenant={t: summarize_latencies(v)
                             for t, v in sorted(queue_by_tenant.items())},
            activity_by_tenant={t: dict(self._tenants[t].activity)
                                for t in self._tenants},
            batches_by_tenant={t: self._tenants[t].batches_served
                               for t in self._tenants},
            admitted=self.queue.admitted,
            peak_queue_depth=self.queue.peak_depth,
            arbiter_grants=self.arbiter.grants,
            arbiter_wait_summary=(summarize_latencies(self._grant_waits)
                                  if self._grant_waits else None),
        )
