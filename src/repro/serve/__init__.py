"""Multi-tenant inference serving over the simulated SoC.

Builds the paper's concurrent-application story (Sec. V) into an
explicit subsystem: request queueing with admission control and
backpressure, batching that coalesces compatible requests into
multi-frame invocations, tile arbitration with pluggable scheduling
policies, and a trace-driven server loop reporting per-tenant tail
latency and aggregate throughput.
"""

from .arbiter import ARBITER_POLICIES, TileArbiter, TileUnavailable
from .batcher import Batch, Batcher, frame_quantum
from .queue import RequestQueue
from .request import (
    Completion,
    Failure,
    InferenceRequest,
    REJECT_BAD_SHAPE,
    REJECT_QUEUE_FULL,
    REJECT_REASONS,
    REJECT_TILE_UNAVAILABLE,
    REJECT_UNKNOWN_TENANT,
    Rejection,
    TracedRequest,
)
from .server import (
    InferenceServer,
    ServerConfig,
    ServerLoad,
    ServerReport,
    TenantConfig,
)

__all__ = [
    "ARBITER_POLICIES",
    "Batch",
    "Batcher",
    "Completion",
    "Failure",
    "InferenceRequest",
    "InferenceServer",
    "REJECT_BAD_SHAPE",
    "REJECT_QUEUE_FULL",
    "REJECT_REASONS",
    "REJECT_TILE_UNAVAILABLE",
    "REJECT_UNKNOWN_TENANT",
    "Rejection",
    "RequestQueue",
    "ServerConfig",
    "ServerLoad",
    "ServerReport",
    "TenantConfig",
    "TileArbiter",
    "TileUnavailable",
    "TracedRequest",
    "frame_quantum",
]
