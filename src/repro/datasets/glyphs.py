"""Digit glyph bitmaps used by the synthetic SVHN generator.

Each digit is a 7x5 binary matrix (classic seven-row font). The
generator scales, shifts and distorts these into 32x32 frames.
"""

from __future__ import annotations

import numpy as np

_GLYPH_ART = {
    0: ("01110",
        "10001",
        "10011",
        "10101",
        "11001",
        "10001",
        "01110"),
    1: ("00100",
        "01100",
        "00100",
        "00100",
        "00100",
        "00100",
        "01110"),
    2: ("01110",
        "10001",
        "00001",
        "00010",
        "00100",
        "01000",
        "11111"),
    3: ("11111",
        "00010",
        "00100",
        "00010",
        "00001",
        "10001",
        "01110"),
    4: ("00010",
        "00110",
        "01010",
        "10010",
        "11111",
        "00010",
        "00010"),
    5: ("11111",
        "10000",
        "11110",
        "00001",
        "00001",
        "10001",
        "01110"),
    6: ("00110",
        "01000",
        "10000",
        "11110",
        "10001",
        "10001",
        "01110"),
    7: ("11111",
        "00001",
        "00010",
        "00100",
        "01000",
        "01000",
        "01000"),
    8: ("01110",
        "10001",
        "10001",
        "01110",
        "10001",
        "10001",
        "01110"),
    9: ("01110",
        "10001",
        "10001",
        "01111",
        "00001",
        "00010",
        "01100"),
}

GLYPH_ROWS = 7
GLYPH_COLS = 5


def glyph(digit: int) -> np.ndarray:
    """The 7x5 binary bitmap for ``digit`` (0-9), as float64 {0,1}."""
    if digit not in _GLYPH_ART:
        raise ValueError(f"digit must be 0-9, got {digit}")
    rows = _GLYPH_ART[digit]
    return np.array([[float(c) for c in row] for row in rows])


def all_glyphs() -> np.ndarray:
    """Stacked (10, 7, 5) array of every digit bitmap."""
    return np.stack([glyph(d) for d in range(10)])
