"""Synthetic Street View House Numbers (SVHN) generator.

The paper evaluates on SVHN, "a real-world image dataset obtained from
Google Street View pictures ... the problems get significantly more
laborious due to the environmental noise in the pictures (including
shadows and distortions)" (Sec. VI). The dataset itself is not
shippable here, so this module procedurally generates frames with the
same tensor shapes (32x32 grayscale, flattened to 1024), the same label
structure (10 digit classes) and the same nuisance factors: background
gradients, distractor digits at the crop edges, shadows, geometric
distortion and sensor noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .glyphs import GLYPH_COLS, GLYPH_ROWS, glyph
from .transforms import FRAME_SIDE

N_CLASSES = 10


@dataclass(frozen=True)
class SvhnConfig:
    """Knobs for the synthetic generator.

    The defaults produce a task difficulty on which the paper's MLP
    reaches accuracy in the same band the paper reports (92%).
    """

    side: int = FRAME_SIDE
    noise_stddev: float = 0.06
    shadow_prob: float = 0.5
    distractor_prob: float = 0.6
    distortion: float = 0.15
    min_scale: float = 2.4
    max_scale: float = 3.6
    contrast_low: float = 0.55
    contrast_high: float = 1.0


def _paste_glyph(frame: np.ndarray, digit: int, center: Tuple[float, float],
                 scale: float, shear: float, intensity: float,
                 rng: np.random.Generator) -> None:
    """Rasterize ``digit`` into ``frame`` with scale/shear distortion."""
    bitmap = glyph(digit)
    height = int(round(GLYPH_ROWS * scale))
    width = int(round(GLYPH_COLS * scale))
    rows = np.arange(height) / scale
    cols = np.arange(width) / scale
    row_idx = np.clip(rows.astype(int), 0, GLYPH_ROWS - 1)
    col_idx = np.clip(cols.astype(int), 0, GLYPH_COLS - 1)
    patch = bitmap[np.ix_(row_idx, col_idx)] * intensity

    top = int(round(center[0] - height / 2))
    left_base = center[1] - width / 2
    side = frame.shape[0]
    for r in range(height):
        fr = top + r
        if not 0 <= fr < side:
            continue
        # Horizontal shear: each row shifts proportionally to its offset
        # from the glyph's vertical center (perspective-like distortion).
        shift = shear * (r - height / 2)
        left = int(round(left_base + shift))
        for c in range(width):
            fc = left + c
            if 0 <= fc < side and patch[r, c] > 0:
                frame[fr, fc] = max(frame[fr, fc], patch[r, c])


def _background(side: int, rng: np.random.Generator) -> np.ndarray:
    """Low-frequency background: gradient plus a soft blob."""
    base = rng.uniform(0.05, 0.35)
    gx, gy = rng.uniform(-0.15, 0.15, size=2)
    rows = np.linspace(-0.5, 0.5, side)
    cols = np.linspace(-0.5, 0.5, side)
    frame = base + gx * rows[:, None] + gy * cols[None, :]
    # Soft blob (street-lamp glare / wall texture).
    cr, cc = rng.uniform(0, side, size=2)
    rr = rows[:, None] * side + side / 2 - cr
    cc_grid = cols[None, :] * side + side / 2 - cc
    radius = rng.uniform(side / 4, side)
    frame += rng.uniform(-0.1, 0.15) * np.exp(
        -(rr ** 2 + cc_grid ** 2) / (2 * radius ** 2))
    return frame


def _shadow(frame: np.ndarray, rng: np.random.Generator) -> None:
    """Darken one half-plane of the frame (cast shadow)."""
    side = frame.shape[0]
    angle = rng.uniform(0, 2 * np.pi)
    normal = np.array([np.cos(angle), np.sin(angle)])
    offset = rng.uniform(-side / 4, side / 4)
    rows, cols = np.mgrid[0:side, 0:side]
    proj = (rows - side / 2) * normal[0] + (cols - side / 2) * normal[1]
    mask = proj > offset
    frame[mask] *= rng.uniform(0.4, 0.75)


def generate_frame(digit: int, rng: np.random.Generator,
                   config: SvhnConfig = SvhnConfig()) -> np.ndarray:
    """One synthetic SVHN frame for ``digit``; values in [0, 1]."""
    side = config.side
    frame = _background(side, rng)

    # Distractor digits clipped at the crop edges, as in real SVHN where
    # neighbouring house-number digits intrude into the 32x32 crop.
    if rng.random() < config.distractor_prob:
        edge_center = (rng.uniform(0, side),
                       rng.choice([rng.uniform(-4, 2),
                                   rng.uniform(side - 2, side + 4)]))
        _paste_glyph(frame, int(rng.integers(0, N_CLASSES)), edge_center,
                     scale=rng.uniform(config.min_scale, config.max_scale),
                     shear=rng.uniform(-config.distortion, config.distortion),
                     intensity=rng.uniform(0.5, 0.9), rng=rng)

    # The labelled digit, roughly centered.
    center = (side / 2 + rng.uniform(-3, 3), side / 2 + rng.uniform(-3, 3))
    intensity = rng.uniform(config.contrast_low, config.contrast_high)
    _paste_glyph(frame, digit, center,
                 scale=rng.uniform(config.min_scale, config.max_scale),
                 shear=rng.uniform(-config.distortion, config.distortion),
                 intensity=intensity, rng=rng)

    if rng.random() < config.shadow_prob:
        _shadow(frame, rng)

    frame += rng.normal(0.0, config.noise_stddev, size=frame.shape)
    return np.clip(frame, 0.0, 1.0)


def generate(n_samples: int, seed: int = 0,
             config: SvhnConfig = SvhnConfig()) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``(frames, onehot_labels)``.

    Returns frames shaped ``(n, side, side)`` in [0,1] and one-hot
    labels shaped ``(n, 10)``; classes are balanced modulo rounding.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    rng = np.random.default_rng(seed)
    digits = rng.integers(0, N_CLASSES, size=n_samples)
    frames = np.stack([generate_frame(int(d), rng, config) for d in digits])
    onehot = np.zeros((n_samples, N_CLASSES))
    onehot[np.arange(n_samples), digits] = 1.0
    return frames, onehot


def splits(n_train: int, n_test: int, n_extra: int = 0, seed: int = 0,
           config: SvhnConfig = SvhnConfig()):
    """Train/test/extra splits, mirroring SVHN's three-way structure."""
    train = generate(n_train, seed=seed, config=config)
    test = generate(n_test, seed=seed + 1, config=config)
    if n_extra:
        extra = generate(n_extra, seed=seed + 2, config=config)
        return train, test, extra
    return train, test
