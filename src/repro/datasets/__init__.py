"""Synthetic SVHN-like dataset and the paper's frame transforms."""

from .glyphs import GLYPH_COLS, GLYPH_ROWS, all_glyphs, glyph
from .svhn import N_CLASSES, SvhnConfig, generate, generate_frame, splits
from .transforms import (
    FRAME_PIXELS,
    FRAME_SIDE,
    add_gaussian_noise,
    darken,
    flatten_frames,
    from_pixels,
    normalize,
    to_pixels,
    unflatten_frames,
)

__all__ = [
    "FRAME_PIXELS",
    "FRAME_SIDE",
    "GLYPH_COLS",
    "GLYPH_ROWS",
    "N_CLASSES",
    "SvhnConfig",
    "add_gaussian_noise",
    "all_glyphs",
    "darken",
    "flatten_frames",
    "from_pixels",
    "generate",
    "generate_frame",
    "glyph",
    "normalize",
    "splits",
    "to_pixels",
    "unflatten_frames",
]
