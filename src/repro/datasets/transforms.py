"""Frame transforms used by the case-study applications.

The paper evaluates three application variants of the SVHN stream:
plain classification, denoising (Gaussian noise added, Sec. VI) and
night vision ("we darkened the SVHN dataset"). These transforms produce
the corresponding inputs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

FRAME_SIDE = 32
FRAME_PIXELS = FRAME_SIDE * FRAME_SIDE


def flatten_frames(frames: np.ndarray) -> np.ndarray:
    """(N, 32, 32) -> (N, 1024) in row-major order (the DMA layout)."""
    frames = np.asarray(frames)
    return frames.reshape(frames.shape[0], -1)


def unflatten_frames(vectors: np.ndarray) -> np.ndarray:
    """(N, 1024) -> (N, 32, 32)."""
    vectors = np.asarray(vectors)
    return vectors.reshape(vectors.shape[0], FRAME_SIDE, FRAME_SIDE)


def add_gaussian_noise(frames: np.ndarray, stddev: float = 0.15,
                       seed: int = 0,
                       rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Additive Gaussian noise, clipped to [0, 1] (denoiser input)."""
    rng = rng or np.random.default_rng(seed)
    noisy = frames + rng.normal(0.0, stddev, size=np.shape(frames))
    return np.clip(noisy, 0.0, 1.0)


def darken(frames: np.ndarray, factor: float = 0.25,
           floor: float = 0.0) -> np.ndarray:
    """Scale intensities down (night-vision input).

    ``factor`` compresses the dynamic range toward ``floor``, which is
    what makes plain classification fail and motivates the night-vision
    pre-processing pipeline (noise filter + histogram equalization).
    """
    if not 0.0 < factor <= 1.0:
        raise ValueError(f"factor must be in (0, 1], got {factor}")
    return floor + np.asarray(frames) * factor


def to_pixels(frames: np.ndarray, levels: int = 256) -> np.ndarray:
    """[0,1] floats -> integer pixel values 0..levels-1 (uint8 range)."""
    q = np.floor(np.clip(frames, 0.0, 1.0) * (levels - 1) + 0.5)
    return q.astype(np.int64)


def from_pixels(pixels: np.ndarray, levels: int = 256) -> np.ndarray:
    """Integer pixels -> [0,1] floats."""
    return np.asarray(pixels, dtype=np.float64) / (levels - 1)


def normalize(frames: np.ndarray) -> np.ndarray:
    """Per-frame min-max normalization to [0, 1]."""
    frames = np.asarray(frames, dtype=np.float64)
    flat = frames.reshape(frames.shape[0], -1)
    lo = flat.min(axis=1, keepdims=True)
    hi = flat.max(axis=1, keepdims=True)
    span = np.where(hi - lo == 0.0, 1.0, hi - lo)
    return ((flat - lo) / span).reshape(frames.shape)
