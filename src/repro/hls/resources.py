"""FPGA resource estimation (Vivado HLS report substitute).

The ESP4ML evaluation reports LUT/FF/BRAM utilization percentages of a
Xilinx Ultrascale+ device (Table I). This module provides the resource
vocabulary, a device catalog, and first-order estimation helpers that
the HLS scheduler uses to cost datapaths the way an HLS report would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

# Bits per 36Kb block RAM (one BRAM tile in Ultrascale+).
BRAM_BITS = 36 * 1024


@dataclass(frozen=True)
class ResourceEstimate:
    """LUTs, flip-flops, 36Kb BRAMs and DSP slices used by a design."""

    luts: int = 0
    ffs: int = 0
    brams: int = 0
    dsps: int = 0

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            luts=self.luts + other.luts,
            ffs=self.ffs + other.ffs,
            brams=self.brams + other.brams,
            dsps=self.dsps + other.dsps,
        )

    def scaled(self, factor: float) -> "ResourceEstimate":
        return ResourceEstimate(
            luts=int(round(self.luts * factor)),
            ffs=int(round(self.ffs * factor)),
            brams=int(round(self.brams * factor)),
            dsps=int(round(self.dsps * factor)),
        )

    def as_dict(self) -> Dict[str, int]:
        return {"luts": self.luts, "ffs": self.ffs,
                "brams": self.brams, "dsps": self.dsps}


ZERO_RESOURCES = ResourceEstimate()


@dataclass(frozen=True)
class FpgaDevice:
    """Capacity of an FPGA part, for utilization percentages."""

    name: str
    luts: int
    ffs: int
    brams: int  # 36Kb blocks
    dsps: int

    def utilization(self, usage: ResourceEstimate) -> Dict[str, float]:
        """Fractions (0-1) of each resource class, Vivado-report style."""
        return {
            "luts": usage.luts / self.luts,
            "ffs": usage.ffs / self.ffs,
            "brams": usage.brams / self.brams,
            "dsps": usage.dsps / self.dsps,
        }

    def fits(self, usage: ResourceEstimate) -> bool:
        util = self.utilization(usage)
        return all(frac <= 1.0 for frac in util.values())


#: Xilinx Virtex Ultrascale+ VU9P (VCU118 board) — the class of "large
#: Ultrascale+" part the paper notes it used conservatively.
XCVU9P = FpgaDevice(name="xcvu9p", luts=1_182_240, ffs=2_364_480,
                    brams=2_160, dsps=6_840)

#: Zynq Ultrascale+ ZU9EG (ZCU102), a smaller alternative part.
XCZU9EG = FpgaDevice(name="xczu9eg", luts=274_080, ffs=548_160,
                     brams=912, dsps=2_520)

DEVICES: Dict[str, FpgaDevice] = {d.name: d for d in (XCVU9P, XCZU9EG)}


def memory_brams(words: int, word_bits: int, partitions: int = 1) -> int:
    """BRAM blocks for a memory of ``words`` x ``word_bits``.

    Each partition is an independent memory and rounds up on its own,
    which is why aggressive array partitioning inflates BRAM usage —
    the same effect HLS reports show.
    """
    if words <= 0:
        return 0
    if partitions < 1:
        raise ValueError(f"partitions must be >= 1, got {partitions}")
    per_part = (words + partitions - 1) // partitions
    # A BRAM36 supports up to 36Kb; narrow/shallow memories still burn
    # a whole block per partition.
    blocks_per_part = max(1, (per_part * word_bits + BRAM_BITS - 1)
                          // BRAM_BITS)
    return partitions * blocks_per_part


def multiplier_resources(n_multipliers: int, width: int) -> ResourceEstimate:
    """Datapath cost of ``n_multipliers`` fixed-point multipliers.

    Widths up to 18 bits map one multiply to one DSP48; wider ones
    cascade two. A fixed LUT/FF overhead per multiplier covers the
    accumulate/cast logic around it.
    """
    if n_multipliers < 0:
        raise ValueError("n_multipliers must be >= 0")
    dsps_each = 1 if width <= 18 else 2
    # Per-multiplier LUT/FF coefficients calibrated so the two paper
    # SoCs land near Table I's utilization (48%/24% and 19%/11%).
    return ResourceEstimate(
        luts=n_multipliers * 110,
        ffs=n_multipliers * 125,
        brams=0,
        dsps=n_multipliers * dsps_each,
    )


def control_overhead(n_loops: int = 1) -> ResourceEstimate:
    """FSM + counters for the loop nest of an HLS kernel."""
    return ResourceEstimate(luts=350 * n_loops, ffs=420 * n_loops)
