"""Static timing estimation (the timing half of an HLS report).

HLS tools report, next to latency and resources, whether the design
closes timing at the target clock. The paper's SoCs run at 78 MHz on
an Ultrascale+ part — comfortably slow — and this module provides the
first-order model that confirms it: per-stage critical paths built
from device timing constants, an achievable-frequency estimate per
layer, and a whole-model timing report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class TimingConstants:
    """Device timing constants (Ultrascale+, mid speed grade)."""

    name: str = "ultrascale-plus-2"
    lut_delay_ns: float = 0.15       # one logic level
    net_delay_ns: float = 0.35       # average routed net
    carry_per_bit_ns: float = 0.015  # carry-chain propagation
    dsp_clk_to_q_ns: float = 1.10    # registered DSP output
    bram_access_ns: float = 1.60     # BRAM clock-to-out
    setup_ns: float = 0.30           # FF setup + clock skew margin


ULTRASCALE_PLUS = TimingConstants()


def adder_path_ns(width: int,
                  constants: TimingConstants = ULTRASCALE_PLUS) -> float:
    """Register-to-register delay of one ``width``-bit ripple add."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    return (constants.lut_delay_ns + constants.net_delay_ns
            + constants.carry_per_bit_ns * width + constants.setup_ns)


def mac_stage_path_ns(accumulator_width: int,
                      constants: TimingConstants = ULTRASCALE_PLUS
                      ) -> float:
    """Critical path of one pipelined MAC stage: DSP out -> adder -> FF.

    HLS keeps the multiplier inside the DSP's pipeline registers, so
    the exposed path is the DSP clock-to-out plus the accumulate add.
    """
    return (constants.dsp_clk_to_q_ns
            + adder_path_ns(accumulator_width, constants))


def memory_stage_path_ns(constants: TimingConstants = ULTRASCALE_PLUS
                         ) -> float:
    """BRAM read -> mux -> FF path (weight fetch)."""
    return (constants.bram_access_ns + constants.lut_delay_ns
            + constants.net_delay_ns + constants.setup_ns)


def control_path_ns(state_bits: int,
                    constants: TimingConstants = ULTRASCALE_PLUS) -> float:
    """FSM next-state logic: ~log2(states) LUT levels."""
    if state_bits < 1:
        raise ValueError(f"state_bits must be >= 1, got {state_bits}")
    levels = max(1, math.ceil(math.log2(state_bits + 1)))
    return (levels * (constants.lut_delay_ns + constants.net_delay_ns)
            + constants.setup_ns)


def dense_layer_fmax_mhz(accumulator_width: int,
                         constants: TimingConstants = ULTRASCALE_PLUS
                         ) -> float:
    """Achievable clock for a dense layer's datapath."""
    critical = max(mac_stage_path_ns(accumulator_width, constants),
                   memory_stage_path_ns(constants),
                   control_path_ns(8, constants))
    return 1000.0 / critical


@dataclass(frozen=True)
class LayerTiming:
    name: str
    accumulator_width: int
    critical_path_ns: float
    fmax_mhz: float


@dataclass(frozen=True)
class TimingReport:
    """Whole-model timing summary."""

    target_clock_mhz: float
    layers: List[LayerTiming]

    @property
    def fmax_mhz(self) -> float:
        return min(layer.fmax_mhz for layer in self.layers)

    @property
    def critical_layer(self) -> LayerTiming:
        return min(self.layers, key=lambda l: l.fmax_mhz)

    def meets_timing(self) -> bool:
        return self.fmax_mhz >= self.target_clock_mhz

    @property
    def slack_ns(self) -> float:
        """Positive when timing closes at the target clock."""
        return (1000.0 / self.target_clock_mhz
                - self.critical_layer.critical_path_ns)

    def to_text(self) -> str:
        lines = [
            f"== timing report: target {self.target_clock_mhz} MHz ==",
            f"fmax: {self.fmax_mhz:.0f} MHz   "
            f"slack: {self.slack_ns:+.2f} ns   "
            f"{'MET' if self.meets_timing() else 'VIOLATED'}",
        ]
        for layer in self.layers:
            lines.append(
                f"  {layer.name:<16}acc={layer.accumulator_width:>3}b"
                f"   path={layer.critical_path_ns:>6.2f} ns"
                f"   fmax={layer.fmax_mhz:>6.0f} MHz")
        return "\n".join(lines)


def timing_report_for_model(hls_model, target_clock_mhz: float = 78.0,
                            constants: TimingConstants = ULTRASCALE_PLUS
                            ) -> TimingReport:
    """Timing of every layer of a compiled HLS model.

    The accumulator width follows the full-precision MAC inference of
    :func:`repro.fixed.mac_result_format`.
    """
    from ..fixed import mac_result_format

    layers = []
    for layer in hls_model.layers:
        acc = mac_result_format(layer.precision, layer.precision,
                                terms=layer.n_in)
        path = max(mac_stage_path_ns(acc.width, constants),
                   memory_stage_path_ns(constants),
                   control_path_ns(8, constants))
        layers.append(LayerTiming(
            name=layer.name,
            accumulator_width=acc.width,
            critical_path_ns=path,
            fmax_mhz=1000.0 / path,
        ))
    return TimingReport(target_clock_mhz=target_clock_mhz, layers=layers)
