"""HLS substrate: scheduling, resource estimation and directives.

Substitutes the Vivado HLS / Stratus HLS synthesis steps of the paper's
flow with analytic models (see DESIGN.md, substitution table).
"""

from .resources import (
    BRAM_BITS,
    DEVICES,
    FpgaDevice,
    ResourceEstimate,
    XCVU9P,
    XCZU9EG,
    ZERO_RESOURCES,
    control_overhead,
    memory_brams,
    multiplier_resources,
)
from .schedule import (
    LoopSchedule,
    dataflow_schedule,
    dense_layer_schedule,
    nearest_reuse_factor,
    pipelined_loop_schedule,
    sequential_schedule,
    valid_reuse_factor,
)
from .timing import (
    LayerTiming,
    TimingConstants,
    TimingReport,
    ULTRASCALE_PLUS,
    adder_path_ns,
    control_path_ns,
    dense_layer_fmax_mhz,
    mac_stage_path_ns,
    memory_stage_path_ns,
    timing_report_for_model,
)
from .directives import (
    Directive,
    DirectiveFile,
    ap_fifo_interface,
    array_partition,
    pipeline,
    unroll,
)

__all__ = [
    "BRAM_BITS",
    "DEVICES",
    "Directive",
    "DirectiveFile",
    "FpgaDevice",
    "LayerTiming",
    "LoopSchedule",
    "ResourceEstimate",
    "TimingConstants",
    "TimingReport",
    "ULTRASCALE_PLUS",
    "XCVU9P",
    "XCZU9EG",
    "ZERO_RESOURCES",
    "adder_path_ns",
    "ap_fifo_interface",
    "array_partition",
    "control_overhead",
    "control_path_ns",
    "dataflow_schedule",
    "dense_layer_fmax_mhz",
    "dense_layer_schedule",
    "mac_stage_path_ns",
    "memory_brams",
    "memory_stage_path_ns",
    "multiplier_resources",
    "nearest_reuse_factor",
    "pipeline",
    "pipelined_loop_schedule",
    "sequential_schedule",
    "timing_report_for_model",
    "unroll",
    "valid_reuse_factor",
]
