"""HLS loop scheduling model: latency and initiation interval.

Substitutes the scheduling step of Vivado HLS / Stratus HLS. The model
is first-order but captures the trade-off the paper's `reuse_factor`
knob controls (Sec. II): "the number of times a multiplier is used in
the computation of a layer of neurons". With ``n_weights`` multiplies
and ``reuse_factor`` R, HLS instantiates ``n_weights / R`` multipliers
and the layer takes ~R cycles of multiply issue plus the adder-tree and
activation pipeline depth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .resources import (
    ResourceEstimate,
    control_overhead,
    memory_brams,
    multiplier_resources,
)


@dataclass(frozen=True)
class LoopSchedule:
    """Result of scheduling one kernel/loop nest.

    Attributes:
        latency: cycles from first input to last output for one
            invocation.
        interval: initiation interval (cycles between successive
            invocations when pipelined).
        resources: estimated FPGA resources.
    """

    latency: int
    interval: int
    resources: ResourceEstimate

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError(f"latency must be >= 1, got {self.latency}")
        if self.interval < 1:
            raise ValueError(f"interval must be >= 1, got {self.interval}")


def valid_reuse_factor(n_weights: int, reuse_factor: int) -> bool:
    """HLS4ML requires the reuse factor to divide the multiply count."""
    return 1 <= reuse_factor <= n_weights and n_weights % reuse_factor == 0


def nearest_reuse_factor(n_weights: int, requested: int) -> int:
    """Closest valid reuse factor (HLS4ML rounds the same way)."""
    if requested < 1:
        raise ValueError(f"reuse factor must be >= 1, got {requested}")
    requested = min(requested, n_weights)
    if valid_reuse_factor(n_weights, requested):
        return requested
    divisors = [d for d in range(1, n_weights + 1) if n_weights % d == 0]
    return min(divisors, key=lambda d: (abs(d - requested), d))


def dense_layer_schedule(n_in: int, n_out: int, reuse_factor: int,
                         weight_width: int = 16,
                         activation_depth: int = 3) -> LoopSchedule:
    """Schedule one fully connected layer.

    - multipliers instantiated: ``n_in * n_out / reuse_factor``
    - multiply issue takes ``reuse_factor`` cycles (each multiplier
      fires once per cycle for R cycles)
    - the accumulate tree adds ``ceil(log2(n_in))`` pipeline stages
    - the activation (ReLU or LUT) adds ``activation_depth`` stages
    """
    n_weights = n_in * n_out
    if not valid_reuse_factor(n_weights, reuse_factor):
        raise ValueError(
            f"reuse factor {reuse_factor} invalid for {n_weights} weights; "
            f"nearest valid is {nearest_reuse_factor(n_weights, reuse_factor)}")
    n_mult = n_weights // reuse_factor
    tree_depth = max(1, math.ceil(math.log2(max(2, n_in))))
    latency = reuse_factor + tree_depth + activation_depth
    interval = reuse_factor

    resources = multiplier_resources(n_mult, weight_width)
    # Weights live in BRAM, partitioned so the multipliers can all read
    # in parallel each cycle (HLS4ML partitions by reuse factor).
    partitions = max(1, min(n_mult, 64))
    resources = resources + ResourceEstimate(
        brams=memory_brams(n_weights, weight_width, partitions=partitions))
    resources = resources + control_overhead(n_loops=2)
    return LoopSchedule(latency=latency, interval=interval,
                        resources=resources)


def pipelined_loop_schedule(trip_count: int, interval: int = 1,
                            depth: int = 4,
                            body_resources: ResourceEstimate = ResourceEstimate()
                            ) -> LoopSchedule:
    """A pipelined loop: latency = depth + II * (trip_count - 1).

    This is the canonical HLS pipelined-loop formula; used for the
    Night-Vision kernels and the wrapper's load/store loops.
    """
    if trip_count < 1:
        raise ValueError(f"trip_count must be >= 1, got {trip_count}")
    latency = depth + interval * (trip_count - 1)
    return LoopSchedule(latency=latency, interval=max(1, interval * trip_count),
                        resources=body_resources + control_overhead())


def sequential_schedule(*stages: LoopSchedule) -> LoopSchedule:
    """Stages executed back to back inside one kernel (dataflow off)."""
    if not stages:
        raise ValueError("at least one stage required")
    latency = sum(s.latency for s in stages)
    resources = ResourceEstimate()
    for stage in stages:
        resources = resources + stage.resources
    return LoopSchedule(latency=latency, interval=latency,
                        resources=resources)


def dataflow_schedule(*stages: LoopSchedule) -> LoopSchedule:
    """Stages in an HLS DATAFLOW region: II = max stage II,
    latency = sum of latencies (fill) but successive invocations
    overlap."""
    if not stages:
        raise ValueError("at least one stage required")
    latency = sum(s.latency for s in stages)
    interval = max(s.interval for s in stages)
    resources = ResourceEstimate()
    for stage in stages:
        resources = resources + stage.resources
    return LoopSchedule(latency=latency, interval=interval,
                        resources=resources)
