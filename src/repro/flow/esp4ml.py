"""The end-to-end ESP4ML design flow (Fig. 3).

Drives the whole path the paper automates:

1. ML kernels: trained model (+ reuse factor) -> HLS4ML-substitute
   compiler -> accelerator spec + firmware artifacts (compute.cpp,
   directives.tcl).
2. Generic kernels: SystemC/Stratus-style specs added directly.
3. SoC integration: floorplan (the ``.esp_config`` GUI step), XML
   register descriptors, device tree, routing tables.
4. "Bitstream": a runnable :class:`~repro.soc.SoCInstance` plus the
   booted software stack (:class:`~repro.runtime.EspRuntime`).
5. Application generation: dataflow -> ``dflow.h`` + ``user-app.c``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..accelerators.base import AcceleratorSpec
from ..accelerators.classifier import spec_from_hls
from ..hls4ml_flow import HlsConfig, compile_model, emit_all
from ..nn import Sequential
from ..runtime import Dataflow, EspRuntime, RuntimeCosts
from ..runtime.codegen import emit_dataflow_header, emit_user_app
from ..soc import SoCConfig, SoCInstance, build_soc, emit_dts
from .xml_gen import emit_accelerator_xml


def auto_grid(n_tiles: int) -> Tuple[int, int]:
    """Smallest near-square mesh that fits ``n_tiles``."""
    if n_tiles < 1:
        raise ValueError(f"n_tiles must be >= 1, got {n_tiles}")
    cols = math.ceil(math.sqrt(n_tiles))
    rows = math.ceil(n_tiles / cols)
    return cols, rows


@dataclass
class SoCBundle:
    """Everything the flow produces for one SoC."""

    config: SoCConfig
    soc: SoCInstance
    runtime: EspRuntime
    artifacts: Dict[str, str] = field(default_factory=dict)

    def write_artifacts(self, directory) -> List[str]:
        """Materialize every artifact file under ``directory``."""
        from pathlib import Path
        base = Path(directory)
        written = []
        for rel_path, content in sorted(self.artifacts.items()):
            path = base / rel_path
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)
            written.append(str(path))
        return written


class Esp4mlFlow:
    """Builder for the full flow: add accelerators, then generate."""

    def __init__(self, clock_mhz: float = 78.0,
                 runtime_costs: Optional[RuntimeCosts] = None) -> None:
        self.clock_mhz = clock_mhz
        self.runtime_costs = runtime_costs
        self._accelerators: List[Tuple[str, AcceleratorSpec]] = []
        self._artifacts: Dict[str, str] = {}

    # -- step 1/2: accelerator design -------------------------------------

    def add_ml_accelerator(self, device_name: str, model: Sequential,
                           reuse_factor: int = 2048) -> AcceleratorSpec:
        """The HLS4ML branch: Keras-substitute model -> accelerator."""
        config = HlsConfig(reuse_factor=reuse_factor,
                           clock_mhz=self.clock_mhz)
        hls_model = compile_model(model, config)
        spec = spec_from_hls(hls_model, name=model.name)
        for filename, content in emit_all(hls_model).items():
            self._artifacts[f"{device_name}/{filename}"] = content
        self._register(device_name, spec)
        return spec

    def add_generic_accelerator(self, device_name: str,
                                spec: AcceleratorSpec) -> AcceleratorSpec:
        """The generic branch (SystemC kernels, Stratus HLS)."""
        self._register(device_name, spec)
        return spec

    def _register(self, device_name: str, spec: AcceleratorSpec) -> None:
        if any(name == device_name for name, _ in self._accelerators):
            raise ValueError(f"device {device_name!r} already added")
        self._accelerators.append((device_name, spec))
        self._artifacts[f"{device_name}.xml"] = emit_accelerator_xml(spec)

    # -- step 3/4: SoC integration ------------------------------------------

    def generate(self, soc_name: str = "esp4ml-soc",
                 grid: Optional[Tuple[int, int]] = None,
                 memory_words: int = 1 << 22) -> SoCBundle:
        """Floorplan, generate and "program" the SoC."""
        if not self._accelerators:
            raise ValueError("add at least one accelerator before "
                             "generate()")
        n_tiles = len(self._accelerators) + 3   # cpu + mem + aux
        cols, rows = grid if grid else auto_grid(n_tiles)
        if cols * rows < n_tiles:
            raise ValueError(
                f"grid {cols}x{rows} too small for {n_tiles} tiles")

        config = SoCConfig(cols=cols, rows=rows, name=soc_name,
                           clock_mhz=self.clock_mhz)
        config.add_cpu(config.next_free())
        config.add_memory(config.next_free(), size_words=memory_words)
        config.add_aux(config.next_free())
        for device_name, spec in self._accelerators:
            config.add_accelerator(config.next_free(), device_name, spec)

        soc = build_soc(config)
        runtime = EspRuntime(soc, costs=self.runtime_costs)
        artifacts = dict(self._artifacts)
        artifacts["soc.dts"] = emit_dts(config)
        artifacts["floorplan.txt"] = config.floorplan_text() + "\n"
        return SoCBundle(config=config, soc=soc, runtime=runtime,
                         artifacts=artifacts)

    # -- step 5: application generation ----------------------------------------

    @staticmethod
    def emit_application(bundle: SoCBundle, dataflow: Dataflow,
                         n_frames: int, mode: str = "p2p") -> None:
        """Generate the user app + dflow header into the bundle."""
        in_words = bundle.runtime.registry.by_name(
            dataflow.levels()[0][0]).tile.spec.input_words
        bundle.artifacts[f"dflow_{dataflow.name}.h"] = \
            emit_dataflow_header(dataflow, n_frames, mode)
        bundle.artifacts[f"{dataflow.name}-app.c"] = \
            emit_user_app(dataflow, dataset_words=n_frames * in_words)
