"""Model training entry points (the "Keras training" box of Fig. 3).

Trains the paper's two models on the synthetic SVHN stream and caches
weights on disk so the flow (and the benchmarks) do not retrain on
every run. Two quality presets:

- ``fast``: small sample budget, for tests and quick demos;
- ``full``: the budget used to reproduce the paper's accuracy numbers
  (92% classification, 3.1% reconstruction error band).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from ..accelerators.classifier import classifier_model
from ..accelerators.denoiser import denoiser_model, TRAINING_NOISE_STDDEV
from ..datasets import add_gaussian_noise, darken, flatten_frames, generate
from ..datasets.svhn import SvhnConfig
from ..nn import (
    Adam,
    Sequential,
    accuracy,
    fit,
    load_model,
    save_model,
)

#: Default cache directory for trained model artifacts.
DEFAULT_CACHE = Path("artifacts/models")


@dataclass(frozen=True)
class TrainingPreset:
    n_train: int
    n_test: int
    epochs: int
    batch_size: int
    learning_rate: float = 1e-3


PRESETS = {
    "fast": TrainingPreset(n_train=2500, n_test=400, epochs=12,
                           batch_size=64, learning_rate=2e-3),
    "full": TrainingPreset(n_train=12000, n_test=2000, epochs=30,
                           batch_size=64),
}

#: The denoiser trains against noise-free structure: its targets are
#: frames rendered without the sensor-noise term (a denoiser cannot —
#: and should not — reproduce incompressible per-pixel noise).
DENOISER_DATA = SvhnConfig(noise_stddev=0.0)


def _cache_paths(cache_dir: Path, name: str) -> Tuple[Path, Path]:
    cache_dir.mkdir(parents=True, exist_ok=True)
    return cache_dir / f"{name}.json", cache_dir / f"{name}.npz"


def train_classifier(preset: str = "fast", seed: int = 0,
                     cache_dir: Optional[Path] = None,
                     force: bool = False) -> Tuple[Sequential, float]:
    """Train (or load) the SVHN classifier; returns (model, accuracy)."""
    if preset not in PRESETS:
        raise ValueError(f"unknown preset {preset!r}; options: "
                         f"{sorted(PRESETS)}")
    cache_dir = Path(cache_dir) if cache_dir else DEFAULT_CACHE
    json_path, npz_path = _cache_paths(cache_dir, f"classifier_{preset}")
    config = PRESETS[preset]

    x_test_img, y_test = generate(config.n_test, seed=seed + 1)
    x_test = flatten_frames(x_test_img)

    if not force and json_path.exists() and npz_path.exists():
        model = load_model(json_path, npz_path)
    else:
        x_train_img, y_train = generate(config.n_train, seed=seed)
        x_train = flatten_frames(x_train_img)
        model = classifier_model(seed=seed + 7)
        fit(model, x_train, y_train,
            loss="categorical_crossentropy",
            optimizer=Adam(config.learning_rate),
            epochs=config.epochs, batch_size=config.batch_size, seed=seed)
        save_model(model, json_path, npz_path)
    test_accuracy = accuracy(model.predict(x_test), y_test)
    return model, test_accuracy


def train_denoiser(preset: str = "fast", seed: int = 0,
                   cache_dir: Optional[Path] = None,
                   force: bool = False) -> Tuple[Sequential, float]:
    """Train (or load) the denoiser; returns (model, reconstruction err).

    The model's GaussianNoise input layer corrupts each training frame
    on the fly (the paper: "We added Gaussian noise to the SVHN dataset
    and trained the model"), so fitting frames against themselves
    trains denoising. The returned reconstruction error is the mean
    squared error of denoising a held-out noisy set, the conventional
    Keras autoencoder figure (paper: 3.1%); see EXPERIMENTS.md for the
    stricter relative-L2 number as well.
    """
    if preset not in PRESETS:
        raise ValueError(f"unknown preset {preset!r}; options: "
                         f"{sorted(PRESETS)}")
    cache_dir = Path(cache_dir) if cache_dir else DEFAULT_CACHE
    json_path, npz_path = _cache_paths(cache_dir, f"denoiser_{preset}")
    config = PRESETS[preset]

    clean_test_img, _ = generate(config.n_test, seed=seed + 3,
                                 config=DENOISER_DATA)
    clean_test = flatten_frames(clean_test_img)
    noisy_test = add_gaussian_noise(clean_test,
                                    stddev=TRAINING_NOISE_STDDEV,
                                    seed=seed + 4)

    if not force and json_path.exists() and npz_path.exists():
        model = load_model(json_path, npz_path)
    else:
        clean_img, _ = generate(config.n_train, seed=seed + 2,
                                config=DENOISER_DATA)
        clean = flatten_frames(clean_img)
        model = denoiser_model(seed=seed + 11)
        fit(model, clean, clean, loss="mse",
            optimizer=Adam(config.learning_rate),
            epochs=config.epochs, batch_size=config.batch_size, seed=seed)
        save_model(model, json_path, npz_path)
    pred = model.predict(noisy_test)
    error = float(np.mean((pred - clean_test) ** 2))
    return model, error


def night_vision_dataset(n_frames: int, seed: int = 0,
                         factor: float = 0.25):
    """Darkened SVHN frames + labels for the Night-Vision pipeline."""
    frames, labels = generate(n_frames, seed=seed)
    return flatten_frames(darken(frames, factor=factor)), labels
