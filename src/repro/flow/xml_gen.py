"""Accelerator XML generation (the ``accN.xml`` of Fig. 3).

Paper Sec. III: "The list of registers is specified into an XML file
for each accelerator following the default ESP integration flow." This
module renders that file for any accelerator spec and parses it back
(the SoC generator consumes it).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List, Tuple

from ..accelerators.base import AcceleratorSpec
from ..soc.registers import RegisterFile


def emit_accelerator_xml(spec: AcceleratorSpec) -> str:
    """Render the ESP integration descriptor for one accelerator."""
    root = ET.Element("module", {
        "name": spec.name,
        "desc": f"{spec.name} ({spec.design_flow} flow)",
        "data_size": str(spec.word_bits),
        "device_id": f"0x{abs(hash(spec.name)) % 0xFFFF:04x}",
    })
    generic = ET.SubElement(root, "generic")
    ET.SubElement(generic, "param", {"name": "input_words",
                                     "value": str(spec.input_words)})
    ET.SubElement(generic, "param", {"name": "output_words",
                                     "value": str(spec.output_words)})
    registers = ET.SubElement(root, "registers")
    # The standard socket registers plus the accelerator's own.
    reg_names = RegisterFile((0, 0),
                             user_registers=["N_FRAMES_REG",
                                             *spec.user_registers]).names
    for index, name in enumerate(reg_names):
        ET.SubElement(registers, "reg", {
            "name": name,
            "offset": f"0x{index * 4:03x}",
            "readonly": "true" if name == "LOCATION_REG" else "false",
        })
    ET.indent(root)
    return ET.tostring(root, encoding="unicode") + "\n"


def parse_accelerator_xml(text: str) -> Tuple[str, List[str]]:
    """Parse a descriptor back to (module name, register names)."""
    root = ET.fromstring(text)
    if root.tag != "module":
        raise ValueError(f"expected <module> root, got <{root.tag}>")
    name = root.attrib["name"]
    registers = [reg.attrib["name"]
                 for reg in root.findall("./registers/reg")]
    return name, registers
