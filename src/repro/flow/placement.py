"""Accelerator placement optimization (floorplanning the tile grid).

Paper Sec. IV: "the ESP graphic configuration interface can be used to
pick the location of each accelerator in the SoC". Placement matters:
XY-routed traffic pays one router + link per hop, so a dataflow whose
heavy edges span the mesh wastes cycles and link energy. This module
automates the choice: it builds a traffic matrix from the dataflow and
the accelerator I/O geometries, and minimizes total words x hops with
a greedy seed plus pairwise-swap hill climbing (deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..accelerators.base import AcceleratorSpec
from ..noc import hop_count
from ..runtime.dataflow import Dataflow
from ..soc import SoCConfig

Coord = Tuple[int, int]

#: Pseudo-device representing the memory tile in the traffic matrix.
MEMORY = "__memory__"


def traffic_matrix(dataflow: Dataflow,
                   specs: Dict[str, AcceleratorSpec],
                   p2p: bool = True) -> Dict[Tuple[str, str], int]:
    """Words exchanged per frame between endpoints.

    With p2p, inter-accelerator edges carry their words directly;
    without it every edge round-trips through :data:`MEMORY`. Roots
    always load their input from memory and leaves store their output
    to it.
    """
    for device in dataflow.devices:
        if device not in specs:
            raise KeyError(f"no spec for device {device!r}")
    traffic: Dict[Tuple[str, str], int] = {}

    def add(a: str, b: str, words: int) -> None:
        key = (a, b) if a <= b else (b, a)
        traffic[key] = traffic.get(key, 0) + words

    levels = dataflow.levels()
    for root in levels[0]:
        add(MEMORY, root, specs[root].input_words)
    for leaf in levels[-1]:
        add(MEMORY, leaf, specs[leaf].output_words)
    for edge in dataflow.edges:
        words = specs[edge.src].output_words
        if p2p:
            add(edge.src, edge.dst, words)
        else:
            add(edge.src, MEMORY, words)
            add(MEMORY, edge.dst, words)
    return traffic


def placement_cost(positions: Dict[str, Coord],
                   traffic: Dict[Tuple[str, str], int]) -> int:
    """Total words x hops for one assignment (MEMORY must be placed)."""
    cost = 0
    for (a, b), words in traffic.items():
        cost += words * hop_count(positions[a], positions[b])
    return cost


@dataclass(frozen=True)
class PlacementResult:
    positions: Dict[str, Coord]
    cost: int
    initial_cost: int
    swaps: int

    @property
    def improvement(self) -> float:
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.cost / self.initial_cost


def optimize_placement(slots: Sequence[Coord], devices: Sequence[str],
                       traffic: Dict[Tuple[str, str], int],
                       memory_coord: Coord,
                       max_rounds: int = 50) -> PlacementResult:
    """Assign ``devices`` to ``slots`` minimizing words x hops.

    Greedy seed: devices in decreasing total-traffic order each take
    the free slot minimizing their cost against everything already
    placed. Refinement: pairwise swaps until a full round yields no
    improvement (hill climbing; deterministic, so results are
    reproducible).
    """
    slots = list(slots)
    devices = list(devices)
    if len(slots) < len(devices):
        raise ValueError(
            f"{len(devices)} devices but only {len(slots)} free slots")
    if len(set(slots)) != len(slots):
        raise ValueError("duplicate slots")

    weight: Dict[str, int] = {d: 0 for d in devices}
    for (a, b), words in traffic.items():
        for endpoint in (a, b):
            if endpoint in weight:
                weight[endpoint] += words

    positions: Dict[str, Coord] = {MEMORY: memory_coord}
    free = list(slots)
    for device in sorted(devices, key=lambda d: (-weight[d], d)):
        best_slot = None
        best_cost = None
        for slot in free:
            cost = 0
            for (a, b), words in traffic.items():
                if a == device and b in positions:
                    cost += words * hop_count(slot, positions[b])
                elif b == device and a in positions:
                    cost += words * hop_count(slot, positions[a])
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_slot = slot
        positions[device] = best_slot
        free.remove(best_slot)

    initial_cost = placement_cost(positions, traffic)
    cost = initial_cost
    swaps = 0
    for _ in range(max_rounds):
        improved = False
        for i in range(len(devices)):
            for j in range(i + 1, len(devices)):
                a, b = devices[i], devices[j]
                positions[a], positions[b] = positions[b], positions[a]
                candidate = placement_cost(positions, traffic)
                if candidate < cost:
                    cost = candidate
                    swaps += 1
                    improved = True
                else:
                    positions[a], positions[b] = (positions[b],
                                                  positions[a])
        if not improved:
            break
    final = {d: positions[d] for d in devices}
    return PlacementResult(positions=final, cost=cost,
                           initial_cost=initial_cost, swaps=swaps)


def placed_soc_config(cols: int, rows: int, name: str,
                      devices: Sequence[Tuple[str, AcceleratorSpec]],
                      dataflow: Dataflow,
                      clock_mhz: float = 78.0,
                      memory_words: int = 1 << 22,
                      p2p: bool = True) -> SoCConfig:
    """Build a SoCConfig with optimized accelerator placement.

    CPU, memory and auxiliary tiles take the first row-major slots (as
    the default flow does); the accelerators are then placed to
    minimize the dataflow's words x hops.
    """
    config = SoCConfig(cols=cols, rows=rows, name=name,
                       clock_mhz=clock_mhz)
    config.add_cpu(config.next_free())
    mem_coord = config.next_free()
    config.add_memory(mem_coord, size_words=memory_words)
    config.add_aux(config.next_free())

    slots = [(x, y) for y in range(rows) for x in range(cols)
             if (x, y) not in config.tiles]
    specs = dict(devices)
    traffic = traffic_matrix(dataflow, specs, p2p=p2p)
    result = optimize_placement(slots, [d for d, _ in devices], traffic,
                                memory_coord=mem_coord)
    for device, spec in devices:
        config.add_accelerator(result.positions[device], device, spec)
    return config
