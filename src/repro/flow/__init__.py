"""The automated ESP4ML design flow (paper Fig. 3)."""

from .esp4ml import Esp4mlFlow, SoCBundle, auto_grid
from .keras_bridge import (
    PRESETS,
    TrainingPreset,
    night_vision_dataset,
    train_classifier,
    train_denoiser,
)
from .placement import (
    MEMORY,
    PlacementResult,
    optimize_placement,
    placed_soc_config,
    placement_cost,
    traffic_matrix,
)
from .xml_gen import emit_accelerator_xml, parse_accelerator_xml

__all__ = [
    "Esp4mlFlow",
    "MEMORY",
    "PlacementResult",
    "PRESETS",
    "SoCBundle",
    "TrainingPreset",
    "auto_grid",
    "emit_accelerator_xml",
    "night_vision_dataset",
    "optimize_placement",
    "placed_soc_config",
    "placement_cost",
    "parse_accelerator_xml",
    "traffic_matrix",
    "train_classifier",
    "train_denoiser",
]
