"""Command-line entry point: regenerate the paper's results.

Usage::

    python -m repro table1 [--frames N]
    python -m repro fig7   [--frames N]
    python -m repro fig8   [--frames N]
    python -m repro all    [--frames N]
    python -m repro train  [--preset fast|full]
    python -m repro timeline [--mode base|pipe|p2p] [--app KEY]
    python -m repro metrics-top [--interval CYCLES] [--requests N]
    python -m repro chaos [--smoke] [--seed N]
    python -m repro fleet [--policy P] [--instances N] [--smoke]
    python -m repro tune  [--workload NAME] [--json PATH]
    python -m repro trace-query [TRACE_ID] [--input PATH]

``python -m repro --help`` lists every subcommand with a one-line
description; ``python -m repro <command> --help`` has the details.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_table1(args) -> None:
    from .eval import generate_table1, render_table1
    print(render_table1(generate_table1(n_frames=args.frames)))


def _cmd_fig7(args) -> None:
    from .eval import generate_fig7, render_fig7
    print(render_fig7(generate_fig7(n_frames=args.frames)))


def _cmd_fig8(args) -> None:
    from .eval import generate_fig8, render_fig8
    print(render_fig8(generate_fig8(n_frames=args.frames)))


def _cmd_all(args) -> None:
    print("== Table I ==")
    _cmd_table1(args)
    print("\n== Fig. 7 ==")
    _cmd_fig7(args)
    print("\n== Fig. 8 ==")
    _cmd_fig8(args)


def _cmd_train(args) -> None:
    from .flow import train_classifier, train_denoiser
    model, acc = train_classifier(preset=args.preset, force=args.force)
    print(f"classifier accuracy ({args.preset}): {acc:.1%} (paper: 92%)")
    model, err = train_denoiser(preset=args.preset, force=args.force)
    print(f"denoiser reconstruction error ({args.preset}): {err:.1%} "
          f"(paper: 3.1%)")


def _cmd_timeline(args) -> None:
    from .eval import APP_CONFIGS, fresh_runtime
    from .eval.timeline import render_gantt
    config = APP_CONFIGS[args.app]
    runtime = fresh_runtime(config)
    frames, _ = config.make_inputs(args.frames)
    result = runtime.esp_run(config.build_dataflow(), frames,
                             mode=args.mode)
    print(f"{args.app} in mode={args.mode}: "
          f"{result.frames_per_second:,.0f} frames/s\n")
    print(render_gantt(runtime.soc))


def _cmd_metrics_top(args) -> None:
    """Live ops dashboard over a multi-tenant serving trace.

    Runs the three-tenant SoC-1 serving workload with the metrics
    registry attached and a sampler rendering one dashboard frame
    every ``--interval`` cycles — the simulated equivalent of
    watching ``top`` on a production inference server.
    """
    import numpy as np

    from .eval import build_soc1
    from .eval.apps import (classifier_inputs, dataflow_nv_cl,
                            de_cl_inputs, nv_cl_inputs)
    from .metrics import (HealthMonitor, MetricsSampler, default_rules,
                          instrument_server, render_dashboard)
    from .runtime import EspRuntime, chain
    from .serve import (InferenceServer, ServerConfig, TenantConfig,
                        TracedRequest)

    recovery = None
    if args.chaos:
        from .faults import RecoveryPolicy
        recovery = RecoveryPolicy(watchdog_cycles=200_000, max_retries=1,
                                  software_fallback=True)
    soc = build_soc1()
    runtime = EspRuntime(soc, recovery=recovery)
    server = InferenceServer(runtime, ServerConfig(
        probation_cycles=60_000 if args.chaos else None))
    dataflows = {"night-vision": dataflow_nv_cl(1, 1),
                 "classifier": chain("1cl-top", ["cl1"]),
                 "denoiser": chain("1de-top", ["de0"])}
    modes = {"night-vision": "p2p", "classifier": "pipe",
             "denoiser": "pipe"}
    for name, dataflow in dataflows.items():
        server.register(TenantConfig(name=name, dataflow=dataflow,
                                     mode=modes[name]))
    registry = instrument_server(server)
    monitor = HealthMonitor(registry, default_rules(server))
    controller = None
    if args.chaos:
        # The live self-healing demo: hang the classifier's tile a
        # little into the trace and let the control plane reshard it
        # onto a spare — the dashboard's control-plane section shows
        # every action as it lands.
        from .control import ControlConfig, ControlPlane
        from .faults import FaultInjector, FaultPlan, FaultSpec
        controller = ControlPlane(server, monitor, ControlConfig(
            reserve_pool=("cl2", "cl3"))).attach()
        FaultInjector(FaultPlan([FaultSpec(
            kind="acc_hang", target="cl1", at_cycle=2 * args.interval,
            count=None)])).attach(soc)

    def frame(reg) -> None:
        monitor.evaluate()
        print(render_dashboard(runtime.soc, registry, monitor))
        print()

    sampler = MetricsSampler(registry, interval=args.interval,
                             callbacks=[frame])
    sampler.start()

    per_request = args.frames
    inputs = {
        "night-vision": nv_cl_inputs(args.requests * per_request)[0],
        "classifier": classifier_inputs(args.requests * per_request,
                                        seed=1)[0],
        "denoiser": de_cl_inputs(args.requests * per_request,
                                 seed=2)[0],
    }
    trace = []
    for tenant, frames in inputs.items():
        for index in range(args.requests):
            lo = index * per_request
            trace.append(TracedRequest(
                0, tenant, np.atleast_2d(frames)[lo:lo + per_request]))
    server.run_trace(trace)
    sampler.stop()
    monitor.evaluate()
    print("== final ==")
    print(render_dashboard(runtime.soc, registry, monitor))
    print(f"\n{monitor.render()}")
    if controller is not None and controller.actions:
        print(f"\n{controller.render()}")


def _cmd_chaos(args) -> None:
    """Run the chaos campaign and print the on/off verdict."""
    from .eval.chaos import run_chaos_campaign
    report = run_chaos_campaign(smoke=args.smoke, seed=args.seed)
    print(report.render())
    for arm in ("on", "off"):
        mttr = ", ".join(
            f"{cls}={ttr:,}" if ttr is not None else f"{cls}=-"
            for cls, ttr in report.mttr_by_class(arm).items())
        print(f"MTTR (controller {arm}): {mttr}")
    if not report.controller_strictly_better:
        raise SystemExit("chaos campaign verdict: controller did NOT "
                         "beat local recovery alone")


def _cmd_fleet(args) -> None:
    """Run the fleet campaign: N SoC instances behind the router."""
    from .eval.fleet import CAMPAIGN_POLICIES, run_fleet_campaign
    policies = (CAMPAIGN_POLICIES if args.policy == "all"
                else (args.policy,))
    reports = run_fleet_campaign(policies=policies,
                                 n_instances=args.instances,
                                 seed=args.seed, smoke=args.smoke)
    for index, report in enumerate(reports.values()):
        if index:
            print()
        print(report.render())
    if len(reports) > 1:
        ranked = sorted(reports.items(),
                        key=lambda kv: kv[1].latency.p99)
        print()
        print("fleet p99 by policy: " + ", ".join(
            f"{policy}={report.latency.p99:,.0f} cycles"
            for policy, report in ranked))


def _cmd_tune(args) -> None:
    """Auto-tune per-accelerator coherence over the ablation suite."""
    import json

    from .tune import ablation_workloads, autotune

    workloads = ablation_workloads()
    if args.workload != "all":
        workloads = [wl for wl in workloads if wl.name == args.workload]
    results = {}
    for wl in workloads:
        result = autotune(wl.build, wl.dataflow, wl.frames,
                          mode=wl.mode)
        results[wl.name] = result
        baseline = result.best_uniform_cycles
        print(f"== {wl.name} ==  ({wl.description})")
        arms = ", ".join(f"{label}={cycles:,}"
                         for label, cycles in result.measured.items())
        print(f"  measured: {arms}")
        assignment = ", ".join(
            f"{dev}={mode.value}"
            for dev, mode in sorted(result.assignment.items())) \
            or "(all non-coherent)"
        print(f"  chosen: {result.chosen} -> {assignment}")
        for dev in result.profile.devices:
            print(f"    {dev.device}: {dev.recommended.value} "
                  f"-- {dev.reason}")
        saved = baseline - result.cycles
        print(f"  vs best uniform: {saved:+,} cycles "
              f"({saved / baseline:+.2%})")
    if args.json:
        payload = {name: result.as_dict()
                   for name, result in results.items()}
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")


def _cmd_trace_query(args) -> None:
    """Reconstruct one request's waterfall from its trace ID.

    With ``--input`` the trace is read from an exported Chrome trace
    JSON (single-SoC or fleet-merged); without it the deterministic
    traced mini-fleet scenario runs in-process and the query targets
    its merged trace. Without a ``trace_id`` the command lists every
    ID present so the operator can pick one.
    """
    from .trace import load_trace, query_trace, trace_ids_in

    if args.input is not None:
        trace = load_trace(args.input)
        source = args.input
    else:
        from .eval.fleet import run_traced_fleet_scenario
        scenario = run_traced_fleet_scenario(seed=args.seed)
        trace = scenario["trace"]
        source = (f"traced mini-fleet scenario "
                  f"({len(scenario['fleet'].instances)} instances, "
                  f"seed {args.seed})")
    ids = trace_ids_in(trace)
    if args.trace_id is None:
        print(f"{len(ids)} trace IDs in {source}:")
        for trace_id in ids:
            print(f"  {trace_id}")
        print("\nrerun with one of them: "
              "python -m repro trace-query <trace_id>")
        return
    if args.trace_id not in ids:
        raise SystemExit(f"trace ID {args.trace_id!r} not present in "
                         f"{source} ({len(ids)} IDs; run without an "
                         f"ID to list them)")
    print(query_trace(trace, args.trace_id).render(limit=args.limit))


#: One-line description per subcommand — single source for the
#: ``--help`` listing (every entry must register a parser below).
COMMANDS = {
    "table1": "regenerate Table I (fps / power / DRAM per config)",
    "fig7": "regenerate Fig. 7 (performance across configurations)",
    "fig8": "regenerate Fig. 8 (memory-access reduction)",
    "all": "regenerate Table I, Fig. 7 and Fig. 8 in one run",
    "train": "train the paper's classifier and denoiser models",
    "timeline": "render an execution Gantt chart for one app",
    "metrics-top": "live metrics dashboard over a serving trace",
    "chaos": "self-healing chaos campaign (controller on vs off)",
    "fleet": "multi-instance fleet serving under overload, one run "
             "per load-balancing policy",
    "tune": "auto-tune per-accelerator coherence modes over the "
            "ablation workloads",
    "trace-query": "reconstruct one request's waterfall from its "
                   "distributed trace ID",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ESP4ML reproduction: regenerate the paper's "
                    "tables and figures",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="run 'python -m repro COMMAND --help' for "
               "command-specific options")
    sub = parser.add_subparsers(dest="command", required=True,
                                metavar="COMMAND",
                                title="commands")

    for name, fn in (("table1", _cmd_table1), ("fig7", _cmd_fig7),
                     ("fig8", _cmd_fig8), ("all", _cmd_all)):
        p = sub.add_parser(name, help=COMMANDS[name],
                           description=COMMANDS[name])
        p.add_argument("--frames", type=int, default=32,
                       help="frames per measured run (default 32)")
        p.set_defaults(fn=fn)

    p = sub.add_parser("train", help=COMMANDS["train"],
                       description=COMMANDS["train"])
    p.add_argument("--preset", choices=("fast", "full"), default="fast")
    p.add_argument("--force", action="store_true",
                   help="retrain even if cached")
    p.set_defaults(fn=_cmd_train)

    p = sub.add_parser("timeline", help=COMMANDS["timeline"],
                       description=COMMANDS["timeline"])
    p.add_argument("--app", default="4nv_4cl",
                   help="configuration key (default 4nv_4cl)")
    p.add_argument("--mode", choices=("base", "pipe", "p2p"),
                   default="p2p")
    p.add_argument("--frames", type=int, default=8)
    p.set_defaults(fn=_cmd_timeline)

    p = sub.add_parser("metrics-top", help=COMMANDS["metrics-top"],
                       description=COMMANDS["metrics-top"])
    p.add_argument("--interval", type=int, default=10_000,
                   help="cycles between dashboard frames "
                        "(default 10000)")
    p.add_argument("--requests", type=int, default=2,
                   help="requests per tenant (default 2)")
    p.add_argument("--frames", type=int, default=2,
                   help="frames per request (default 2)")
    p.add_argument("--chaos", action="store_true",
                   help="inject a tile hang and attach the "
                        "self-healing control plane")
    p.set_defaults(fn=_cmd_metrics_top)

    p = sub.add_parser("chaos", help=COMMANDS["chaos"],
                       description=COMMANDS["chaos"])
    p.add_argument("--smoke", action="store_true",
                   help="two-scenario short-horizon variant")
    p.add_argument("--seed", type=int, default=0,
                   help="trace seed (default 0)")
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser("fleet", help=COMMANDS["fleet"],
                       description=COMMANDS["fleet"])
    p.add_argument("--policy", default="all",
                   choices=("all", "round-robin", "least-loaded",
                            "latency-aware"),
                   help="load-balancing policy to run (default: all "
                        "three, for comparison)")
    p.add_argument("--instances", type=int, default=4,
                   help="SoC instances in the fleet (default 4)")
    p.add_argument("--seed", type=int, default=0,
                   help="workload seed (default 0)")
    p.add_argument("--smoke", action="store_true",
                   help="short-horizon variant")
    p.set_defaults(fn=_cmd_fleet)

    p = sub.add_parser("tune", help=COMMANDS["tune"],
                       description=COMMANDS["tune"])
    p.add_argument("--workload", default="all",
                   choices=("all", "fc-streaming", "llc-resident",
                            "false-sharing"),
                   help="ablation workload to tune (default: all)")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also write the tuning report as JSON")
    p.set_defaults(fn=_cmd_tune)

    p = sub.add_parser("trace-query", help=COMMANDS["trace-query"],
                       description=COMMANDS["trace-query"])
    p.add_argument("trace_id", nargs="?", default=None,
                   help="trace ID to reconstruct (e.g. f-23); omit "
                        "to list every ID in the trace")
    p.add_argument("--input", metavar="PATH", default=None,
                   help="exported Chrome trace JSON to query "
                        "(default: run the traced mini-fleet "
                        "scenario in-process)")
    p.add_argument("--seed", type=int, default=0,
                   help="scenario seed when no --input is given "
                        "(default 0)")
    p.add_argument("--limit", type=int, default=60,
                   help="max waterfall rows to print (default 60)")
    p.set_defaults(fn=_cmd_trace_query)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
