"""Command-line entry point: regenerate the paper's results.

Usage::

    python -m repro table1 [--frames N]
    python -m repro fig7   [--frames N]
    python -m repro fig8   [--frames N]
    python -m repro all    [--frames N]
    python -m repro train  [--preset fast|full]
    python -m repro timeline [--mode base|pipe|p2p] [--app KEY]
"""

from __future__ import annotations

import argparse
import sys


def _cmd_table1(args) -> None:
    from .eval import generate_table1, render_table1
    print(render_table1(generate_table1(n_frames=args.frames)))


def _cmd_fig7(args) -> None:
    from .eval import generate_fig7, render_fig7
    print(render_fig7(generate_fig7(n_frames=args.frames)))


def _cmd_fig8(args) -> None:
    from .eval import generate_fig8, render_fig8
    print(render_fig8(generate_fig8(n_frames=args.frames)))


def _cmd_all(args) -> None:
    print("== Table I ==")
    _cmd_table1(args)
    print("\n== Fig. 7 ==")
    _cmd_fig7(args)
    print("\n== Fig. 8 ==")
    _cmd_fig8(args)


def _cmd_train(args) -> None:
    from .flow import train_classifier, train_denoiser
    model, acc = train_classifier(preset=args.preset, force=args.force)
    print(f"classifier accuracy ({args.preset}): {acc:.1%} (paper: 92%)")
    model, err = train_denoiser(preset=args.preset, force=args.force)
    print(f"denoiser reconstruction error ({args.preset}): {err:.1%} "
          f"(paper: 3.1%)")


def _cmd_timeline(args) -> None:
    from .eval import APP_CONFIGS, fresh_runtime
    from .eval.timeline import render_gantt
    config = APP_CONFIGS[args.app]
    runtime = fresh_runtime(config)
    frames, _ = config.make_inputs(args.frames)
    result = runtime.esp_run(config.build_dataflow(), frames,
                             mode=args.mode)
    print(f"{args.app} in mode={args.mode}: "
          f"{result.frames_per_second:,.0f} frames/s\n")
    print(render_gantt(runtime.soc))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ESP4ML reproduction: regenerate the paper's "
                    "tables and figures")
    sub = parser.add_subparsers(dest="command", required=True)

    for name, fn in (("table1", _cmd_table1), ("fig7", _cmd_fig7),
                     ("fig8", _cmd_fig8), ("all", _cmd_all)):
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--frames", type=int, default=32,
                       help="frames per measured run (default 32)")
        p.set_defaults(fn=fn)

    p = sub.add_parser("train", help="train the paper's two models")
    p.add_argument("--preset", choices=("fast", "full"), default="fast")
    p.add_argument("--force", action="store_true",
                   help="retrain even if cached")
    p.set_defaults(fn=_cmd_train)

    p = sub.add_parser("timeline",
                       help="render an execution Gantt chart")
    p.add_argument("--app", default="4nv_4cl",
                   help="configuration key (default 4nv_4cl)")
    p.add_argument("--mode", choices=("base", "pipe", "p2p"),
                   default="p2p")
    p.add_argument("--frames", type=int, default=8)
    p.set_defaults(fn=_cmd_timeline)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
