"""HLS4ML-substitute compiler: trained model -> SoC-ready accelerator.

Takes the topology JSON + weights of a trained model (the same inputs
the real hls4ml consumes) and a reuse factor, and produces an
:class:`HlsModel` with bit-accurate fixed-point inference and hardware
latency/II/resource reports, ready to wrap into an ESP accelerator tile.
"""

from .config import HlsConfig
from .compiler import compile_artifacts, compile_model
from .hls_model import HlsDenseLayer, HlsModel, build_layer
from .codegen import (
    emit_all,
    emit_compute_cpp,
    emit_directives_tcl,
    emit_parameters_header,
    emit_weights_header,
)
from .report import LayerReport, ModelReport, build_report
from .importers import from_onnx_graph, from_torch_state, to_onnx_graph

__all__ = [
    "HlsConfig",
    "HlsDenseLayer",
    "HlsModel",
    "LayerReport",
    "ModelReport",
    "build_layer",
    "build_report",
    "compile_artifacts",
    "compile_model",
    "emit_all",
    "emit_compute_cpp",
    "emit_directives_tcl",
    "emit_parameters_header",
    "emit_weights_header",
    "from_onnx_graph",
    "from_torch_state",
    "to_onnx_graph",
]
