"""HLS4ML configuration: precision and reuse factor.

Mirrors hls4ml's config dictionary: a default fixed-point precision for
the whole model and a reuse factor, optionally overridden per layer.
The paper calls the reuse factor "a single configuration parameter that
specifies the number of times a multiplier is used in the computation
of a layer of neurons" (Sec. II).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..fixed import DEFAULT_FORMAT, FixedFormat


@dataclass
class HlsConfig:
    """Configuration handed to :func:`repro.hls4ml_flow.compile_model`.

    Attributes:
        precision: fixed-point format for activations and weights
            (default ``ap_fixed<16,6>``, the paper's "16-bits
            fixed-point").
        reuse_factor: global reuse factor; may be overridden per layer
            through ``layer_reuse``. Invalid values snap to the nearest
            divisor of each layer's weight count, as hls4ml does.
        layer_reuse: optional per-layer reuse factors keyed by layer
            name.
        clock_mhz: target clock, used only for ns-domain reports.
    """

    precision: Union[FixedFormat, str] = DEFAULT_FORMAT
    reuse_factor: int = 32
    layer_reuse: Dict[str, int] = field(default_factory=dict)
    clock_mhz: float = 78.0

    def __post_init__(self) -> None:
        if isinstance(self.precision, str):
            self.precision = FixedFormat.parse(self.precision)
        if self.reuse_factor < 1:
            raise ValueError(
                f"reuse_factor must be >= 1, got {self.reuse_factor}")
        if self.clock_mhz <= 0:
            raise ValueError(f"clock_mhz must be > 0, got {self.clock_mhz}")

    def reuse_for(self, layer_name: str) -> int:
        return self.layer_reuse.get(layer_name, self.reuse_factor)
