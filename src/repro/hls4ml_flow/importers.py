"""Model importers for non-Keras front ends.

HLS4ML accepts models from "Keras, PyTorch, and ONNX" (paper Sec. II).
The Keras-substitute path lives in :mod:`repro.hls4ml_flow.compiler`;
this module adds the other two front ends over the same intermediate
form:

- :func:`from_onnx_graph` consumes an ONNX-like graph dictionary
  (nodes with ``Gemm``/``Relu``/``Sigmoid``/``Softmax`` ops plus an
  initializer map, the structure ``onnx.GraphProto`` flattens to);
- :func:`from_torch_state` consumes a PyTorch-style ``state_dict``
  (``<idx>.weight`` of shape (out, in), ``<idx>.bias``) plus the
  activation list of the ``nn.Sequential`` it came from.

Both produce a compiled :class:`~repro.hls4ml_flow.hls_model.HlsModel`
identical to what the Keras path yields for the same math.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .config import HlsConfig
from .hls_model import HlsDenseLayer, HlsModel, build_layer

_ONNX_ACTIVATIONS = {"Relu": "relu", "Sigmoid": "sigmoid",
                     "Softmax": "softmax"}
_TORCH_ACTIVATIONS = ("linear", "relu", "sigmoid", "softmax")


def _assemble(name: str, fused: List[Dict],
              config: Optional[HlsConfig]) -> HlsModel:
    config = config or HlsConfig()
    layers: List[HlsDenseLayer] = []
    for index, spec in enumerate(fused):
        layer_name = spec.get("name") or f"dense_{index}"
        layers.append(build_layer(
            name=layer_name,
            weights=spec["weights"],
            bias=spec["bias"],
            activation=spec["activation"],
            precision=config.precision,
            reuse_factor=config.reuse_for(layer_name),
        ))
    return HlsModel(name=name, layers=layers, clock_mhz=config.clock_mhz)


def from_onnx_graph(graph: Dict,
                    config: Optional[HlsConfig] = None) -> HlsModel:
    """Compile an ONNX-like graph dictionary.

    Expected structure::

        {"name": "model",
         "nodes": [
             {"op_type": "Gemm", "inputs": ["x", "W0", "B0"],
              "outputs": ["h0"], "name": "gemm0"},
             {"op_type": "Relu", "inputs": ["h0"], "outputs": ["h1"]},
             ...],
         "initializers": {"W0": ndarray(out, in), "B0": ndarray(out)}}

    ONNX ``Gemm`` convention: ``Y = X @ W.T + B`` (transB=1, the
    PyTorch exporter default), so weights arrive as (out, in) and are
    transposed into the compiler's (in, out) layout.
    """
    initializers = graph.get("initializers", {})
    fused: List[Dict] = []
    for node in graph.get("nodes", []):
        op = node["op_type"]
        if op == "Gemm":
            inputs = node["inputs"]
            if len(inputs) < 3:
                raise ValueError(
                    f"Gemm node {node.get('name')!r} needs data, weight "
                    f"and bias inputs")
            w_name, b_name = inputs[1], inputs[2]
            if w_name not in initializers or b_name not in initializers:
                raise KeyError(
                    f"initializers {w_name!r}/{b_name!r} not found")
            weights = np.asarray(initializers[w_name], dtype=np.float64)
            bias = np.asarray(initializers[b_name], dtype=np.float64)
            fused.append({"name": node.get("name"),
                          "weights": weights.T, "bias": bias,
                          "activation": "linear"})
        elif op in _ONNX_ACTIVATIONS:
            if not fused:
                raise ValueError(f"{op} node precedes any Gemm")
            if fused[-1]["activation"] != "linear":
                raise ValueError(f"two consecutive activations at {op}")
            fused[-1]["activation"] = _ONNX_ACTIVATIONS[op]
        elif op in ("Dropout", "Identity"):
            continue   # inference no-ops, as in hls4ml
        else:
            raise ValueError(f"unsupported ONNX op {op!r}")
    if not fused:
        raise ValueError("graph contains no Gemm nodes")
    return _assemble(graph.get("name", "onnx_model"), fused, config)


def from_torch_state(state_dict: Dict[str, np.ndarray],
                     activations: Sequence[str],
                     name: str = "torch_model",
                     config: Optional[HlsConfig] = None) -> HlsModel:
    """Compile a PyTorch-style Sequential state dict.

    ``state_dict`` holds ``"<idx>.weight"`` arrays of shape (out, in)
    and ``"<idx>.bias"`` of shape (out,), one pair per Linear module;
    ``activations`` gives the post-activation of each Linear in order
    ("linear", "relu", "sigmoid" or "softmax").
    """
    indices = sorted({int(key.split(".")[0]) for key in state_dict
                      if key.endswith(".weight")})
    if not indices:
        raise ValueError("state_dict contains no '<idx>.weight' entries")
    if len(activations) != len(indices):
        raise ValueError(
            f"{len(indices)} Linear layers but {len(activations)} "
            f"activations given")
    fused: List[Dict] = []
    for index, activation in zip(indices, activations):
        if activation not in _TORCH_ACTIVATIONS:
            raise ValueError(
                f"activation must be one of {_TORCH_ACTIVATIONS}, got "
                f"{activation!r}")
        weight = np.asarray(state_dict[f"{index}.weight"],
                            dtype=np.float64)
        bias_key = f"{index}.bias"
        bias = np.asarray(state_dict[bias_key], dtype=np.float64) \
            if bias_key in state_dict else np.zeros(weight.shape[0])
        fused.append({"name": f"linear_{index}", "weights": weight.T,
                      "bias": bias, "activation": activation})
    return _assemble(name, fused, config)


def to_onnx_graph(model: "HlsModel") -> Dict:
    """Export a compiled model back to the ONNX-like dictionary.

    Round-trips with :func:`from_onnx_graph` (used by tests and by
    downstream tools that want a framework-neutral dump).
    """
    nodes = []
    initializers = {}
    prev = "input"
    for index, layer in enumerate(model.layers):
        w_name, b_name = f"W{index}", f"B{index}"
        initializers[w_name] = layer.weights.T.copy()
        initializers[b_name] = layer.bias.copy()
        out = f"gemm{index}_out"
        nodes.append({"op_type": "Gemm", "name": f"gemm{index}",
                      "inputs": [prev, w_name, b_name],
                      "outputs": [out]})
        prev = out
        if layer.activation != "linear":
            op = {v: k for k, v in _ONNX_ACTIVATIONS.items()}[
                layer.activation]
            act_out = f"act{index}_out"
            nodes.append({"op_type": op, "inputs": [prev],
                          "outputs": [act_out]})
            prev = act_out
    return {"name": model.name, "nodes": nodes,
            "initializers": initializers}
