"""The HLS4ML-substitute compiler.

Consumes exactly what hls4ml consumes — the topology JSON and the
weight arrays of a trained model (paper Sec. II) — and produces an
:class:`~repro.hls4ml_flow.hls_model.HlsModel` ready for SoC
integration: bit-accurate fixed-point inference plus per-layer hardware
schedules controlled by the reuse factor.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

import numpy as np

from ..nn import Sequential, model_artifacts
from .config import HlsConfig
from .hls_model import HlsDenseLayer, HlsModel, build_layer

_ACTIVATION_CLASSES = {"ReLU": "relu", "Sigmoid": "sigmoid",
                       "Softmax": "softmax"}
_IGNORED_CLASSES = ("Dropout", "GaussianNoise")


def _parse_layers(config: Dict) -> List[Dict]:
    """Fuse Dense + following activation; drop training-only layers.

    hls4ml performs the same normalization: dropout disappears at
    inference, and activations fuse into the preceding dense layer.
    """
    fused: List[Dict] = []
    for layer in config["layers"]:
        cls = layer["class_name"]
        if cls in _IGNORED_CLASSES:
            continue
        if cls == "Dense":
            fused.append({"name": layer["name"], "units": layer["units"],
                          "activation": "linear", "batch_norm": None})
        elif cls == "BatchNormalization":
            # hls4ml's fuse_batch_norm pass: fold into the preceding
            # Dense layer (must come before its activation).
            if not fused:
                raise ValueError(
                    f"BatchNormalization {layer['name']!r} precedes any "
                    f"Dense layer")
            if fused[-1]["activation"] != "linear":
                raise ValueError(
                    f"BatchNormalization {layer['name']!r} after the "
                    f"activation cannot be folded; place it between the "
                    f"Dense layer and its activation")
            if fused[-1]["batch_norm"] is not None:
                raise ValueError(
                    f"two BatchNormalization layers after "
                    f"{fused[-1]['name']!r}")
            fused[-1]["batch_norm"] = {"name": layer["name"],
                                       "eps": layer.get("eps", 1e-3)}
        elif cls in _ACTIVATION_CLASSES:
            if not fused:
                raise ValueError(
                    f"activation layer {layer['name']!r} precedes any Dense "
                    f"layer")
            if fused[-1]["activation"] != "linear":
                raise ValueError(
                    f"two consecutive activations at {layer['name']!r}")
            fused[-1]["activation"] = _ACTIVATION_CLASSES[cls]
        else:
            raise ValueError(
                f"layer class {cls!r} is not supported by the compiler")
    if not fused:
        raise ValueError("model contains no Dense layers")
    return fused


def compile_artifacts(json_text: str, weights: Dict[str, np.ndarray],
                      config: Optional[HlsConfig] = None) -> HlsModel:
    """Compile from the JSON + weights pair (the hls4ml input format)."""
    config = config or HlsConfig()
    model_config = json.loads(json_text)
    fused = _parse_layers(model_config)

    layers: List[HlsDenseLayer] = []
    for spec in fused:
        name = spec["name"]
        w_key, b_key = f"{name}/weights", f"{name}/bias"
        if w_key not in weights or b_key not in weights:
            raise KeyError(f"weights for layer {name!r} not found")
        w = np.asarray(weights[w_key], dtype=np.float64)
        b = np.asarray(weights[b_key], dtype=np.float64)
        if spec.get("batch_norm"):
            bn = spec["batch_norm"]
            prefix = bn["name"]
            try:
                gamma = weights[f"{prefix}/gamma"]
                beta = weights[f"{prefix}/beta"]
                mean = weights[f"{prefix}/moving_mean"]
                var = weights[f"{prefix}/moving_var"]
            except KeyError as exc:
                raise KeyError(
                    f"batch-norm weights for {prefix!r} not found") from exc
            scale = gamma / np.sqrt(np.asarray(var) + bn["eps"])
            # y = scale * (xW + b) + shift  ->  x(W*scale) + fused bias
            w = w * scale[None, :]
            b = scale * b + (beta - scale * np.asarray(mean))
        layers.append(build_layer(
            name=name,
            weights=w,
            bias=b,
            activation=spec["activation"],
            precision=config.precision,
            reuse_factor=config.reuse_for(name),
        ))
    return HlsModel(name=model_config.get("name", "model"), layers=layers,
                    clock_mhz=config.clock_mhz)


def compile_model(model: Sequential,
                  config: Optional[HlsConfig] = None) -> HlsModel:
    """Compile a trained in-memory model (convenience entry point)."""
    json_text, weights = model_artifacts(model)
    return compile_artifacts(json_text, weights, config)
