"""Firmware code generation (the ``compute.cpp`` of Fig. 3).

The real hls4ml emits C++ firmware that Vivado HLS synthesizes; here we
emit the equivalent sources as build artifacts, so the flow produces
the same file set the paper's toolchain hands to the FPGA tools. The
sources are not compiled (there is no HLS tool in this environment) —
the bit-accurate behaviour lives in :mod:`repro.hls4ml_flow.hls_model`.
"""

from __future__ import annotations

from typing import Dict

from ..hls import DirectiveFile, ap_fifo_interface, array_partition, pipeline
from .hls_model import HlsModel


def emit_parameters_header(model: HlsModel) -> str:
    """``parameters.h``: sizes and precisions of every layer."""
    lines = ["#ifndef PARAMETERS_H_", "#define PARAMETERS_H_", ""]
    fmt = model.layers[0].precision
    lines.append(f"typedef ap_fixed<{fmt.width},{fmt.integer_bits}> model_t;")
    lines.append("")
    for index, layer in enumerate(model.layers, start=1):
        lines.append(f"#define N_LAYER_{index}_IN  {layer.n_in}")
        lines.append(f"#define N_LAYER_{index}_OUT {layer.n_out}")
        lines.append(f"#define REUSE_{index}       {layer.reuse_factor}")
    lines.extend(["", "#endif  // PARAMETERS_H_", ""])
    return "\n".join(lines)


def emit_weights_header(model: HlsModel, max_values: int = 8) -> str:
    """``weights.h``: weight arrays (elided after ``max_values``)."""
    lines = ["// Auto-generated weight tables (values elided for brevity)"]
    for index, layer in enumerate(model.layers, start=1):
        flat = layer.weights.reshape(-1)
        head = ", ".join(f"{v:.6f}" for v in flat[:max_values])
        lines.append(
            f"static const model_t w{index}[{flat.size}] = {{ {head}"
            + (", ..." if flat.size > max_values else "") + " };")
        bias = ", ".join(f"{v:.6f}" for v in layer.bias[:max_values])
        lines.append(
            f"static const model_t b{index}[{layer.bias.size}] = {{ {bias}"
            + (", ..." if layer.bias.size > max_values else "") + " };")
    return "\n".join(lines) + "\n"


def emit_compute_cpp(model: HlsModel) -> str:
    """``compute.cpp``: the inference top function hls4ml would emit."""
    lines = [
        '#include "parameters.h"',
        '#include "weights.h"',
        "",
        f"// Network: {'x'.join(str(s) for s in model.topology)}",
        "void compute(model_t input[N_LAYER_1_IN], "
        f"model_t output[N_LAYER_{len(model.layers)}_OUT]) {{",
    ]
    prev = "input"
    for index, layer in enumerate(model.layers, start=1):
        buf = (f"layer{index}_out" if index < len(model.layers) else "output")
        if index < len(model.layers):
            lines.append(f"    model_t {buf}[N_LAYER_{index}_OUT];")
        lines.append(
            f"    nnet::dense<model_t, {layer.n_in}, {layer.n_out}, "
            f"REUSE_{index}>({prev}, {buf}, w{index}, b{index});")
        if layer.activation != "linear":
            lines.append(
                f"    nnet::{layer.activation}<model_t, "
                f"N_LAYER_{index}_OUT>({buf}, {buf});")
        prev = buf
    lines.extend(["}", ""])
    return "\n".join(lines)


def emit_directives_tcl(model: HlsModel) -> str:
    """``directives.tcl`` matching the generated compute function."""
    directives = DirectiveFile(top="compute")
    directives.add(ap_fifo_interface("compute", "input"))
    directives.add(ap_fifo_interface("compute", "output"))
    for index, layer in enumerate(model.layers, start=1):
        directives.add(pipeline(f"compute/dense_{index}",
                                ii=layer.reuse_factor))
        directives.add(array_partition(
            "compute", f"w{index}",
            factor=max(1, min(layer.n_multipliers, 64))))
    return directives.to_tcl()


def emit_all(model: HlsModel) -> Dict[str, str]:
    """Every artifact of the ML branch of Fig. 3, keyed by file name."""
    return {
        "parameters.h": emit_parameters_header(model),
        "weights.h": emit_weights_header(model),
        "compute.cpp": emit_compute_cpp(model),
        "directives.tcl": emit_directives_tcl(model),
    }
