"""Synthesis-style reports for compiled models (HLS report substitute)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..hls import FpgaDevice, ResourceEstimate, XCVU9P
from .hls_model import HlsModel


@dataclass(frozen=True)
class LayerReport:
    name: str
    n_in: int
    n_out: int
    reuse_factor: int
    n_multipliers: int
    latency_cycles: int
    interval_cycles: int
    resources: ResourceEstimate


@dataclass(frozen=True)
class ModelReport:
    """Whole-model synthesis summary (what `vivado_hls -report` prints)."""

    name: str
    topology: List[int]
    clock_mhz: float
    latency_cycles: int
    interval_cycles: int
    resources: ResourceEstimate
    layers: List[LayerReport]

    @property
    def latency_us(self) -> float:
        return self.latency_cycles / self.clock_mhz

    @property
    def throughput_fps(self) -> float:
        return self.clock_mhz * 1e6 / self.interval_cycles

    def utilization(self, device: FpgaDevice = XCVU9P) -> Dict[str, float]:
        return device.utilization(self.resources)

    def to_text(self, device: FpgaDevice = XCVU9P) -> str:
        util = self.utilization(device)
        lines = [
            f"== Synthesis report: {self.name} "
            f"({'x'.join(str(s) for s in self.topology)}) ==",
            f"clock: {self.clock_mhz} MHz   "
            f"latency: {self.latency_cycles} cycles ({self.latency_us:.2f} us)"
            f"   II: {self.interval_cycles} cycles"
            f"   throughput: {self.throughput_fps:,.0f} frames/s",
            f"resources on {device.name}: "
            f"LUT {util['luts']:.1%}  FF {util['ffs']:.1%}  "
            f"BRAM {util['brams']:.1%}  DSP {util['dsps']:.1%}",
            f"{'layer':<16}{'in':>6}{'out':>6}{'reuse':>7}{'mults':>8}"
            f"{'lat':>8}{'II':>8}{'DSP':>7}{'BRAM':>7}",
        ]
        for layer in self.layers:
            lines.append(
                f"{layer.name:<16}{layer.n_in:>6}{layer.n_out:>6}"
                f"{layer.reuse_factor:>7}{layer.n_multipliers:>8}"
                f"{layer.latency_cycles:>8}{layer.interval_cycles:>8}"
                f"{layer.resources.dsps:>7}{layer.resources.brams:>7}")
        return "\n".join(lines)


def build_report(model: HlsModel) -> ModelReport:
    """Produce the report for a compiled model."""
    layers = [
        LayerReport(
            name=layer.name,
            n_in=layer.n_in,
            n_out=layer.n_out,
            reuse_factor=layer.reuse_factor,
            n_multipliers=layer.n_multipliers,
            latency_cycles=layer.schedule.latency,
            interval_cycles=layer.schedule.interval,
            resources=layer.schedule.resources,
        )
        for layer in model.layers
    ]
    return ModelReport(
        name=model.name,
        topology=model.topology,
        clock_mhz=model.clock_mhz,
        latency_cycles=model.latency_cycles,
        interval_cycles=model.interval_cycles,
        resources=model.resources,
        layers=layers,
    )
