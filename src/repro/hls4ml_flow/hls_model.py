"""The compiled HLS model: bit-accurate inference + hardware reports.

An :class:`HlsModel` is what the HLS4ML-substitute compiler produces
from a trained Keras-substitute model: a stack of fixed-point dense
layers, each with a hardware schedule (latency, II, resources) derived
from its reuse factor, plus a whole-model report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..fixed import (
    FixedFormat,
    fixed_matvec,
    fixed_relu,
    fixed_sigmoid,
    fixed_softmax,
)
from ..hls import (
    LoopSchedule,
    ResourceEstimate,
    dataflow_schedule,
    dense_layer_schedule,
    nearest_reuse_factor,
)

ACTIVATIONS = ("linear", "relu", "sigmoid", "softmax")


@dataclass
class HlsDenseLayer:
    """One dense layer as compiled for hardware."""

    name: str
    weights: np.ndarray           # (n_in, n_out), float values on the grid
    bias: np.ndarray              # (n_out,)
    activation: str
    precision: FixedFormat
    reuse_factor: int
    schedule: LoopSchedule
    # Lazy forward-pass cache: (quantized W^T, quantized bias). The
    # parameters are constants (a ROM in hardware), so they are snapped
    # to the grid once instead of on every frame; invalidated implicitly
    # by never mutating `weights`/`bias` after construction.
    _quantized_params: Optional[tuple] = field(
        default=None, repr=False, compare=False)

    @property
    def n_in(self) -> int:
        return self.weights.shape[0]

    @property
    def n_out(self) -> int:
        return self.weights.shape[1]

    @property
    def n_weights(self) -> int:
        return self.weights.size

    @property
    def n_multipliers(self) -> int:
        return self.n_weights // self.reuse_factor

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Bit-accurate fixed-point forward pass of this layer."""
        params = self._quantized_params
        if params is None:
            # Exactly what fixed_matvec would compute per call; cached
            # because quantization is idempotent and W/b never change.
            params = (self.precision.quantize(self.weights.T),
                      self.precision.quantize(self.bias))
            self._quantized_params = params
        y = fixed_matvec(params[0], np.asarray(x).T, params[1],
                         in_fmt=self.precision, weight_fmt=self.precision,
                         out_fmt=self.precision,
                         params_quantized=True).T
        if self.activation == "relu":
            return fixed_relu(y, self.precision)
        if self.activation == "sigmoid":
            return fixed_sigmoid(y, self.precision)
        if self.activation == "softmax":
            return fixed_softmax(y, self.precision)
        return y


def build_layer(name: str, weights: np.ndarray, bias: np.ndarray,
                activation: str, precision: FixedFormat,
                reuse_factor: int) -> HlsDenseLayer:
    """Quantize parameters and schedule one dense layer."""
    if activation not in ACTIVATIONS:
        raise ValueError(
            f"unsupported activation {activation!r}; options: {ACTIVATIONS}")
    weights = np.asarray(weights, dtype=np.float64)
    bias = np.asarray(bias, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
    if bias.shape != (weights.shape[1],):
        raise ValueError(
            f"bias shape {bias.shape} does not match units {weights.shape[1]}")
    n_in, n_out = weights.shape
    reuse = nearest_reuse_factor(n_in * n_out, reuse_factor)
    schedule = dense_layer_schedule(n_in, n_out, reuse,
                                    weight_width=precision.width)
    return HlsDenseLayer(
        name=name,
        weights=precision.quantize(weights),
        bias=precision.quantize(bias),
        activation=activation,
        precision=precision,
        reuse_factor=reuse,
        schedule=schedule,
    )


class HlsModel:
    """A compiled network: layers + aggregate hardware characteristics."""

    def __init__(self, name: str, layers: List[HlsDenseLayer],
                 clock_mhz: float) -> None:
        if not layers:
            raise ValueError("an HlsModel needs at least one layer")
        for prev, nxt in zip(layers, layers[1:]):
            if prev.n_out != nxt.n_in:
                raise ValueError(
                    f"layer {prev.name!r} outputs {prev.n_out} values but "
                    f"{nxt.name!r} expects {nxt.n_in}")
        self.name = name
        self.layers = layers
        self.clock_mhz = clock_mhz
        self._schedule = dataflow_schedule(*(l.schedule for l in layers))

    # -- functional ------------------------------------------------------

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Bit-accurate fixed-point inference over a batch."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.input_size:
            raise ValueError(
                f"expected {self.input_size} inputs, got {x.shape[1]}")
        for layer in self.layers:
            x = layer.forward(x)
        return x

    # -- shape -----------------------------------------------------------

    @property
    def input_size(self) -> int:
        return self.layers[0].n_in

    @property
    def output_size(self) -> int:
        return self.layers[-1].n_out

    @property
    def topology(self) -> List[int]:
        return [self.input_size] + [l.n_out for l in self.layers]

    # -- hardware --------------------------------------------------------

    @property
    def latency_cycles(self) -> int:
        """Cycles from input availability to output for one frame."""
        return self._schedule.latency

    @property
    def interval_cycles(self) -> int:
        """Initiation interval in cycles (throughput = clk / II)."""
        return self._schedule.interval

    @property
    def resources(self) -> ResourceEstimate:
        return self._schedule.resources

    @property
    def latency_us(self) -> float:
        return self.latency_cycles / self.clock_mhz

    def throughput_fps(self, clock_mhz: Optional[float] = None) -> float:
        """Peak frames/s of the standalone kernel (no I/O overhead)."""
        clock = clock_mhz if clock_mhz is not None else self.clock_mhz
        return clock * 1e6 / self.interval_cycles
