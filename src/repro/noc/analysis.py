"""Static NoC analysis: latency, bandwidth and utilization structure.

Complements the dynamic simulation with the closed-form numbers a NoC
architect checks first: zero-load latencies under XY routing, the mesh
diameter, bisection bandwidth, a saturation estimate for uniform
traffic, and post-run link-utilization summaries (including an ASCII
heatmap of a plane).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .mesh import Mesh2D
from .routing import hop_count

Coord = Tuple[int, int]


def zero_load_latency(src: Coord, dst: Coord, payload_flits: int,
                      router_latency: int = 2) -> int:
    """Uncontended wormhole latency of one packet (cycles)."""
    hops = hop_count(src, dst)
    if hops == 0:
        return router_latency
    return hops * router_latency + payload_flits + 1


def mesh_diameter(cols: int, rows: int) -> int:
    """Longest minimal route in hops (corner to corner)."""
    if cols < 1 or rows < 1:
        raise ValueError("mesh must be at least 1x1")
    return (cols - 1) + (rows - 1)


def average_distance(cols: int, rows: int) -> float:
    """Mean hop count over all ordered tile pairs (uniform traffic)."""
    total = 0
    pairs = 0
    for sx in range(cols):
        for sy in range(rows):
            for dx in range(cols):
                for dy in range(rows):
                    if (sx, sy) == (dx, dy):
                        continue
                    total += hop_count((sx, sy), (dx, dy))
                    pairs += 1
    return total / pairs if pairs else 0.0


def bisection_links(cols: int, rows: int) -> int:
    """Directed links crossing the vertical bisection (per plane)."""
    if cols < 2:
        return 0
    return 2 * rows   # one link pair per row across the middle cut


def bisection_bandwidth_flits(cols: int, rows: int,
                              planes: int = 1) -> int:
    """Flits/cycle across the bisection (1 flit/link/cycle)."""
    return bisection_links(cols, rows) * planes


def saturation_injection_rate(cols: int, rows: int) -> float:
    """Per-tile injection rate (flits/cycle) at bisection saturation.

    Uniform random traffic sends half of all flits across the
    bisection; with N tiles injecting r flits/cycle each, saturation
    is at ``N * r / 2 = B`` where B is the bisection bandwidth.
    """
    n_tiles = cols * rows
    if n_tiles == 0:
        return 0.0
    bandwidth = bisection_bandwidth_flits(cols, rows)
    if bandwidth == 0:
        return float("inf")   # 1-column mesh has no vertical cut
    return 2.0 * bandwidth / n_tiles


@dataclass(frozen=True)
class LinkUtilization:
    src: Coord
    dst: Coord
    plane: str
    flits: int
    utilization: float


def link_utilizations(mesh: Mesh2D, plane: str,
                      elapsed: Optional[int] = None
                      ) -> List[LinkUtilization]:
    """Per-link utilization on one plane, busiest first."""
    if plane not in mesh.planes:
        raise ValueError(f"unknown plane {plane!r}")
    out = []
    for (src, dst, link_plane), link in mesh.links.items():
        if link_plane != plane:
            continue
        out.append(LinkUtilization(
            src=src, dst=dst, plane=plane, flits=link.flits_carried,
            utilization=link.utilization(elapsed)))
    out.sort(key=lambda l: l.flits, reverse=True)
    return out


def utilization_heatmap(mesh: Mesh2D, plane: str,
                        elapsed: Optional[int] = None) -> str:
    """ASCII heatmap: per-tile total flits forwarded on ``plane``.

    Each cell aggregates the flits of the links *leaving* that tile —
    a quick view of where traffic concentrates.
    """
    per_tile: Dict[Coord, int] = {c: 0 for c in mesh.coords()}
    for util in link_utilizations(mesh, plane, elapsed):
        per_tile[util.src] += util.flits
    peak = max(per_tile.values()) or 1
    shades = " .:-=+*#%@"
    lines = [f"plane {plane}: flits forwarded per tile "
             f"(peak {peak:,})"]
    for y in range(mesh.rows):
        row = []
        for x in range(mesh.cols):
            frac = per_tile[(x, y)] / peak
            shade = shades[min(len(shades) - 1,
                               int(frac * (len(shades) - 1) + 0.5))]
            row.append(shade * 3)
        lines.append("|" + "|".join(row) + "|")
    return "\n".join(lines)
