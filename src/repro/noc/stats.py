"""NoC traffic reporting helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .mesh import Mesh2D
from .packet import MessageKind


@dataclass(frozen=True)
class NocReport:
    """Snapshot of NoC activity for one simulation run."""

    packets_delivered: int
    flit_hops: int
    average_latency: float
    plane_flits: Dict[str, int]
    delivered_by_kind: Dict[str, int]

    def to_text(self) -> str:
        lines = [
            f"packets delivered: {self.packets_delivered}",
            f"flit-hops:         {self.flit_hops}",
            f"avg latency:       {self.average_latency:.1f} cycles",
            "flits per plane:",
        ]
        for plane, flits in sorted(self.plane_flits.items()):
            lines.append(f"  {plane:<10}{flits}")
        lines.append("packets per kind:")
        for kind, count in sorted(self.delivered_by_kind.items()):
            lines.append(f"  {kind:<10}{count}")
        return "\n".join(lines)


def collect_report(mesh: Mesh2D) -> NocReport:
    return NocReport(
        packets_delivered=mesh.packets_delivered,
        flit_hops=mesh.flit_hops,
        average_latency=mesh.average_latency,
        plane_flits=mesh.plane_flits(),
        delivered_by_kind={k.value: v
                           for k, v in mesh.delivered_by_kind.items()},
    )
