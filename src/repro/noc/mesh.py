"""The multi-plane 2D-mesh NoC.

An M x N grid of tiles connected by bi-directional links on several
independent planes (paper Sec. II): three coherence planes, two DMA
planes (requests and responses decoupled to prevent deadlock — the
queues the p2p service later reuses), and one IO/IRQ plane.

The timing model is wormhole switching at packet granularity: the head
flit acquires each link of the XY route in order (head-of-line blocking
and contention emerge from the link resources), each router adds a
fixed pipeline latency, and the body serializes for ``size_flits``
cycles. End-to-end latency of an uncontended packet is the textbook
``hops * router_latency + size_flits``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..sim import Environment, Fifo, Process, Timeout
from .link import Link
from .packet import Coord, MessageKind, Packet
from .routing import route_hops_cached, validate_coord


@dataclass(frozen=True)
class NocPlane:
    """One NoC plane: a full set of mesh links of a given width."""

    name: str
    flit_bits: int = 64

    def __post_init__(self) -> None:
        if self.flit_bits < 8:
            raise ValueError(f"flit_bits must be >= 8, got {self.flit_bits}")


#: ESP's six-plane configuration (Fig. 2): planes 1-3 carry the cache
#: coherence protocol, planes 4-5 are the accelerators' DMA response /
#: request planes, plane 6 carries IO and interrupts.
DEFAULT_PLANES = (
    NocPlane("coh-req"),
    NocPlane("coh-fwd"),
    NocPlane("coh-rsp"),
    NocPlane("dma-rsp"),
    NocPlane("dma-req"),
    NocPlane("io-irq", flit_bits=32),
)

#: The two planes allotted to accelerator DMA (paper Sec. II).
DMA_REQUEST_PLANE = "dma-req"
DMA_RESPONSE_PLANE = "dma-rsp"
IO_PLANE = "io-irq"

#: The three cache-coherence planes (Fig. 2 planes 1-3). Idle under
#: non-coherent and LLC-coherent DMA; the fully-coherent accelerator
#: model (:mod:`repro.soc.coherence`) carries its MESI-style protocol
#: on them: requests, forwarded invalidations, and responses (grants,
#: acks and writebacks) on decoupled planes to prevent deadlock.
COH_REQUEST_PLANE = "coh-req"
COH_FORWARD_PLANE = "coh-fwd"
COH_RESPONSE_PLANE = "coh-rsp"


class Mesh2D:
    """The NoC instance: links, ejection queues and transmission."""

    def __init__(self, env: Environment, cols: int, rows: int,
                 planes: Iterable[NocPlane] = DEFAULT_PLANES,
                 router_latency: int = 2,
                 trace_links: bool = False) -> None:
        if cols < 1 or rows < 1:
            raise ValueError(f"mesh must be at least 1x1, got {cols}x{rows}")
        if router_latency < 1:
            raise ValueError(
                f"router_latency must be >= 1, got {router_latency}")
        self.env = env
        self.cols = cols
        self.rows = rows
        planes = tuple(planes)
        self.planes: Dict[str, NocPlane] = {p.name: p for p in planes}
        if len(self.planes) < len(planes):
            raise ValueError("duplicate plane names")
        self.router_latency = router_latency

        self.links: Dict[Tuple[Coord, Coord, str], Link] = {}
        for x in range(cols):
            for y in range(rows):
                for nx, ny in ((x + 1, y), (x, y + 1)):
                    if nx >= cols or ny >= rows:
                        continue
                    for plane in self.planes.values():
                        for src, dst in (((x, y), (nx, ny)),
                                         ((nx, ny), (x, y))):
                            self.links[(src, dst, plane.name)] = Link(
                                env, src, dst, plane.name,
                                plane.flit_bits,
                                record_history=trace_links)

        self._inboxes: Dict[Tuple[Coord, str], Fifo] = {}
        for x in range(cols):
            for y in range(rows):
                for plane in self.planes:
                    self._inboxes[((x, y), plane)] = Fifo(
                        env, name=f"inbox{(x, y)}@{plane}")

        # Hop table: (src, dst, plane) -> the Link objects of the XY
        # route, resolved once (lazily, on first traffic) instead of a
        # route computation plus per-hop dict lookups on every packet.
        # Sound because XY routes and the link set are both immutable
        # for the lifetime of the mesh (see repro.noc.routing).
        self._route_links: Dict[Tuple[Coord, Coord, str],
                                Tuple[Link, ...]] = {}

        # Endpoint validation cache: (coord, plane) pairs already
        # checked. The mesh is immutable, so a pair that validated once
        # validates forever — send() then costs two set probes instead
        # of re-running the bounds/plane checks per packet.
        self._checked: set = set()

        # Aggregate statistics.
        self.packets_delivered = 0
        self.flit_hops = 0
        self.total_latency = 0
        self.delivered_by_kind: Dict[MessageKind, int] = {}

        # Fault hook: a FaultInjector consulted at packet ejection
        # (None by default — the hook then costs nothing and timing is
        # identical to a fault-free build).
        self.fault_injector = None
        self.packets_dropped = 0
        self.packets_corrupted = 0

    # -- topology helpers --------------------------------------------------

    def coords(self) -> List[Coord]:
        return [(x, y) for y in range(self.rows) for x in range(self.cols)]

    def inbox(self, coord: Coord, plane: str) -> Fifo:
        """The ejection queue of ``coord`` on ``plane``."""
        self._check(coord, plane)
        return self._inboxes[(coord, plane)]

    def flit_bits(self, plane: str) -> int:
        return self.planes[plane].flit_bits

    def _check(self, coord: Coord, plane: str) -> None:
        if (coord, plane) in self._checked:
            return
        validate_coord(coord, self.cols, self.rows)
        if plane not in self.planes:
            raise ValueError(
                f"unknown plane {plane!r}; options: {sorted(self.planes)}")
        self._checked.add((coord, plane))

    def route_links(self, src: Coord, dst: Coord,
                    plane: str) -> Tuple[Link, ...]:
        """The links of the XY route from ``src`` to ``dst`` on ``plane``.

        Memoized per mesh; the tuple is shared, callers must not
        mutate link state except through the link API.
        """
        key = (src, dst, plane)
        links = self._route_links.get(key)
        if links is None:
            links = tuple(self.links[(a, b, plane)]
                          for a, b in route_hops_cached(src, dst))
            self._route_links[key] = links
        return links

    # -- transmission -------------------------------------------------------

    def send(self, packet: Packet) -> Process:
        """Inject ``packet``; the process completes at delivery."""
        self._check(packet.src, packet.plane)
        self._check(packet.dst, packet.plane)
        return self.env.process(self._transmit(packet))

    def _transmit(self, packet: Packet):
        packet.injected_at = self.env.now
        tracer = self.env.tracer
        sid = None
        if tracer is not None:
            sid = tracer.begin(
                "noc", packet.plane, packet.kind.name, "noc.packet",
                src=str(packet.src), dst=str(packet.dst),
                flits=packet.size_flits)
        if packet.src == packet.dst:
            # Local ejection: no links, one router traversal.
            yield Timeout(self.env, self.router_latency)
        else:
            env = self.env
            router_latency = self.router_latency
            route = self.route_links(packet.src, packet.dst, packet.plane)
            held_sids: List[int] = []
            for link in route:
                yield link.channel.acquire()
                if tracer is not None:
                    held_sids.append(tracer.begin(
                        "noc", f"{packet.plane} {link.src}->{link.dst}",
                        packet.kind.name, "noc.link",
                        flits=packet.size_flits))
                yield Timeout(env, router_latency)
            # Head reached the destination; the body drains behind it.
            # The hold is a single multi-cycle timeout per link set — the
            # whole serialized body in one event, never one event per
            # flit (see docs/performance.md).
            yield Timeout(env, packet.size_flits)
            size_flits = packet.size_flits
            for index, link in enumerate(route):
                link.record(size_flits)
                link.channel.release()
                if tracer is not None:
                    tracer.end(held_sids[index])
            self.flit_hops += size_flits * len(route)
            if self.env.metrics is not None:
                self.env.metrics.noc_flits.labels(packet.plane).inc(
                    size_flits * len(route))
        if self.fault_injector is not None:
            # Delivery faults strike after the wormhole released every
            # link, so a lost packet never leaves a stuck channel: the
            # loss is visible only as a missing ejection (and a
            # watchdog timeout at whoever was waiting for it).
            action = self.fault_injector.on_deliver(packet, self.env.now)
            if action == "drop":
                self.packets_dropped += 1
                if self.env.metrics is not None:
                    self.env.metrics.noc_dropped.labels(
                        packet.plane).inc()
                if sid is not None:
                    tracer.end(sid, outcome="dropped")
                if packet.on_lost is not None:
                    packet.on_lost()
                return packet
            if action == "corrupt":
                # Link-level CRC catches the mangled payload at
                # ejection and discards it — corruption is detected,
                # never silently delivered.
                self.packets_corrupted += 1
                if self.env.metrics is not None:
                    self.env.metrics.noc_corrupted.labels(
                        packet.plane).inc()
                if sid is not None:
                    tracer.end(sid, outcome="corrupted")
                if packet.on_lost is not None:
                    packet.on_lost()
                return packet
        packet.delivered_at = self.env.now
        self.packets_delivered += 1
        if self.env.metrics is not None:
            self.env.metrics.noc_packets.labels(packet.plane).inc()
        self.total_latency += packet.latency
        self.delivered_by_kind[packet.kind] = (
            self.delivered_by_kind.get(packet.kind, 0) + 1)
        if sid is not None:
            tracer.end(sid, outcome="delivered")
        yield self._inboxes[(packet.dst, packet.plane)].put(packet)
        return packet

    # -- vectorized transport (wide-mesh sweeps) ----------------------------

    def bulk_uncontended_latencies(self, srcs: Sequence[Coord],
                                   dsts: Sequence[Coord],
                                   size_flits: int,
                                   plane: str = DMA_REQUEST_PLANE
                                   ) -> "np.ndarray":
        """Vectorized end-to-end latencies of uncontended packets.

        For each (src, dst) pair, the cycle count an isolated packet of
        ``size_flits`` flits takes on an otherwise idle mesh: one
        router traversal for local ejection, else the wormhole formula
        ``hops * router_latency + size_flits`` (XY hop count =
        Manhattan distance). This is the closed form of
        :meth:`_transmit` with every ``acquire`` immediate — validated
        against the event-driven path in
        ``tests/noc/test_vectorized.py`` — and exists for wide-mesh
        design-space sweeps where simulating millions of uncontended
        probe packets one event at a time would dominate the sweep.
        Contended traffic must still go through :meth:`send`; queueing
        has no closed form.
        """
        if size_flits < 1:
            raise ValueError(f"size_flits must be >= 1, got {size_flits}")
        if plane not in self.planes:
            raise ValueError(
                f"unknown plane {plane!r}; options: {sorted(self.planes)}")
        src = np.asarray(srcs, dtype=np.int64)
        dst = np.asarray(dsts, dtype=np.int64)
        if src.ndim != 2 or src.shape[1] != 2 or src.shape != dst.shape:
            raise ValueError("srcs/dsts must be matching (n, 2) coordinate "
                             f"arrays, got {src.shape} and {dst.shape}")
        for arr, label in ((src, "src"), (dst, "dst")):
            if ((arr[:, 0] < 0).any() or (arr[:, 0] >= self.cols).any()
                    or (arr[:, 1] < 0).any()
                    or (arr[:, 1] >= self.rows).any()):
                raise ValueError(f"{label} coordinate out of the "
                                 f"{self.cols}x{self.rows} mesh")
        hops = (np.abs(src[:, 0] - dst[:, 0])
                + np.abs(src[:, 1] - dst[:, 1]))
        latency = hops * self.router_latency + size_flits
        # Local ejection: no links, one router traversal, no body drain.
        return np.where(hops == 0, self.router_latency, latency)

    # -- statistics ----------------------------------------------------------

    @property
    def average_latency(self) -> float:
        if self.packets_delivered == 0:
            return 0.0
        return self.total_latency / self.packets_delivered

    def busiest_links(self, top: int = 5) -> List[Link]:
        ranked = sorted(self.links.values(),
                        key=lambda l: l.flits_carried, reverse=True)
        return ranked[:top]

    def plane_flits(self) -> Dict[str, int]:
        """Flit-hops per plane (shows DMA planes carrying p2p traffic)."""
        out = {name: 0 for name in self.planes}
        for link in self.links.values():
            out[link.plane] += link.flits_carried
        return out
