"""Multi-plane 2D-mesh packet-switched NoC (the ESP interconnect)."""

from .packet import Coord, MessageKind, Packet
from .routing import (
    build_routing_table,
    hop_count,
    route_hops,
    routes_are_minimal_and_deadlock_free,
    xy_route,
)
from .link import Link
from .mesh import (
    COH_FORWARD_PLANE,
    COH_REQUEST_PLANE,
    COH_RESPONSE_PLANE,
    DEFAULT_PLANES,
    DMA_REQUEST_PLANE,
    DMA_RESPONSE_PLANE,
    IO_PLANE,
    Mesh2D,
    NocPlane,
)
from .stats import NocReport, collect_report
from .analysis import (
    LinkUtilization,
    average_distance,
    bisection_bandwidth_flits,
    bisection_links,
    link_utilizations,
    mesh_diameter,
    saturation_injection_rate,
    utilization_heatmap,
    zero_load_latency,
)

__all__ = [
    "COH_FORWARD_PLANE",
    "COH_REQUEST_PLANE",
    "COH_RESPONSE_PLANE",
    "Coord",
    "DEFAULT_PLANES",
    "DMA_REQUEST_PLANE",
    "DMA_RESPONSE_PLANE",
    "IO_PLANE",
    "Link",
    "LinkUtilization",
    "Mesh2D",
    "MessageKind",
    "NocPlane",
    "NocReport",
    "Packet",
    "average_distance",
    "bisection_bandwidth_flits",
    "bisection_links",
    "build_routing_table",
    "collect_report",
    "hop_count",
    "link_utilizations",
    "mesh_diameter",
    "route_hops",
    "routes_are_minimal_and_deadlock_free",
    "saturation_injection_rate",
    "utilization_heatmap",
    "xy_route",
    "zero_load_latency",
]
