"""NoC packets and message kinds.

ESP's NoC moves multi-flit packets between tiles; accelerators use two
dedicated DMA planes (requests and responses on decoupled planes to
prevent deadlock, paper Sec. II), and the p2p service reuses exactly
those planes (Sec. IV).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional, Tuple

Coord = Tuple[int, int]

_packet_ids = itertools.count()


class MessageKind(Enum):
    """Message classes carried by the NoC."""

    DMA_REQ = "dma_req"        # DMA load/store request (to memory tile)
    DMA_RSP = "dma_rsp"        # DMA load response (data from memory)
    P2P_REQ = "p2p_req"        # p2p load request (receiver -> sender tile)
    P2P_RSP = "p2p_rsp"        # p2p data (sender tile -> receiver)
    REG_ACCESS = "reg_access"  # memory-mapped register read/write
    IRQ = "irq"                # interrupt toward the processor tile
    COHERENCE = "coherence"    # processor cache traffic (background)
    COH_REQ = "coh_req"        # fully-coherent request (tile -> directory)
    COH_INV = "coh_inv"        # invalidation/recall (directory -> tile)
    COH_ACK = "coh_ack"        # invalidation ack (+ dirty data) back
    COH_RSP = "coh_rsp"        # directory grant/data to the requester
    COH_WB = "coh_wb"          # dirty-eviction writeback (fire-and-forget)


@dataclass
class Packet:
    """One NoC packet: header flit + payload flits.

    ``payload`` is opaque to the network (the functional data rides
    along with the timing model). ``payload_flits`` determines the
    serialization time on every link of the route.
    """

    src: Coord
    dst: Coord
    plane: str
    kind: MessageKind
    payload_flits: int
    payload: Any = None
    tag: Optional[str] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    injected_at: Optional[int] = None
    delivered_at: Optional[int] = None
    #: Optional callback the mesh fires if the packet is lost (dropped
    #: or discarded at ejection with a bad CRC) — lets posted-store
    #: accounting reconcile stores that will never arrive.
    on_lost: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.payload_flits < 0:
            raise ValueError(
                f"payload_flits must be >= 0, got {self.payload_flits}")

    @property
    def size_flits(self) -> int:
        """Total flits on the wire (1 header flit + payload)."""
        return 1 + self.payload_flits

    @property
    def latency(self) -> Optional[int]:
        if self.injected_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.injected_at
