"""Dimension-ordered (XY) routing on a 2D mesh.

ESP routes packets with deterministic XY routing; together with the
decoupled request/response planes this guarantees deadlock freedom.
The SoC generation flow also emits per-tile routing tables (Sec. IV:
"generate the appropriate hardware wrappers, including routing
tables"), reproduced here as explicit next-hop tables.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

Coord = Tuple[int, int]
Hop = Tuple[Coord, Coord]


def validate_coord(coord: Coord, cols: int, rows: int) -> None:
    x, y = coord
    if not (0 <= x < cols and 0 <= y < rows):
        raise ValueError(
            f"coordinate {coord} outside {cols}x{rows} mesh")


def xy_route(src: Coord, dst: Coord) -> List[Coord]:
    """Tile sequence from ``src`` to ``dst``: X first, then Y."""
    path = [src]
    x, y = src
    dst_x, dst_y = dst
    step_x = 1 if dst_x > x else -1
    while x != dst_x:
        x += step_x
        path.append((x, y))
    step_y = 1 if dst_y > y else -1
    while y != dst_y:
        y += step_y
        path.append((x, y))
    return path


def route_hops(src: Coord, dst: Coord) -> List[Hop]:
    """The (from, to) link hops of the XY route."""
    path = xy_route(src, dst)
    return list(zip(path[:-1], path[1:]))


def hop_count(src: Coord, dst: Coord) -> int:
    """Manhattan distance (number of links traversed)."""
    return abs(src[0] - dst[0]) + abs(src[1] - dst[1])


def build_routing_table(tile: Coord, cols: int,
                        rows: int) -> Dict[Coord, Coord]:
    """Next-hop table for one tile: destination -> neighbour to forward to.

    This is the artifact the ESP SoC generator bakes into each tile's
    wrapper. The local tile maps to itself (ejection).
    """
    validate_coord(tile, cols, rows)
    table: Dict[Coord, Coord] = {}
    for dx in range(cols):
        for dy in range(rows):
            dst = (dx, dy)
            if dst == tile:
                table[dst] = tile
            else:
                table[dst] = xy_route(tile, dst)[1]
    return table


def routes_are_minimal_and_deadlock_free(cols: int, rows: int) -> bool:
    """Check the XY invariants over every src/dst pair (test helper).

    XY routing is minimal, and never takes a Y->X turn, which rules out
    cyclic channel dependencies (the classic turn-model argument).
    """
    for sx in range(cols):
        for sy in range(rows):
            for dx in range(cols):
                for dy in range(rows):
                    src, dst = (sx, sy), (dx, dy)
                    path = xy_route(src, dst)
                    if len(path) - 1 != hop_count(src, dst):
                        return False
                    turned_to_y = False
                    for (ax, ay), (bx, by) in zip(path[:-1], path[1:]):
                        moving_y = ay != by
                        if turned_to_y and not moving_y:
                            return False  # illegal Y->X turn
                        if moving_y:
                            turned_to_y = True
    return True
