"""Dimension-ordered (XY) routing on a 2D mesh.

ESP routes packets with deterministic XY routing; together with the
decoupled request/response planes this guarantees deadlock freedom.
The SoC generation flow also emits per-tile routing tables (Sec. IV:
"generate the appropriate hardware wrappers, including routing
tables"), reproduced here as explicit next-hop tables.

Invariants
----------

Every function in this module relies on — and preserves — these
properties, which the simulation's fast paths in turn depend on:

1. **Determinism.** The route between a ``(src, dst)`` pair is a pure
   function of the pair: no randomness, no adaptivity, no dependence
   on network state. This is what makes the route caches sound
   (``route_hops_cached`` here, the per-mesh link table in
   :class:`~repro.noc.mesh.Mesh2D`): a cached route is the route,
   forever.
2. **Minimality.** The XY path has exactly
   ``|dx| + |dy| == hop_count(src, dst)`` links.
3. **Turn-model deadlock freedom.** A packet moves in X to completion
   before it moves in Y, so no route ever takes a Y→X turn. By the
   classic turn-model argument this rules out cyclic channel
   dependencies within a plane; protocol-level deadlock is ruled out
   separately by the decoupled request/response planes.

Properties 2 and 3 are machine-checked by
:func:`routes_are_minimal_and_deadlock_free` (exercised over all small
meshes in ``tests/noc/test_routing.py``); property 1 is pinned by the
cache-equivalence tests in ``tests/sim/test_fastpath_equivalence.py``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

Coord = Tuple[int, int]
Hop = Tuple[Coord, Coord]


def validate_coord(coord: Coord, cols: int, rows: int) -> None:
    x, y = coord
    if not (0 <= x < cols and 0 <= y < rows):
        raise ValueError(
            f"coordinate {coord} outside {cols}x{rows} mesh")


@lru_cache(maxsize=4096)
def xy_route_cached(src: Coord, dst: Coord) -> Tuple[Coord, ...]:
    """The XY tile sequence as an immutable, memoized tuple.

    Routes are pure functions of ``(src, dst)`` (invariant 1 above), so
    they are computed once per pair. The cache bound comfortably covers
    every pair of the largest mesh the SoC generator emits (an 8x8 mesh
    has 4096 ordered pairs); hot pairs stay resident under LRU.
    """
    path = [src]
    x, y = src
    dst_x, dst_y = dst
    step_x = 1 if dst_x > x else -1
    while x != dst_x:
        x += step_x
        path.append((x, y))
    step_y = 1 if dst_y > y else -1
    while y != dst_y:
        y += step_y
        path.append((x, y))
    return tuple(path)


def xy_route(src: Coord, dst: Coord) -> List[Coord]:
    """Tile sequence from ``src`` to ``dst``: X first, then Y."""
    return list(xy_route_cached(src, dst))


@lru_cache(maxsize=4096)
def route_hops_cached(src: Coord, dst: Coord) -> Tuple[Hop, ...]:
    """The (from, to) link hops of the XY route, memoized (immutable)."""
    path = xy_route_cached(src, dst)
    return tuple(zip(path[:-1], path[1:]))


def route_hops(src: Coord, dst: Coord) -> List[Hop]:
    """The (from, to) link hops of the XY route."""
    return list(route_hops_cached(src, dst))


def hop_count(src: Coord, dst: Coord) -> int:
    """Manhattan distance (number of links traversed)."""
    return abs(src[0] - dst[0]) + abs(src[1] - dst[1])


def build_routing_table(tile: Coord, cols: int,
                        rows: int) -> Dict[Coord, Coord]:
    """Next-hop table for one tile: destination -> neighbour to forward to.

    This is the artifact the ESP SoC generator bakes into each tile's
    wrapper. The local tile maps to itself (ejection).
    """
    validate_coord(tile, cols, rows)
    table: Dict[Coord, Coord] = {}
    for dx in range(cols):
        for dy in range(rows):
            dst = (dx, dy)
            if dst == tile:
                table[dst] = tile
            else:
                table[dst] = xy_route(tile, dst)[1]
    return table


def routes_are_minimal_and_deadlock_free(cols: int, rows: int) -> bool:
    """Check the XY invariants over every src/dst pair (test helper).

    XY routing is minimal, and never takes a Y->X turn, which rules out
    cyclic channel dependencies (the classic turn-model argument).
    """
    for sx in range(cols):
        for sy in range(rows):
            for dx in range(cols):
                for dy in range(rows):
                    src, dst = (sx, sy), (dx, dy)
                    path = xy_route(src, dst)
                    if len(path) - 1 != hop_count(src, dst):
                        return False
                    turned_to_y = False
                    for (ax, ay), (bx, by) in zip(path[:-1], path[1:]):
                        moving_y = ay != by
                        if turned_to_y and not moving_y:
                            return False  # illegal Y->X turn
                        if moving_y:
                            turned_to_y = True
    return True
