"""NoC links: one exclusive channel per (hop, plane) with statistics."""

from __future__ import annotations

from typing import Optional, Tuple

from ..sim import Environment, Resource

Coord = Tuple[int, int]


class Link:
    """A directed link between two adjacent tiles on one NoC plane.

    One packet at a time occupies the link (wormhole channel); the
    occupancy time is the packet's serialization time, so contention
    and head-of-line blocking emerge from the resource queue.
    """

    def __init__(self, env: Environment, src: Coord, dst: Coord,
                 plane: str, flit_bits: int,
                 record_history: bool = False) -> None:
        if abs(src[0] - dst[0]) + abs(src[1] - dst[1]) != 1:
            raise ValueError(f"link endpoints {src}->{dst} are not adjacent")
        self.env = env
        self.src = src
        self.dst = dst
        self.plane = plane
        self.flit_bits = flit_bits
        self.channel = Resource(env, slots=1,
                                name=f"link{src}->{dst}@{plane}",
                                record_history=record_history)
        self.flits_carried = 0
        self.packets_carried = 0

    def record(self, flits: int) -> None:
        self.flits_carried += flits
        self.packets_carried += 1

    def utilization(self, elapsed: Optional[int] = None) -> float:
        return self.channel.utilization(elapsed)

    def __repr__(self) -> str:
        return (f"<Link {self.src}->{self.dst} plane={self.plane} "
                f"flits={self.flits_carried}>")
