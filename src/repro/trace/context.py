"""Distributed trace context: one deterministic ID per request.

A production serving stack correlates everything a request touched —
router decision, queue wait, batch membership, driver calls, DMA
bursts, accelerator phases, NoC packets — under one *trace ID*. This
module is that correlation primitive for the simulated fleet:

- :class:`TraceContext` is the immutable context a request carries
  from submission to completion. It is minted exactly once — by the
  fleet router at dispatch, or by the server at submission when no
  context was supplied — and then *propagated*, never re-minted, so a
  request resharded or degraded mid-flight keeps its identity.
- :class:`TraceIdAllocator` hands out the IDs. Allocation is a plain
  counter per allocator instance (no randomness, no wall clock, no
  process-global state), so two runs of the same workload mint the
  same IDs in the same order — trace IDs are reproducible artifacts,
  exactly like cycle counts and routing decisions.

Why per-instance counters and not a module global: the serving layer's
``request_id`` counter is process-global, which makes IDs depend on
how many requests *any* earlier test or run in the same process
created. Trace IDs are asserted against in postmortems and benchmark
artifacts, so they get the stronger guarantee: an allocator owned by
the minting component (one per server, one per router) always starts
at zero.

Propagation mechanics live in :class:`~repro.trace.tracer.Tracer`
(see ``Tracer.bind``): the serve layer binds the granted tile set to
the dispatched batch's context, and every span recorded against those
tiles — wrapper phases, DMA bursts, driver threads, NoC packets to or
from the tiles' coordinates — is annotated with the ``trace_id``
automatically. The arbiter's exclusive grant is what makes the
binding unambiguous: between grant and release exactly one tenant
owns a tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class TraceContext:
    """The identity one request carries through the whole stack.

    ``trace_id`` is the primary identity. When the batcher coalesces
    several requests into one hardware invocation, the batch-level
    spans carry the first member's ID as ``trace_id`` plus the full
    membership as ``trace_ids`` — hardware work genuinely shared by N
    requests is attributed to all of them, not silently to one.
    """

    trace_id: str

    def __str__(self) -> str:
        return self.trace_id


class TraceIdAllocator:
    """Deterministic counter-based trace-ID mint.

    IDs are ``{prefix}-{n}`` with ``n`` counting from zero per
    allocator. The serve layer mints with prefix ``"t"``; the fleet
    router mints with prefix ``"f"`` — a fleet request is identified
    by its *router* ID end to end (instances never re-mint a supplied
    context), so the two prefixes cannot collide within one run.
    """

    __slots__ = ("prefix", "_next")

    def __init__(self, prefix: str = "t") -> None:
        if not prefix or "-" in prefix:
            raise ValueError(f"prefix must be non-empty and free of "
                             f"'-', got {prefix!r}")
        self.prefix = prefix
        self._next = 0

    @property
    def allocated(self) -> int:
        """How many IDs this allocator has handed out."""
        return self._next

    def next_id(self) -> str:
        """The next ID string (advances the counter)."""
        n = self._next
        self._next = n + 1
        return f"{self.prefix}-{n}"

    def mint(self) -> TraceContext:
        """A fresh :class:`TraceContext`."""
        return TraceContext(self.next_id())

    def __repr__(self) -> str:
        return (f"<TraceIdAllocator {self.prefix!r} "
                f"next={self._next}>")


def batch_trace_ids(requests) -> Tuple[str, ...]:
    """The trace IDs of a batch's member requests, in batch order.

    Skips members with no context (requests submitted before tracing
    was introduced, or hand-built in tests).
    """
    return tuple(r.trace_ctx.trace_id for r in requests
                 if getattr(r, "trace_ctx", None) is not None)


def primary_trace_id(requests) -> Optional[str]:
    """The batch's primary (first member's) trace ID, if any."""
    ids = batch_trace_ids(requests)
    return ids[0] if ids else None
