"""trace-query: one request's waterfall out of an exported trace.

Distributed tracing is only useful if the last step is cheap: given a
``trace_id``, show everything that happened to that request, in order,
with cycles attributed to the stages an operator reasons about
(routing, queueing, driver software, DMA, compute, NoC). This module
is that last step, operating on an *exported* Chrome trace object —
single-SoC (:func:`~repro.trace.to_chrome_trace`) or fleet-merged
(:func:`~repro.trace.merge_chrome_traces`) — so it works equally on a
live tracer's export, a trace.json from disk, or the span window of a
postmortem converted to a trace.

Entry points:

- :func:`trace_ids_in` — every trace ID present in a trace (what the
  CLI lists when invoked without an ID);
- :func:`query_trace` — the :class:`RequestTimeline` of one ID: the
  event waterfall plus a cycle attribution;
- ``python -m repro trace-query <trace_id>`` — the CLI wrapper.

Timestamps in a Chrome trace are microseconds; ``otherData.clock_mhz``
(written by our exporters) converts them back to cycles exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .critical_path import group_of

#: Attribution groups reported per request (order = report order).
QUERY_GROUPS = ("queue", "software", "dma", "compute", "noc", "sync")


@dataclass
class TimelineEvent:
    """One event of a request's waterfall, back in cycle units."""

    start: int
    end: Optional[int]       # None for instants
    track: str               # "pid/tid" labels from the trace
    name: str
    cat: str
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return 0 if self.end is None else self.end - self.start


@dataclass
class RequestTimeline:
    """Everything one ``trace_id`` touched, plus a cycle attribution.

    ``busy_cycles`` sums span durations per attribution group —
    engine-busy cycles, not wall time (two DMA engines moving data for
    the same batch in parallel both count). ``queue_cycles`` and
    ``latency_cycles`` are wall-clock: admission→dispatch and
    admission→completion of the serve-layer request span.
    """

    trace_id: str
    events: List[TimelineEvent]
    routed_to: Optional[str] = None
    routed_at: Optional[int] = None
    latency_cycles: Optional[int] = None
    queue_cycles: Optional[int] = None
    busy_cycles: Dict[str, int] = field(default_factory=dict)

    @property
    def start(self) -> Optional[int]:
        return min((e.start for e in self.events), default=None)

    @property
    def end(self) -> Optional[int]:
        ends = [e.end for e in self.events if e.end is not None]
        return max(ends, default=None)

    def render(self, limit: int = 60) -> str:
        """A text waterfall: one line per event, earliest first."""
        lines = [f"== trace {self.trace_id}: {len(self.events)} "
                 f"events ==" ]
        if self.routed_to is not None:
            lines.append(f"routed to {self.routed_to} at cycle "
                         f"{self.routed_at}")
        if self.latency_cycles is not None:
            queue = ("?" if self.queue_cycles is None
                     else f"{self.queue_cycles:,}")
            lines.append(f"latency {self.latency_cycles:,} cycles "
                         f"(queue {queue})")
        busy = ", ".join(f"{group}={self.busy_cycles[group]:,}"
                         for group in QUERY_GROUPS
                         if self.busy_cycles.get(group))
        if busy:
            lines.append(f"busy cycles by stage: {busy}")
        lines.append(f"{'cycle':>10}  {'dur':>8}  "
                     f"{'track':<32}{'category':<18}event")
        shown = self.events[:limit]
        for event in shown:
            dur = "-" if event.end is None else f"{event.cycles:,}"
            lines.append(f"{event.start:>10,}  {dur:>8}  "
                         f"{event.track:<32}{event.cat:<18}"
                         f"{event.name}")
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)


def _label_maps(events) -> Tuple[Dict[int, str],
                                 Dict[Tuple[int, int], str]]:
    pids: Dict[int, str] = {}
    tids: Dict[Tuple[int, int], str] = {}
    for event in events:
        if event.get("ph") != "M":
            continue
        if event.get("name") == "process_name":
            pids[event["pid"]] = event["args"]["name"]
        elif event.get("name") == "thread_name":
            tids[(event["pid"], event["tid"])] = event["args"]["name"]
    return pids, tids


def _track_of(event, pids, tids) -> str:
    pid = pids.get(event.get("pid"), str(event.get("pid")))
    tid = tids.get((event.get("pid"), event.get("tid")))
    return f"{pid}/{tid}" if tid is not None else pid


def _matches(args: Dict[str, Any], trace_id: str) -> bool:
    if not args:
        return False
    if args.get("trace_id") == trace_id:
        return True
    return trace_id in (args.get("trace_ids") or ())


def trace_ids_in(trace: Dict[str, Any]) -> List[str]:
    """Every distinct trace ID appearing in a trace, sorted."""
    ids = set()
    for event in trace.get("traceEvents", ()):
        args = event.get("args") or {}
        tid = args.get("trace_id")
        if tid is not None:
            ids.add(tid)
        for extra in args.get("trace_ids") or ():
            ids.add(extra)
    return sorted(ids)


def query_trace(trace: Dict[str, Any],
                trace_id: str) -> RequestTimeline:
    """The :class:`RequestTimeline` of one ID in an exported trace."""
    events = trace.get("traceEvents", ())
    clock_mhz = float(
        (trace.get("otherData") or {}).get("clock_mhz", 1.0))
    pids, tids = _label_maps(events)

    def cycles_of(ts: float) -> int:
        return round(ts * clock_mhz)

    timeline: List[TimelineEvent] = []
    open_async: Dict[Tuple[Any, Any], Dict[str, Any]] = {}
    for event in events:
        ph = event.get("ph")
        args = event.get("args") or {}
        if ph == "X" and _matches(args, trace_id):
            start = cycles_of(event["ts"])
            timeline.append(TimelineEvent(
                start=start,
                end=start + round(event.get("dur", 0) * clock_mhz),
                track=_track_of(event, pids, tids),
                name=str(event.get("name")),
                cat=event.get("cat", ""), args=args))
        elif ph == "b" and _matches(args, trace_id):
            open_async[(event.get("name"), event.get("id"))] = event
        elif ph == "e":
            begun = open_async.pop(
                (event.get("name"), event.get("id")), None)
            if begun is not None:
                timeline.append(TimelineEvent(
                    start=cycles_of(begun["ts"]),
                    end=cycles_of(event["ts"]),
                    track=_track_of(begun, pids, tids),
                    name=str(begun.get("name")),
                    cat=begun.get("cat", ""),
                    args=begun.get("args") or {}))
        elif ph == "i" and _matches(args, trace_id):
            timeline.append(TimelineEvent(
                start=cycles_of(event["ts"]), end=None,
                track=_track_of(event, pids, tids),
                name=str(event.get("name")),
                cat=event.get("cat", ""), args=args))
    timeline.sort(key=lambda e: (e.start,
                                 e.end if e.end is not None
                                 else e.start))

    result = RequestTimeline(trace_id=trace_id, events=timeline)
    request_span = None
    dispatch_span = None
    for event in timeline:
        if event.cat == "fleet.route" and result.routed_to is None:
            result.routed_to = event.args.get("instance")
            result.routed_at = event.start
        elif event.cat == "serve.request" and request_span is None:
            request_span = event
        elif event.cat == "serve.dispatch" and dispatch_span is None:
            dispatch_span = event
        if event.end is not None:
            group = group_of(event.cat)
            if group in QUERY_GROUPS:
                result.busy_cycles[group] = \
                    result.busy_cycles.get(group, 0) + event.cycles
    if request_span is not None and request_span.end is not None:
        result.latency_cycles = request_span.cycles
        if dispatch_span is not None:
            result.queue_cycles = (dispatch_span.start
                                   - request_span.start)
    return result


def load_trace(path) -> Dict[str, Any]:
    """Read a Chrome trace JSON file (the CLI's --input)."""
    with open(path) as handle:
        return json.load(handle)
