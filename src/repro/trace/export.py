"""Trace exporters: Chrome trace-event JSON and a text flame summary.

The Chrome trace-event format (the JSON consumed by Perfetto and
``chrome://tracing``) maps naturally onto the tracer's records:

- ``pid`` = tile / subsystem, ``tid`` = engine inside it — so Perfetto
  renders one process group per tile with one row per engine, which is
  exactly how a hardware engineer reads the SoC;
- closed spans export as complete events (``ph: "X"``); categories
  whose spans legitimately overlap on one track (NoC packets, kernel
  processes, serve requests) export as async begin/end pairs
  (``ph: "b"``/``"e"``) so the viewer nests them correctly;
- still-open spans are clamped to the export cycle and flagged with an
  ``"open": true`` arg, so a mid-run or postmortem dump is always a
  valid trace instead of silently losing in-flight work;
- instants and counters export as ``ph: "i"`` / ``ph: "C"``.

Fleet merge: :func:`merge_chrome_traces` folds the namespaced tracers
of every :class:`~repro.fleet.FleetInstance` into one trace — each
instance's tracks are prefixed ``"{namespace}/"`` (so ``i0/serve``,
``i1/serve`` render as separate process groups) and the router's
:class:`~repro.fleet.RouterDecision` log becomes instants on a
``router`` track carrying the same ``trace_id`` as the instance-side
spans, which is what lets one ID reconstruct a request's waterfall
across the routing boundary. The merge assumes the instances share a
timebase (the lockstep :class:`~repro.fleet.Fleet` starts every
instance at cycle 0 and advances them together, so they do).

Timestamps: the trace-event ``ts`` unit is microseconds; cycles
convert with the SoC clock (``ts = cycle / clock_mhz``).
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .tracer import Tracer

#: Categories whose spans may overlap on one (pid, tid) track and are
#: therefore exported as async events instead of complete events.
ASYNC_CATEGORIES = ("noc.packet", "sim.process", "serve.request",
                    "runtime.run")


def _is_async(cat: str) -> bool:
    return any(cat == a or cat.startswith(a + ".")
               for a in ASYNC_CATEGORIES)


class _Emitter:
    """Shared event emitter for single-tracer and merged exports."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[str, str], int] = {}

    def pid_of(self, label: str) -> int:
        if label not in self._pids:
            self._pids[label] = len(self._pids) + 1
            self.events.append({"ph": "M", "name": "process_name",
                                "pid": self._pids[label], "tid": 0,
                                "args": {"name": label}})
        return self._pids[label]

    def tid_of(self, pid_label: str, tid_label: str) -> int:
        key = (pid_label, tid_label)
        if key not in self._tids:
            self._tids[key] = len(self._tids) + 1
            self.events.append({"ph": "M", "name": "thread_name",
                                "pid": self.pid_of(pid_label),
                                "tid": self._tids[key],
                                "args": {"name": tid_label}})
        return self._tids[key]

    def emit_tracer(self, tracer: Tracer, scale: float,
                    prefix: str = "",
                    include_counters: bool = True) -> None:
        """All of one tracer's records, tracks prefixed by ``prefix``.

        Async event ids take the same prefix (each tracer numbers its
        spans independently, so bare sids would collide in a merge).
        """
        now = tracer.env.now
        closed = sorted(tracer.spans, key=lambda s: (s.start, s.sid))
        still_open = sorted(tracer.open_spans,
                            key=lambda s: (s.start, s.sid))
        for span, is_open in ([(s, False) for s in closed]
                              + [(s, True) for s in still_open]):
            pid_label = prefix + span.pid
            pid = self.pid_of(pid_label)
            tid = self.tid_of(pid_label, span.tid)
            args = dict(span.args)
            end = span.end
            if is_open:
                args["open"] = True
                end = max(now, span.start)
            base = {"name": span.name, "cat": span.cat, "pid": pid,
                    "tid": tid, "args": args}
            if _is_async(span.cat):
                sid = f"{prefix}{span.sid}" if prefix else span.sid
                self.events.append({**base, "ph": "b", "id": sid,
                                    "ts": span.start * scale})
                self.events.append({**base, "ph": "e", "id": sid,
                                    "ts": end * scale})
            else:
                self.events.append({**base, "ph": "X",
                                    "ts": span.start * scale,
                                    "dur": (end - span.start) * scale})
        for instant in tracer.instants:
            pid_label = prefix + instant.pid
            self.events.append({"ph": "i", "s": "t",
                                "name": instant.name,
                                "cat": instant.cat,
                                "pid": self.pid_of(pid_label),
                                "tid": self.tid_of(pid_label,
                                                   instant.tid),
                                "ts": instant.ts * scale,
                                "args": dict(instant.args)})
        if include_counters:
            for sample in tracer.counters:
                self.events.append({"ph": "C", "name": sample.name,
                                    "pid": self.pid_of(prefix
                                                       + sample.pid),
                                    "tid": 0,
                                    "ts": sample.ts * scale,
                                    "args": dict(sample.values)})

    def emit_decisions(self, decisions: Iterable[Any],
                       scale: float) -> None:
        """Router decisions as instants on a ``router`` track."""
        for decision in decisions:
            args: Dict[str, Any] = {
                "instance": decision.instance,
                "policy": decision.policy,
                "shard": list(decision.shard),
                "score": decision.score,
            }
            trace_id = getattr(decision, "trace_id", None)
            if trace_id is not None:
                args["trace_id"] = trace_id
            self.events.append({"ph": "i", "s": "t",
                                "name": decision.tenant,
                                "cat": "fleet.route",
                                "pid": self.pid_of("router"),
                                "tid": self.tid_of("router", "route"),
                                "ts": decision.at * scale,
                                "args": args})


def to_chrome_trace(tracer: Tracer, clock_mhz: float = 1.0,
                    include_counters: bool = True) -> Dict[str, Any]:
    """Render the tracer's records as a Chrome trace-event object."""
    if clock_mhz <= 0:
        raise ValueError(f"clock_mhz must be > 0, got {clock_mhz}")
    scale = 1.0 / clock_mhz   # cycles -> microseconds
    emitter = _Emitter()
    emitter.emit_tracer(tracer, scale,
                        include_counters=include_counters)
    return {
        "traceEvents": emitter.events,
        "displayTimeUnit": "ns",
        "otherData": {
            "clock_mhz": clock_mhz,
            "spans": len(tracer.spans),
            "open_spans": len(tracer.open_spans),
            "dropped": tracer.dropped,
        },
    }


def merge_chrome_traces(tracers: Mapping[str, Tracer],
                        clock_mhz: float = 1.0,
                        decisions: Iterable[Any] = (),
                        include_counters: bool = True
                        ) -> Dict[str, Any]:
    """One fleet-wide Chrome trace from many namespaced tracers.

    ``tracers`` maps a namespace to each instance's tracer; the
    namespace becomes the track prefix (``"{ns}/{pid}"``). A tracer
    that carries its own ``namespace`` must agree with its key —
    mismatches raise, mirroring ``merge_snapshots`` for metrics.
    ``decisions`` (the fleet router's ``RouterDecision`` log) export
    as instants on a shared ``router`` track, each carrying the
    ``trace_id`` it minted for the routed request.
    """
    if clock_mhz <= 0:
        raise ValueError(f"clock_mhz must be > 0, got {clock_mhz}")
    if not tracers:
        raise ValueError("merge_chrome_traces needs at least one tracer")
    scale = 1.0 / clock_mhz
    emitter = _Emitter()
    total_spans = total_open = total_dropped = 0
    for name, tracer in tracers.items():
        if not name:
            raise ValueError("merged tracers need non-empty namespaces")
        if tracer.namespace is not None and tracer.namespace != name:
            raise ValueError(
                f"tracer namespace {tracer.namespace!r} does not match "
                f"merge key {name!r}")
        emitter.emit_tracer(tracer, scale, prefix=f"{name}/",
                            include_counters=include_counters)
        total_spans += len(tracer.spans)
        total_open += len(tracer.open_spans)
        total_dropped += tracer.dropped
    decisions = list(decisions)
    emitter.emit_decisions(decisions, scale)
    return {
        "traceEvents": emitter.events,
        "displayTimeUnit": "ns",
        "otherData": {
            "clock_mhz": clock_mhz,
            "instances": list(tracers),
            "spans": total_spans,
            "open_spans": total_open,
            "dropped": total_dropped,
            "router_decisions": len(decisions),
        },
    }


def write_chrome_trace(tracer: Tracer, path: str,
                       clock_mhz: float = 1.0) -> Dict[str, Any]:
    """Serialize :func:`to_chrome_trace` to ``path``; returns the obj."""
    trace = to_chrome_trace(tracer, clock_mhz=clock_mhz)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return trace


def validate_chrome_trace(trace: Dict[str, Any],
                          tolerance: float = 1e-6) -> List[str]:
    """Schema/consistency check of a trace-event object.

    Returns a list of problems (empty = valid): required keys present,
    timestamps non-negative, durations non-negative, async begin/end
    balanced, and complete events on each (pid, tid) track either
    disjoint or properly nested — the invariant Perfetto's renderer
    assumes. ``tolerance`` (µs; default one picosecond) absorbs the
    float rounding of the cycle→µs conversion at shared boundaries.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    per_track: Dict[Tuple[int, int], List[Tuple[float, float]]] = \
        defaultdict(list)
    async_open: Dict[Tuple[str, Any], int] = defaultdict(int)
    for index, event in enumerate(events):
        ph = event.get("ph")
        if ph is None or "name" not in event or "pid" not in event:
            problems.append(f"event {index}: missing ph/name/pid")
            continue
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {index}: bad ts {ts!r}")
            continue
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {index}: bad dur {dur!r}")
                continue
            per_track[(event["pid"], event.get("tid", 0))].append(
                (float(ts), float(ts) + float(dur)))
        elif ph == "b":
            async_open[(event["name"], event.get("id"))] += 1
        elif ph == "e":
            key = (event["name"], event.get("id"))
            if async_open.get(key, 0) < 1:
                problems.append(f"event {index}: async end without begin")
            else:
                async_open[key] -= 1
    for key, count in async_open.items():
        if count:
            problems.append(f"async event {key[0]!r} left {count} open")
    for track, intervals in per_track.items():
        stack: List[float] = []
        # Containers sort before their contents at equal starts.
        for start, end in sorted(intervals, key=lambda iv: (iv[0], -iv[1])):
            while stack and stack[-1] <= start + tolerance:
                stack.pop()
            if stack and end > stack[-1] + tolerance:
                problems.append(
                    f"track pid={track[0]} tid={track[1]}: span "
                    f"[{start}, {end}) straddles an enclosing span "
                    f"ending at {stack[-1]}")
                continue
            stack.append(end)
    return problems


def flame_summary(tracer: Tracer, top: int = 20,
                  clock_mhz: Optional[float] = None) -> str:
    """Aggregate busy cycles per (track, category), hottest first.

    The text cousin of a flame graph: one line per (pid, tid, cat)
    with total cycles, span count and mean span length — the quickest
    answer to "where did the cycles go?" without leaving the terminal.
    """
    totals: Dict[Tuple[str, str, str], List[int]] = defaultdict(
        lambda: [0, 0])
    for span in tracer.spans:
        entry = totals[(span.pid, span.tid, span.cat)]
        entry[0] += span.end - span.start
        entry[1] += 1
    ranked = sorted(totals.items(), key=lambda kv: -kv[1][0])[:top]
    unit = "cycles" if clock_mhz is None else "us"
    scale = 1.0 if clock_mhz is None else 1.0 / clock_mhz
    lines = [f"== flame summary: top {len(ranked)} tracks by busy "
             f"{unit} ==",
             f"{'track':<44}{'category':<18}{'busy':>12}{'spans':>8}"
             f"{'mean':>10}"]
    for (pid, tid, cat), (busy, count) in ranked:
        mean = busy / count if count else 0.0
        lines.append(f"{pid + ' / ' + tid:<44}{cat:<18}"
                     f"{busy * scale:>12,.1f}{count:>8}"
                     f"{mean * scale:>10.1f}")
    return "\n".join(lines)
