"""The flight recorder: alert-triggered postmortem capture.

Aircraft flight recorders keep a bounded window of everything, all the
time, precisely because nobody knows in advance *when* the interesting
five minutes will happen. The serving fleet has the same problem: an
SLO alert fires tens of thousands of cycles after the contention that
caused it, and by the time an operator attaches a tracer the evidence
is gone. The :class:`FlightRecorder` closes that gap:

- the per-instance :class:`~repro.trace.Tracer` runs always-on in
  bounded ring-buffer mode (``capacity=``), so the recent past is
  always available at O(capacity) memory;
- the recorder subscribes to a
  :class:`~repro.metrics.HealthMonitor`; the moment any rule
  transitions to *firing* it dumps a postmortem artifact to disk —
  the recent span window from every tracer (still-open spans clamped,
  exactly like a mid-run Chrome export), a full metrics snapshot, the
  tail of the control plane's :class:`~repro.control.ControlAction`
  log, and the firing rule itself.

Dumping happens at alert-transition time inside ``evaluate()`` — a
pure observer; it never schedules simulation events, so an armed
recorder preserves the pinned seed cycle counts (asserted by
``benchmarks/bench_trace.py``).

Postmortem schema (``"repro.postmortem/v1"``)::

    {
      "schema": "repro.postmortem/v1",
      "cycle": <dump cycle>,
      "window": [<start>, <end>],          # last window_cycles
      "alert": {rule, severity, state, fired_at, detail},
      "spans": {<source>: [{pid, tid, name, cat, start, end, open,
                            args}, ...]},
      "trace_ids": [...],                  # distinct ids in window
      "metrics": <registry.snapshot()>,    # exemplars included
      "actions": [{cycle, kind, target, rule, outcome, detail}, ...],
      "dropped": {<source>: <ring evictions>}
    }
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from .tracer import Span, Tracer

POSTMORTEM_SCHEMA = "repro.postmortem/v1"

#: Default look-back window of a dump, in cycles.
DEFAULT_WINDOW_CYCLES = 50_000

#: Control-plane actions included per dump (most recent last).
ACTION_TAIL = 32

_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")


def _slug(text: str) -> str:
    return _SLUG_RE.sub("-", text).strip("-") or "alert"


def _span_record(span: Span, now: int) -> Dict[str, Any]:
    record = {
        "pid": span.pid, "tid": span.tid, "name": str(span.name),
        "cat": span.cat, "start": span.start,
        "end": span.end if span.end is not None else max(now,
                                                         span.start),
        "open": span.end is None,
    }
    if span.args:
        record["args"] = {k: _jsonable(v) for k, v in span.args.items()}
    return record


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


class FlightRecorder:
    """Dumps postmortem artifacts when health alerts start firing.

    ``tracers`` is either one :class:`Tracer` or a mapping of source
    name -> tracer (a fleet's namespaced tracers); ``controller`` is
    an optional :class:`~repro.control.ControlPlane` whose recent
    action log is included as remediation context. Arm it with
    :meth:`arm`; every *firing* transition then produces one
    ``postmortem-<rule>-c<cycle>.json`` under ``out_dir``, up to
    ``max_dumps`` per recorder (an alert storm must not fill the
    disk).
    """

    def __init__(self, out_dir: Union[str, Path],
                 tracers: Union[Tracer, Mapping[str, Tracer]],
                 controller: Optional[object] = None,
                 window_cycles: int = DEFAULT_WINDOW_CYCLES,
                 max_dumps: int = 16,
                 clock_mhz: float = 1.0) -> None:
        if window_cycles < 1:
            raise ValueError(f"window_cycles must be >= 1, "
                             f"got {window_cycles}")
        if max_dumps < 1:
            raise ValueError(f"max_dumps must be >= 1, got {max_dumps}")
        self.out_dir = Path(out_dir)
        if isinstance(tracers, Tracer):
            tracers = {tracers.namespace or "soc": tracers}
        if not tracers:
            raise ValueError("FlightRecorder needs at least one tracer")
        self.tracers: Dict[str, Tracer] = dict(tracers)
        self.controller = controller
        self.window_cycles = window_cycles
        self.max_dumps = max_dumps
        self.clock_mhz = clock_mhz
        #: Paths of the artifacts written so far, in dump order.
        self.dumps: List[Path] = []
        self.suppressed = 0

    # -- wiring -------------------------------------------------------------

    def arm(self, monitor) -> "FlightRecorder":
        """Subscribe to a :class:`~repro.metrics.HealthMonitor`.

        Returns self, so ``FlightRecorder(...).arm(monitor)`` reads
        naturally at a call site.
        """
        monitor.subscribe(self._on_evaluate)
        return self

    def _on_evaluate(self, monitor, transitions) -> None:
        for alert in transitions:
            if alert.is_firing:
                self.record(monitor, alert)

    # -- capture ------------------------------------------------------------

    def record(self, monitor, alert) -> Optional[Path]:
        """Capture one postmortem for ``alert`` (None if at max_dumps)."""
        if len(self.dumps) >= self.max_dumps:
            self.suppressed += 1
            return None
        now = monitor.registry.env.now
        artifact = self.capture(now, alert=alert,
                                registry=monitor.registry)
        path = (self.out_dir
                / f"postmortem-{_slug(alert.rule)}-c{now}.json")
        self.out_dir.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(artifact, indent=2) + "\n")
        self.dumps.append(path)
        return path

    def capture(self, now: int, alert=None,
                registry=None) -> Dict[str, Any]:
        """The postmortem artifact as a dict (no disk I/O).

        Usable on its own for an on-demand "what just happened?"
        snapshot; :meth:`record` wraps it with the firing alert and
        file output.
        """
        t0 = max(0, now - self.window_cycles)
        spans: Dict[str, List[Dict[str, Any]]] = {}
        dropped: Dict[str, int] = {}
        trace_ids = set()
        for source, tracer in self.tracers.items():
            window = tracer.spans_between(t0, now + 1)
            window = window + [s for s in tracer.open_spans
                               if s.start < now + 1]
            records = [_span_record(s, now)
                       for s in sorted(window,
                                       key=lambda s: (s.start, s.sid))]
            spans[source] = records
            dropped[source] = tracer.dropped
            for record in records:
                args = record.get("args") or {}
                tid = args.get("trace_id")
                if tid is not None:
                    trace_ids.add(tid)
                for extra in args.get("trace_ids") or ():
                    trace_ids.add(extra)
        artifact: Dict[str, Any] = {
            "schema": POSTMORTEM_SCHEMA,
            "cycle": now,
            "clock_mhz": self.clock_mhz,
            "window": [t0, now],
            "alert": None if alert is None else {
                "rule": alert.rule,
                "severity": alert.severity,
                "state": alert.state,
                "fired_at": alert.fired_at,
                "detail": alert.detail,
            },
            "spans": spans,
            "trace_ids": sorted(trace_ids),
            "metrics": (None if registry is None
                        else registry.snapshot()),
            "actions": self._action_tail(),
            "dropped": dropped,
        }
        return artifact

    def _action_tail(self) -> List[Dict[str, Any]]:
        if self.controller is None:
            return []
        actions = getattr(self.controller, "actions", [])
        return [{
            "cycle": action.cycle,
            "kind": action.kind,
            "target": action.target,
            "rule": action.rule,
            "outcome": action.outcome,
            "detail": action.detail,
        } for action in actions[-ACTION_TAIL:]]

    def __repr__(self) -> str:
        return (f"<FlightRecorder {len(self.tracers)} tracer(s), "
                f"window={self.window_cycles}, "
                f"{len(self.dumps)}/{self.max_dumps} dumps>")
