"""Unified cycle-level tracing & profiling for the ESP4ML reproduction.

One :class:`Tracer` attached to the simulation environment collects
spans, instants and counters from every layer — sim kernel, NoC, DMA,
accelerator wrappers, runtime executor, serving layer — and the
exporters turn the single store into a Chrome/Perfetto trace, a flame
summary, VCD/Gantt views and a critical-path attribution of any
latency window.

The distributed-tracing layer rides on the same store: a
:class:`TraceContext` minted per request (serve layer or fleet
router) is propagated through every span as args, fleet tracers merge
into one namespaced Chrome trace (:func:`merge_chrome_traces`), one
ID's waterfall is reconstructed with :func:`query_trace`, and the
:class:`FlightRecorder` keeps a bounded always-on window and dumps
postmortem artifacts when health alerts fire.
"""

from .tracer import (
    CounterSample,
    Instant,
    Span,
    Tracer,
    attach_tracer,
    detach_tracer,
)
from .context import (
    TraceContext,
    TraceIdAllocator,
    batch_trace_ids,
    primary_trace_id,
)
from .store import DeviceSpan, device_spans, device_spans_from_tracer
from .export import (
    ASYNC_CATEGORIES,
    flame_summary,
    merge_chrome_traces,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .critical_path import (
    AttributionReport,
    AttributionSegment,
    GROUP_PRECEDENCE,
    analyze_request,
    analyze_run,
    analyze_span,
    attribute_interval,
    group_of,
)
from .flight import (
    DEFAULT_WINDOW_CYCLES,
    FlightRecorder,
    POSTMORTEM_SCHEMA,
)
from .query import (
    QUERY_GROUPS,
    RequestTimeline,
    TimelineEvent,
    load_trace,
    query_trace,
    trace_ids_in,
)

__all__ = [
    "ASYNC_CATEGORIES",
    "AttributionReport",
    "AttributionSegment",
    "CounterSample",
    "DEFAULT_WINDOW_CYCLES",
    "DeviceSpan",
    "FlightRecorder",
    "GROUP_PRECEDENCE",
    "Instant",
    "POSTMORTEM_SCHEMA",
    "QUERY_GROUPS",
    "RequestTimeline",
    "Span",
    "TimelineEvent",
    "TraceContext",
    "TraceIdAllocator",
    "Tracer",
    "analyze_request",
    "analyze_run",
    "analyze_span",
    "attach_tracer",
    "attribute_interval",
    "batch_trace_ids",
    "detach_tracer",
    "device_spans",
    "device_spans_from_tracer",
    "flame_summary",
    "group_of",
    "load_trace",
    "merge_chrome_traces",
    "primary_trace_id",
    "query_trace",
    "to_chrome_trace",
    "trace_ids_in",
    "validate_chrome_trace",
    "write_chrome_trace",
]
