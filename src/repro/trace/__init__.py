"""Unified cycle-level tracing & profiling for the ESP4ML reproduction.

One :class:`Tracer` attached to the simulation environment collects
spans, instants and counters from every layer — sim kernel, NoC, DMA,
accelerator wrappers, runtime executor, serving layer — and the
exporters turn the single store into a Chrome/Perfetto trace, a flame
summary, VCD/Gantt views and a critical-path attribution of any
latency window.
"""

from .tracer import (
    CounterSample,
    Instant,
    Span,
    Tracer,
    attach_tracer,
    detach_tracer,
)
from .store import DeviceSpan, device_spans, device_spans_from_tracer
from .export import (
    ASYNC_CATEGORIES,
    flame_summary,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .critical_path import (
    AttributionReport,
    AttributionSegment,
    GROUP_PRECEDENCE,
    analyze_request,
    analyze_run,
    analyze_span,
    attribute_interval,
    group_of,
)

__all__ = [
    "ASYNC_CATEGORIES",
    "AttributionReport",
    "AttributionSegment",
    "CounterSample",
    "DeviceSpan",
    "GROUP_PRECEDENCE",
    "Instant",
    "Span",
    "Tracer",
    "analyze_request",
    "analyze_run",
    "analyze_span",
    "attach_tracer",
    "attribute_interval",
    "detach_tracer",
    "device_spans",
    "device_spans_from_tracer",
    "flame_summary",
    "group_of",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
