"""The shared device-span store behind every activity renderer.

The VCD exporter, the text Gantt chart and the utilization summaries
all answer the same question — *when was each accelerator busy?* —
so they all consume one span source instead of each re-deriving it
from the invocation records. Two producers feed the same shape:

- :func:`device_spans` reads the per-tile invocation records every
  socket keeps (always available, tracing or not);
- :func:`device_spans_from_tracer` reconstructs the identical spans
  from the tracer's ``acc.invocation`` records (available when a
  :class:`~repro.trace.Tracer` was attached for the run).

A traced run must yield the same spans either way — the unification
test locks that in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .tracer import Tracer


@dataclass(frozen=True)
class DeviceSpan:
    """One busy interval of one device, in cycles."""

    device: str
    start: int
    end: int

    @property
    def cycles(self) -> int:
        return self.end - self.start


def device_spans(soc, since_cycle: int = 0) -> List[DeviceSpan]:
    """Invocation spans of every accelerator of ``soc``, start-ordered.

    ``since_cycle`` drops spans that ended at or before the cut —
    the "what happened since my last snapshot" view.
    """
    spans = [DeviceSpan(name, inv.start_cycle, inv.end_cycle)
             for name, tile in soc.accelerators.items()
             for inv in tile.invocations
             if inv.end_cycle > since_cycle]
    return sorted(spans, key=lambda s: (s.start, s.device))


def device_spans_from_tracer(tracer: Tracer,
                             since_cycle: int = 0) -> List[DeviceSpan]:
    """The same spans, reconstructed from ``acc.invocation`` records."""
    spans = [DeviceSpan(span.args.get("device", span.name),
                        span.start, span.end)
             for span in tracer.all_spans(cat="acc.invocation")
             if span.end > since_cycle]
    return sorted(spans, key=lambda s: (s.start, s.device))
