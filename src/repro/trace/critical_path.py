"""Critical-path attribution: explain one latency with named segments.

The paper's headline numbers (Fig. 7) are *gaps* — base vs pipe vs
p2p — and the explanation of each gap is an attribution question:
of one frame's end-to-end latency, how much was kernel compute, how
much NoC traversal, how much DMA, how much software synchronization,
how much queueing? This module answers it from the tracer's records.

Method: pick the window to explain (a ``runtime.run`` span, one
``serve.request`` span, or an explicit ``[t0, t1)``), cut it at every
span boundary inside it, and attribute each elementary segment to the
most-specific activity running during it. Specificity follows the
hardware: an IRQ wait that overlaps a kernel COMPUTE phase is compute
time (the software is merely observing the hardware make progress),
so the precedence runs

    compute > dma > noc > software > queue > sync > other

and whatever no span covers is reported as ``unattributed`` — the
honesty metric: a well-instrumented run attributes ≥ 95%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .tracer import Span, Tracer

#: Attribution groups in precedence order (first wins a segment).
GROUP_PRECEDENCE = ("compute", "dma", "noc", "software", "queue",
                    "sync", "other")

#: Category prefix -> attribution group. First match (longest prefix
#: listed first) wins; categories with no entry fall into ``other``.
CATEGORY_GROUPS: Tuple[Tuple[str, str], ...] = (
    ("acc.compute", "compute"),
    ("acc.load", "dma"),
    ("acc.store", "dma"),
    ("coh", "dma"),          # coh.load / coh.store / coh.directory
    ("dma", "dma"),
    ("noc", "noc"),
    ("runtime.ioctl", "software"),
    ("runtime.config", "software"),
    ("runtime.spawn", "software"),
    ("runtime.software", "software"),
    ("runtime.sync", "sync"),
    ("runtime.irq_wait", "sync"),
    ("serve.grant_wait", "queue"),
    ("serve.queue", "queue"),
)


def group_of(cat: str) -> str:
    for prefix, group in CATEGORY_GROUPS:
        if cat == prefix or cat.startswith(prefix + "."):
            return group
    return "other"


@dataclass(frozen=True)
class AttributionSegment:
    """One elementary slice of the window and who owns it."""

    start: int
    end: int
    group: str
    cat: str   # the winning span's category ("" when unattributed)

    @property
    def cycles(self) -> int:
        return self.end - self.start


@dataclass
class AttributionReport:
    """Where every cycle of one window went."""

    t0: int
    t1: int
    label: str
    segments: List[AttributionSegment]
    by_group: Dict[str, int] = field(default_factory=dict)
    by_category: Dict[str, int] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return self.t1 - self.t0

    @property
    def unattributed_cycles(self) -> int:
        return self.total_cycles - sum(self.by_group.values())

    @property
    def coverage(self) -> float:
        """Fraction of the window attributed to a named group."""
        if self.total_cycles == 0:
            return 1.0
        return 1.0 - self.unattributed_cycles / self.total_cycles

    def fraction(self, group: str) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.by_group.get(group, 0) / self.total_cycles

    def render(self) -> str:
        lines = [f"== critical path: {self.label} "
                 f"[{self.t0} .. {self.t1}] = "
                 f"{self.total_cycles:,} cycles ==",
                 f"{'group':<12}{'cycles':>12}{'share':>9}"]
        for group in GROUP_PRECEDENCE:
            cycles = self.by_group.get(group, 0)
            if cycles:
                lines.append(f"{group:<12}{cycles:>12,}"
                             f"{cycles / self.total_cycles:>9.1%}")
        if self.unattributed_cycles:
            lines.append(f"{'(none)':<12}{self.unattributed_cycles:>12,}"
                         f"{1 - self.coverage:>9.1%}")
        lines.append(f"coverage: {self.coverage:.1%} attributed")
        top = sorted(self.by_category.items(), key=lambda kv: -kv[1])[:8]
        for cat, cycles in top:
            lines.append(f"  {cat:<24}{cycles:>12,} cycles")
        return "\n".join(lines)


def attribute_interval(tracer: Tracer, t0: int, t1: int,
                       label: str = "interval",
                       exclude_sids: Tuple[int, ...] = ()
                       ) -> AttributionReport:
    """Attribute every cycle of ``[t0, t1)`` to one group.

    ``exclude_sids`` removes the window-defining span itself (and any
    other wrappers) so an all-enclosing ``runtime.run`` span cannot
    claim its own cycles.
    """
    if t1 < t0:
        raise ValueError(f"window ends at {t1} before start {t0}")
    spans = [s for s in tracer.spans_between(t0, t1)
             if s.sid not in exclude_sids]
    cuts = sorted({t0, t1, *(max(t0, s.start) for s in spans),
                   *(min(t1, s.end) for s in spans)})
    add_at: Dict[int, List[Span]] = {}
    remove_at: Dict[int, List[Span]] = {}
    for span in spans:
        add_at.setdefault(max(t0, span.start), []).append(span)
        remove_at.setdefault(min(t1, span.end), []).append(span)
    segments: List[AttributionSegment] = []
    by_group: Dict[str, int] = {}
    by_category: Dict[str, int] = {}
    rank = {group: i for i, group in enumerate(GROUP_PRECEDENCE)}
    active: Dict[int, Span] = {}
    for lo, hi in zip(cuts, cuts[1:]):
        for span in remove_at.get(lo, ()):
            active.pop(span.sid, None)
        for span in add_at.get(lo, ()):
            if span.end > lo:   # zero-length spans never own a segment
                active[span.sid] = span
        winner: Optional[Span] = None
        winner_rank = len(GROUP_PRECEDENCE)
        for span in active.values():
            r = rank[group_of(span.cat)]
            if r < winner_rank:
                winner, winner_rank = span, r
        if winner is None:
            segments.append(AttributionSegment(lo, hi, "unattributed",
                                               ""))
            continue
        group = GROUP_PRECEDENCE[winner_rank]
        segments.append(AttributionSegment(lo, hi, group, winner.cat))
        by_group[group] = by_group.get(group, 0) + (hi - lo)
        by_category[winner.cat] = \
            by_category.get(winner.cat, 0) + (hi - lo)
    return AttributionReport(t0=t0, t1=t1, label=label,
                             segments=segments, by_group=by_group,
                             by_category=by_category)


def analyze_span(tracer: Tracer, span: Span) -> AttributionReport:
    """Attribute the window of one closed span (excluding itself)."""
    if span.end is None:
        raise ValueError(f"span {span.name!r} is still open")
    return attribute_interval(tracer, span.start, span.end,
                              label=f"{span.cat}:{span.name}",
                              exclude_sids=(span.sid,))


def analyze_run(tracer: Tracer, index: int = 0) -> AttributionReport:
    """Attribute the index-th ``runtime.run`` span (one esp_run)."""
    return analyze_span(tracer, tracer.find_span("runtime.run",
                                                 index=index))


def analyze_request(tracer: Tracer, index: int = 0) -> AttributionReport:
    """Attribute the index-th ``serve.request`` span end to end."""
    return analyze_span(tracer, tracer.find_span("serve.request",
                                                 index=index))
