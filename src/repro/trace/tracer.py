"""The cycle-level event tracer: spans, instants and counters.

ESP instruments its SoCs with hardware performance monitors and the
companion papers read them out to explain *where cycles go* (per-
accelerator busy time, NoC-plane traffic, ioctl overhead). This module
is the simulated equivalent turned into one coherent subsystem: a
single :class:`Tracer` attached to the simulation
:class:`~repro.sim.Environment` that every layer of the stack reports
into — kernel process lifetimes, NoC packet and link traversals, DMA
transactions, accelerator LOAD/COMPUTE/STORE phases, runtime executor
phases (ioctl, register programming, IRQ wait) and serve-layer
queue/batch/grant events.

Design rules:

- **Zero timing impact.** Recording never yields, never schedules an
  event and never advances the clock, so a traced run is cycle-for-
  cycle identical to an untraced one; tracing changes what you *see*,
  not what happens.
- **Near-zero overhead when disabled.** Instrumentation sites guard
  with ``env.tracer is None`` — one attribute load and a pointer
  compare, mirroring the fault-injection hooks of the faults
  subsystem.
- **One store, many views.** The Chrome-trace exporter, the flame
  summary, the VCD/Gantt renderers and the critical-path analyzer all
  read the same span lists recorded here.

Tracks: every record carries a ``(pid, tid)`` pair — process and
thread labels in Chrome-trace terms. By convention ``pid`` names the
tile (or subsystem: ``cpu``, ``noc``, ``serve``, ``sim``) and ``tid``
names the engine inside it (``wrapper``, ``dma.load``, a plane name,
a driver thread).

Two fleet-era additions ride on the same store:

- **Flight-recorder mode** (``capacity=``): the record lists become
  bounded rings so an always-on tracer cannot grow without bound on a
  long serving run. Eviction semantics — at least the last
  ``capacity`` records of each kind (spans / instants / counters) are
  always retained, and each list never holds more than ``2*capacity``;
  compaction is a single amortized ``del lst[:k]`` once per
  ``capacity`` appends, so the per-record cost stays O(1) and the
  zero-timing-impact contract holds. Evictions are counted in
  ``dropped_spans`` / ``dropped_instants`` / ``dropped_counters``.
  Open spans are never evicted — they live in ``_open`` until closed.
- **Trace-context bindings** (``bind``/``unbind``): the distributed-
  tracing propagation point. The serve layer binds the tile set it
  was exclusively granted to the dispatched batch's trace IDs; while
  the binding is live, every span/instant recorded against a bound
  key — a device ``pid``, a ``(pid, tid)`` driver track, or a NoC
  packet whose ``src``/``dst`` arg names a bound tile coordinate — is
  annotated with ``trace_id`` (and ``trace_ids`` when the batch
  coalesced several requests). The arbiter's all-or-nothing exclusive
  grant is what makes keying by device unambiguous.
"""

from __future__ import annotations

import itertools
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple


@dataclass
class Span:
    """One named interval on one track (begin/end pair, in cycles)."""

    sid: int
    pid: str
    tid: str
    name: str
    cat: str
    start: int
    end: Optional[int] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None


@dataclass(frozen=True)
class Instant:
    """A point event (an IRQ edge, a queue admit, a grant)."""

    pid: str
    tid: str
    name: str
    cat: str
    ts: int
    args: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CounterSample:
    """One sample of a named counter series (queue depth, occupancy)."""

    pid: str
    name: str
    ts: int
    values: Dict[str, float] = field(default_factory=dict)


class Tracer:
    """The global span/instant/counter store of one simulation.

    Attach with :func:`attach_tracer`; instrumentation sites across the
    stack then report into it. All timestamps are simulation cycles;
    exporters convert to wall time with the SoC clock.

    ``namespace`` labels this tracer's records when several tracers
    from a fleet are merged into one trace (mirrors
    ``MetricsRegistry(namespace=)``). ``capacity`` turns the store
    into a flight recorder — see the module docstring for the exact
    eviction semantics.
    """

    def __init__(self, env, namespace: Optional[str] = None,
                 capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.namespace = namespace
        self.capacity = capacity
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.counters: List[CounterSample] = []
        self.dropped_spans = 0
        self.dropped_instants = 0
        self.dropped_counters = 0
        self._open: Dict[int, Span] = {}
        self._sids = itertools.count()
        # Parallel list of span *end* cycles, for bisect windowing.
        # Spans are appended when they close, so this is monotone
        # unless a complete() back-dates an end — tracked by the flag.
        self._ends: List[int] = []
        self._ends_sorted = True
        # Trace-context bindings: key -> tuple of trace ids. Keys are
        # device pids, (pid, tid) tracks, or tile-coordinate strings
        # matched against NoC packet src/dst args.
        self._bindings: Dict[Any, Tuple[str, ...]] = {}

    # -- trace-context propagation ----------------------------------------

    def bind(self, key: Any, trace_ids: Tuple[str, ...]) -> None:
        """Attribute records on ``key`` to ``trace_ids`` until unbound.

        ``key`` is matched against a record's ``pid``, its
        ``(pid, tid)`` pair, and — for NoC packet spans — its
        ``src``/``dst`` args. Binding an empty ID tuple is a no-op.
        """
        if trace_ids:
            self._bindings[key] = tuple(trace_ids)

    def unbind(self, key: Any) -> None:
        """Remove a binding (missing keys are ignored)."""
        self._bindings.pop(key, None)

    def _annotate(self, pid: str, tid: str,
                  args: Dict[str, Any]) -> None:
        # Hot path: called only when at least one binding is live, and
        # explicit trace_id args (set by the serve layer) win.
        if "trace_id" in args:
            return
        bindings = self._bindings
        ids = bindings.get((pid, tid))
        if ids is None:
            ids = bindings.get(pid)
        if ids is None:
            src = args.get("src")
            if src is not None:
                ids = bindings.get(src)
            if ids is None:
                dst = args.get("dst")
                if dst is not None:
                    ids = bindings.get(dst)
        if ids is not None:
            args["trace_id"] = ids[0]
            if len(ids) > 1:
                args["trace_ids"] = ids

    # -- recording ---------------------------------------------------------

    def begin(self, pid: str, tid: str, name: str, cat: str,
              **args: Any) -> int:
        """Open a span at the current cycle; returns its id."""
        if self._bindings:
            self._annotate(pid, tid, args)
        sid = next(self._sids)
        self._open[sid] = Span(sid=sid, pid=pid, tid=tid, name=name,
                               cat=cat, start=self.env.now, args=args)
        return sid

    def end(self, sid: int, **args: Any) -> Span:
        """Close the span at the current cycle (extra args merge in)."""
        span = self._open.pop(sid, None)
        if span is None:
            raise KeyError(f"no open span with id {sid}")
        span.end = self.env.now
        if args:
            span.args.update(args)
        self.spans.append(span)
        self._ends.append(span.end)
        if self.capacity is not None:
            self._compact_spans()
        return span

    def complete(self, pid: str, tid: str, name: str, cat: str,
                 start: int, end: int, **args: Any) -> Span:
        """Record an already-finished interval in one call."""
        if end < start:
            raise ValueError(f"span ends at {end} before start {start}")
        if self._bindings:
            self._annotate(pid, tid, args)
        span = Span(sid=next(self._sids), pid=pid, tid=tid, name=name,
                    cat=cat, start=start, end=end, args=args)
        self.spans.append(span)
        if self._ends_sorted and self._ends and end < self._ends[-1]:
            # A back-dated end breaks the record-order monotonicity;
            # spans_between falls back to the linear scan.
            self._ends_sorted = False
        self._ends.append(end)
        if self.capacity is not None:
            self._compact_spans()
        return span

    def instant(self, pid: str, tid: str, name: str, cat: str,
                **args: Any) -> None:
        if self._bindings:
            self._annotate(pid, tid, args)
        self.instants.append(Instant(pid=pid, tid=tid, name=name,
                                     cat=cat, ts=self.env.now, args=args))
        if self.capacity is not None and \
                len(self.instants) > 2 * self.capacity:
            drop = len(self.instants) - self.capacity
            del self.instants[:drop]
            self.dropped_instants += drop

    def counter(self, pid: str, name: str, **values: float) -> None:
        self.counters.append(CounterSample(pid=pid, name=name,
                                           ts=self.env.now,
                                           values=values))
        if self.capacity is not None and \
                len(self.counters) > 2 * self.capacity:
            drop = len(self.counters) - self.capacity
            del self.counters[:drop]
            self.dropped_counters += drop

    def _compact_spans(self) -> None:
        if len(self.spans) > 2 * self.capacity:
            drop = len(self.spans) - self.capacity
            del self.spans[:drop]
            del self._ends[:drop]
            self.dropped_spans += drop
            if not self._ends_sorted:
                # Cheap re-check: eviction may have dropped the
                # out-of-order prefix, restoring the fast path.
                self._ends_sorted = all(
                    a <= b for a, b in zip(self._ends, self._ends[1:]))

    @property
    def dropped(self) -> int:
        """Total records evicted by flight-recorder compaction."""
        return (self.dropped_spans + self.dropped_instants
                + self.dropped_counters)

    # -- queries -----------------------------------------------------------

    @property
    def open_spans(self) -> List[Span]:
        return list(self._open.values())

    def all_spans(self, cat: Optional[str] = None,
                  closed_only: bool = True) -> List[Span]:
        """Spans in start order, optionally filtered by category prefix.

        A ``cat`` of ``"dma"`` matches ``dma.load``, ``dma.store``, ...
        (exact segment-prefix match, so ``"acc"`` does not match
        ``"accel"``).
        """
        spans: Iterable[Span] = self.spans
        if not closed_only:
            spans = list(spans) + self.open_spans
        if cat is not None:
            spans = [s for s in spans
                     if s.cat == cat or s.cat.startswith(cat + ".")]
        return sorted(spans, key=lambda s: (s.start, s.sid))

    def spans_between(self, t0: int, t1: int) -> List[Span]:
        """Closed spans overlapping the window ``[t0, t1)``.

        Spans append when they *close*, and every recording path
        closes at (or before) the current cycle, so ``self.spans`` is
        monotone in end cycle and the window's left edge is found with
        ``bisect`` instead of scanning the whole history — the
        difference between O(window) and O(run) for the flight
        recorder's repeated recent-window dumps. A ``complete()``
        call that back-dates an end clears the sorted flag and this
        degrades (correctly) to the linear scan.
        """
        if self._ends_sorted:
            lo = bisect_right(self._ends, t0)
            return [s for s in self.spans[lo:] if s.start < t1]
        return [s for s in self.spans
                if s.end is not None and s.end > t0 and s.start < t1]

    def find_span(self, cat: str, name: Optional[str] = None,
                  index: int = 0) -> Span:
        """The index-th closed span of a category (and optional name)."""
        matches = [s for s in self.all_spans(cat=cat)
                   if name is None or s.name == name]
        if not matches:
            raise KeyError(f"no span with cat={cat!r}"
                           + (f" name={name!r}" if name else ""))
        return matches[index]

    def clear(self) -> None:
        """Drop every record (the store, not the attachment)."""
        self.spans.clear()
        self.instants.clear()
        self.counters.clear()
        self._open.clear()
        self._ends.clear()
        self._ends_sorted = True

    def __repr__(self) -> str:
        ns = f" ns={self.namespace!r}" if self.namespace else ""
        ring = (f" ring={self.capacity}" if self.capacity is not None
                else "")
        return (f"<Tracer{ns}{ring} {len(self.spans)} spans "
                f"({len(self._open)} open), {len(self.instants)} "
                f"instants, {len(self.counters)} counter samples>")


def _environment_of(target):
    env = getattr(target, "env", None)
    return env if env is not None else target


def attach_tracer(target, namespace: Optional[str] = None,
                  capacity: Optional[int] = None) -> Tracer:
    """Create a :class:`Tracer` and attach it to the environment.

    ``target`` may be an :class:`~repro.sim.Environment` or anything
    carrying one as ``.env`` (a :class:`~repro.soc.SoCInstance`, a
    runtime, a server). Idempotent: an already-attached tracer is
    returned unchanged — unless it was attached under a different
    namespace, which raises (mirroring ``attach_metrics``) because
    silently re-labelling a fleet instance's records would corrupt the
    merged trace.
    """
    env = _environment_of(target)
    tracer = getattr(env, "tracer", None)
    if tracer is None:
        tracer = Tracer(env, namespace=namespace, capacity=capacity)
        env.tracer = tracer
    elif namespace is not None and tracer.namespace != namespace:
        raise ValueError(
            f"environment already has a tracer with namespace "
            f"{tracer.namespace!r}; refusing to re-attach as "
            f"{namespace!r}")
    return tracer


def detach_tracer(target) -> Optional[Tracer]:
    """Detach (and return) the environment's tracer, if any.

    After detaching, every instrumentation site is back to its
    disabled-cost path; the returned tracer still holds its records
    for export.
    """
    env = _environment_of(target)
    tracer = getattr(env, "tracer", None)
    env.tracer = None
    return tracer
