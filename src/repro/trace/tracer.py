"""The cycle-level event tracer: spans, instants and counters.

ESP instruments its SoCs with hardware performance monitors and the
companion papers read them out to explain *where cycles go* (per-
accelerator busy time, NoC-plane traffic, ioctl overhead). This module
is the simulated equivalent turned into one coherent subsystem: a
single :class:`Tracer` attached to the simulation
:class:`~repro.sim.Environment` that every layer of the stack reports
into — kernel process lifetimes, NoC packet and link traversals, DMA
transactions, accelerator LOAD/COMPUTE/STORE phases, runtime executor
phases (ioctl, register programming, IRQ wait) and serve-layer
queue/batch/grant events.

Design rules:

- **Zero timing impact.** Recording never yields, never schedules an
  event and never advances the clock, so a traced run is cycle-for-
  cycle identical to an untraced one; tracing changes what you *see*,
  not what happens.
- **Near-zero overhead when disabled.** Instrumentation sites guard
  with ``env.tracer is None`` — one attribute load and a pointer
  compare, mirroring the fault-injection hooks of the faults
  subsystem.
- **One store, many views.** The Chrome-trace exporter, the flame
  summary, the VCD/Gantt renderers and the critical-path analyzer all
  read the same span lists recorded here.

Tracks: every record carries a ``(pid, tid)`` pair — process and
thread labels in Chrome-trace terms. By convention ``pid`` names the
tile (or subsystem: ``cpu``, ``noc``, ``serve``, ``sim``) and ``tid``
names the engine inside it (``wrapper``, ``dma.load``, a plane name,
a driver thread).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


@dataclass
class Span:
    """One named interval on one track (begin/end pair, in cycles)."""

    sid: int
    pid: str
    tid: str
    name: str
    cat: str
    start: int
    end: Optional[int] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None


@dataclass(frozen=True)
class Instant:
    """A point event (an IRQ edge, a queue admit, a grant)."""

    pid: str
    tid: str
    name: str
    cat: str
    ts: int
    args: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CounterSample:
    """One sample of a named counter series (queue depth, occupancy)."""

    pid: str
    name: str
    ts: int
    values: Dict[str, float] = field(default_factory=dict)


class Tracer:
    """The global span/instant/counter store of one simulation.

    Attach with :func:`attach_tracer`; instrumentation sites across the
    stack then report into it. All timestamps are simulation cycles;
    exporters convert to wall time with the SoC clock.
    """

    def __init__(self, env) -> None:
        self.env = env
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.counters: List[CounterSample] = []
        self._open: Dict[int, Span] = {}
        self._sids = itertools.count()

    # -- recording ---------------------------------------------------------

    def begin(self, pid: str, tid: str, name: str, cat: str,
              **args: Any) -> int:
        """Open a span at the current cycle; returns its id."""
        sid = next(self._sids)
        self._open[sid] = Span(sid=sid, pid=pid, tid=tid, name=name,
                               cat=cat, start=self.env.now, args=args)
        return sid

    def end(self, sid: int, **args: Any) -> Span:
        """Close the span at the current cycle (extra args merge in)."""
        span = self._open.pop(sid, None)
        if span is None:
            raise KeyError(f"no open span with id {sid}")
        span.end = self.env.now
        if args:
            span.args.update(args)
        self.spans.append(span)
        return span

    def complete(self, pid: str, tid: str, name: str, cat: str,
                 start: int, end: int, **args: Any) -> Span:
        """Record an already-finished interval in one call."""
        if end < start:
            raise ValueError(f"span ends at {end} before start {start}")
        span = Span(sid=next(self._sids), pid=pid, tid=tid, name=name,
                    cat=cat, start=start, end=end, args=args)
        self.spans.append(span)
        return span

    def instant(self, pid: str, tid: str, name: str, cat: str,
                **args: Any) -> None:
        self.instants.append(Instant(pid=pid, tid=tid, name=name,
                                     cat=cat, ts=self.env.now, args=args))

    def counter(self, pid: str, name: str, **values: float) -> None:
        self.counters.append(CounterSample(pid=pid, name=name,
                                           ts=self.env.now,
                                           values=values))

    # -- queries -----------------------------------------------------------

    @property
    def open_spans(self) -> List[Span]:
        return list(self._open.values())

    def all_spans(self, cat: Optional[str] = None,
                  closed_only: bool = True) -> List[Span]:
        """Spans in start order, optionally filtered by category prefix.

        A ``cat`` of ``"dma"`` matches ``dma.load``, ``dma.store``, ...
        (exact segment-prefix match, so ``"acc"`` does not match
        ``"accel"``).
        """
        spans: Iterable[Span] = self.spans
        if not closed_only:
            spans = list(spans) + self.open_spans
        if cat is not None:
            spans = [s for s in spans
                     if s.cat == cat or s.cat.startswith(cat + ".")]
        return sorted(spans, key=lambda s: (s.start, s.sid))

    def spans_between(self, t0: int, t1: int) -> List[Span]:
        """Closed spans overlapping the window ``[t0, t1)``."""
        return [s for s in self.spans
                if s.end is not None and s.end > t0 and s.start < t1]

    def find_span(self, cat: str, name: Optional[str] = None,
                  index: int = 0) -> Span:
        """The index-th closed span of a category (and optional name)."""
        matches = [s for s in self.all_spans(cat=cat)
                   if name is None or s.name == name]
        if not matches:
            raise KeyError(f"no span with cat={cat!r}"
                           + (f" name={name!r}" if name else ""))
        return matches[index]

    def clear(self) -> None:
        """Drop every record (the store, not the attachment)."""
        self.spans.clear()
        self.instants.clear()
        self.counters.clear()
        self._open.clear()

    def __repr__(self) -> str:
        return (f"<Tracer {len(self.spans)} spans "
                f"({len(self._open)} open), {len(self.instants)} "
                f"instants, {len(self.counters)} counter samples>")


def _environment_of(target):
    env = getattr(target, "env", None)
    return env if env is not None else target


def attach_tracer(target) -> Tracer:
    """Create a :class:`Tracer` and attach it to the environment.

    ``target`` may be an :class:`~repro.sim.Environment` or anything
    carrying one as ``.env`` (a :class:`~repro.soc.SoCInstance`, a
    runtime, a server). Idempotent: an already-attached tracer is
    returned unchanged.
    """
    env = _environment_of(target)
    if getattr(env, "tracer", None) is None:
        env.tracer = Tracer(env)
    return env.tracer


def detach_tracer(target) -> Optional[Tracer]:
    """Detach (and return) the environment's tracer, if any.

    After detaching, every instrumentation site is back to its
    disabled-cost path; the returned tracer still holds its records
    for export.
    """
    env = _environment_of(target)
    tracer = getattr(env, "tracer", None)
    env.tracer = None
    return tracer
