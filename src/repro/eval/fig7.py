"""Fig. 7 reproduction: energy efficiency (frames/Joule) per mode.

The figure shows, for five pipeline configurations grouped in three
clusters (Night-Vision+Classifier with 1NV+1Cl / 4NV+1Cl / 4NV+4Cl,
Denoiser+Classifier, Multi-tile Classifier), three bars each — base,
pipe, p2p — on a log scale, with horizontal lines for the i7 and the
Jetson TX1. The headline claim: "the ESP4ML SoCs outperforms both the
GPU and the CPU across all three applications, yielding in some cases
an energy-efficiency gain of over 100x".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..platforms import INTEL_I7_8700K, JETSON_TX1
from .apps import APP_CONFIGS
from .harness import DEFAULT_FRAMES, format_table, measure

#: The five bar clusters of the figure, in plot order.
FIG7_CONFIGS = ("1nv_1cl", "4nv_1cl", "4nv_4cl", "1de_1cl", "1cl_split")
MODES = ("base", "pipe", "p2p")


@dataclass
class Fig7Cluster:
    """One cluster of bars plus the platform reference lines."""

    app_key: str
    frames_per_joule: Dict[str, float]        # mode -> value
    fps: Dict[str, float]                      # mode -> frames/s
    i7_frames_per_joule: float
    jetson_frames_per_joule: float

    def gain_over(self, platform_fpj: float, mode: str = "p2p") -> float:
        return self.frames_per_joule[mode] / platform_fpj


@dataclass
class Fig7Data:
    clusters: List[Fig7Cluster] = field(default_factory=list)

    def cluster(self, app_key: str) -> Fig7Cluster:
        for cluster in self.clusters:
            if cluster.app_key == app_key:
                return cluster
        raise KeyError(app_key)

    def max_gain(self) -> float:
        """The figure's headline: best gain over the better baseline."""
        return max(
            cluster.frames_per_joule["p2p"]
            / max(cluster.i7_frames_per_joule,
                  cluster.jetson_frames_per_joule)
            for cluster in self.clusters)


def generate_fig7(n_frames: int = DEFAULT_FRAMES, seed: int = 0) -> Fig7Data:
    """Measure every bar of the figure."""
    data = Fig7Data()
    for app_key in FIG7_CONFIGS:
        kernels = APP_CONFIGS[app_key].software_kernels
        fpj: Dict[str, float] = {}
        fps: Dict[str, float] = {}
        for mode in MODES:
            result = measure(app_key, mode, n_frames=n_frames, seed=seed)
            fpj[mode] = result.frames_per_joule
            fps[mode] = result.fps
        data.clusters.append(Fig7Cluster(
            app_key=app_key,
            frames_per_joule=fpj,
            fps=fps,
            i7_frames_per_joule=INTEL_I7_8700K.app_frames_per_joule(
                kernels),
            jetson_frames_per_joule=JETSON_TX1.app_frames_per_joule(
                kernels),
        ))
    return data


def render_fig7(data: Fig7Data) -> str:
    """Text rendering: frames/J per bar, normalized to the i7 line."""
    headers = ["config", "base", "pipe", "p2p", "i7", "jetson",
               "p2p/i7", "p2p/gpu"]
    rows = []
    for cluster in data.clusters:
        i7 = cluster.i7_frames_per_joule
        gpu = cluster.jetson_frames_per_joule
        rows.append([
            cluster.app_key,
            f"{cluster.frames_per_joule['base']:,.0f}",
            f"{cluster.frames_per_joule['pipe']:,.0f}",
            f"{cluster.frames_per_joule['p2p']:,.0f}",
            f"{i7:,.1f}",
            f"{gpu:,.1f}",
            f"{cluster.gain_over(i7):,.0f}x",
            f"{cluster.gain_over(gpu):,.0f}x",
        ])
    table = format_table(rows, headers)
    return (table + f"\n\nmax energy-efficiency gain over best baseline: "
            f"{data.max_gain():,.0f}x (paper: 'over 100x in some cases')")
