"""Experiment harness: everything the paper's evaluation reports."""

from .apps import (
    APP_CONFIGS,
    AppConfig,
    BEST_CASE,
    build_soc1,
    build_soc2,
    classifier_inputs,
    dataflow_de_cl,
    dataflow_multitile,
    dataflow_nv_cl,
    de_cl_inputs,
    fresh_runtime,
    nv_cl_inputs,
)
from .harness import (
    DEFAULT_FRAMES,
    Measurement,
    format_table,
    measure,
    measure_all_modes,
    relative_error,
)
from .table1 import Table1Column, generate_table1, render_table1
from .fig7 import FIG7_CONFIGS, Fig7Cluster, Fig7Data, generate_fig7, render_fig7
from .fig8 import FIG8_CONFIGS, Fig8Bar, generate_fig8, render_fig8
from .timeline import Span, collect_spans, render_gantt, utilization_by_device

__all__ = [
    "APP_CONFIGS",
    "AppConfig",
    "BEST_CASE",
    "DEFAULT_FRAMES",
    "FIG7_CONFIGS",
    "FIG8_CONFIGS",
    "Fig7Cluster",
    "Fig7Data",
    "Fig8Bar",
    "Measurement",
    "Span",
    "Table1Column",
    "build_soc1",
    "build_soc2",
    "classifier_inputs",
    "dataflow_de_cl",
    "dataflow_multitile",
    "dataflow_nv_cl",
    "de_cl_inputs",
    "format_table",
    "fresh_runtime",
    "generate_fig7",
    "generate_fig8",
    "generate_table1",
    "measure",
    "measure_all_modes",
    "nv_cl_inputs",
    "relative_error",
    "render_fig7",
    "render_fig8",
    "render_table1",
    "render_gantt",
    "collect_spans",
    "utilization_by_device",
]
