"""Experiment harness: everything the paper's evaluation reports."""

from .apps import (
    APP_CONFIGS,
    AppConfig,
    BEST_CASE,
    build_soc1,
    build_soc2,
    classifier_inputs,
    dataflow_de_cl,
    dataflow_multitile,
    dataflow_nv_cl,
    de_cl_inputs,
    fresh_runtime,
    nv_cl_inputs,
)
from .harness import (
    DEFAULT_FRAMES,
    LatencySummary,
    Measurement,
    format_table,
    measure,
    measure_all_modes,
    percentile,
    relative_error,
    summarize_latencies,
)
from .faults import (
    CampaignReport,
    FaultRunRecord,
    campaign_policy,
    chain3_dataflow,
    golden_run,
    run_fault_campaign,
    smoke_campaign,
)
from .table1 import Table1Column, generate_table1, render_table1
from .fig7 import FIG7_CONFIGS, Fig7Cluster, Fig7Data, generate_fig7, render_fig7
from .fig8 import FIG8_CONFIGS, Fig8Bar, generate_fig8, render_fig8
from .timeline import (GANTT_BUSY, GANTT_OVERLAP, Span, collect_spans,
                       render_gantt, utilization_by_device)

__all__ = [
    "APP_CONFIGS",
    "AppConfig",
    "BEST_CASE",
    "CampaignReport",
    "ChaosReport",
    "ChaosScenario",
    "DEFAULT_FRAMES",
    "DEFAULT_RECOVERY_SLOS",
    "FIG7_CONFIGS",
    "FIG8_CONFIGS",
    "Fig7Cluster",
    "Fig7Data",
    "FaultRunRecord",
    "Fig8Bar",
    "LatencySummary",
    "Measurement",
    "GANTT_BUSY",
    "GANTT_OVERLAP",
    "ScenarioResult",
    "Span",
    "Table1Column",
    "CAMPAIGN_POLICIES",
    "build_chaos_stack",
    "build_soc1",
    "build_soc2",
    "build_standard_fleet",
    "campaign_policy",
    "chain3_dataflow",
    "chaos_scenarios",
    "classifier_inputs",
    "dataflow_de_cl",
    "dataflow_multitile",
    "dataflow_nv_cl",
    "de_cl_inputs",
    "format_table",
    "fresh_runtime",
    "generate_fig7",
    "golden_run",
    "generate_fig8",
    "generate_table1",
    "measure",
    "measure_all_modes",
    "nv_cl_inputs",
    "percentile",
    "relative_error",
    "summarize_latencies",
    "render_fig7",
    "render_fig8",
    "render_table1",
    "render_gantt",
    "overload_workload",
    "run_chaos_campaign",
    "run_fault_campaign",
    "run_fleet_campaign",
    "run_scenario",
    "run_traced_fleet_scenario",
    "smoke_campaign",
    "standard_inputs",
    "standard_tenants",
    "collect_spans",
    "utilization_by_device",
]

#: Chaos-campaign exports, resolved lazily (PEP 562): the campaign
#: module composes serve + metrics + control, each of which reaches
#: back into ``repro.eval`` for apps/harness helpers — importing it
#: eagerly here would make every one of those imports circular.
_CHAOS_EXPORTS = frozenset({
    "ChaosReport",
    "ChaosScenario",
    "DEFAULT_RECOVERY_SLOS",
    "ScenarioResult",
    "build_chaos_stack",
    "chaos_scenarios",
    "run_chaos_campaign",
    "run_scenario",
})

#: Fleet-campaign exports, lazy for the same reason: the campaign
#: composes ``repro.fleet``, which reaches back into
#: ``repro.eval.harness`` for latency summaries.
_FLEET_EXPORTS = frozenset({
    "CAMPAIGN_POLICIES",
    "build_standard_fleet",
    "overload_workload",
    "run_fleet_campaign",
    "run_traced_fleet_scenario",
    "standard_inputs",
    "standard_tenants",
})


def __getattr__(name):
    if name in _CHAOS_EXPORTS:
        from . import chaos
        return getattr(chaos, name)
    if name in _FLEET_EXPORTS:
        from . import fleet
        return getattr(fleet, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
