"""Fault-injection campaigns over the Fig. 7 pipelines.

The robustness evaluation: sweep fault kinds x rates over a three-stage
SoC-1 pipeline (Denoiser -> Night-Vision -> Classifier, the deepest
chain the SoC hosts) and measure whether the runtime's watchdog /
retry / graceful-degradation machinery delivers bit-exact outputs, and
at what cycle cost. Each configuration runs on a fresh SoC so the
campaign is deterministic and runs are independent.

A run counts as *recovered* when its outputs are bit-exact with the
fault-free golden outputs, allowing one application-level retry — the
application's own defense (re-running ``esp_run``) which is what clears
silent DRAM upsets that no watchdog can see.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
)
from ..runtime import Dataflow, EspRuntime, chain
from .apps import build_soc1, de_cl_inputs
from .harness import LatencySummary, summarize_latencies

#: The three-stage Fig. 7 pipeline the campaign exercises.
CHAIN3_DEVICES = ("de0", "nv0", "cl0")

#: Execution modes under test: the threaded DMA pipeline and the p2p
#: streaming pipeline (the two recovery regimes — per-frame retry vs
#: whole-run degradation).
DEFAULT_MODES = ("pipe", "p2p")

#: Per-opportunity fault probabilities swept by the default campaign.
DEFAULT_RATES = (2e-4, 1e-3)

#: Watchdog slack added on top of the fault-free run length.
WATCHDOG_SLACK = 50_000

#: Per-opportunity probability normalization. Fault sites present
#: wildly different opportunity counts per run (hundreds of packet
#: deliveries vs a single accelerator invocation of the targeted
#: node), so the swept rate — a workload-level fault intensity — is
#: scaled up per site class to yield comparable expected firings. At
#: the top default rate (1e-3) a device-level fault is certain to
#: strike its first opportunity.
OPPORTUNITY_BOOST = {
    "link_drop": 50.0,
    "link_corrupt": 50.0,
    "dram_bitflip": 1000.0,
    "dma_stall": 1000.0,
    "p2p_req_drop": 1000.0,
    "acc_hang": 1000.0,
    "acc_crash": 1000.0,
    "acc_slow": 1000.0,
}


def chain3_dataflow() -> Dataflow:
    """Denoiser -> Night-Vision -> Classifier on SoC-1."""
    return chain("de_nv_cl", list(CHAIN3_DEVICES))


def campaign_policy(baseline_cycles: int) -> RecoveryPolicy:
    """A recovery policy sized to the workload.

    The watchdog must outlast the longest legitimate invocation; a p2p
    streaming invocation spans the whole run, so the fault-free run
    length plus slack is the natural bound.
    """
    return RecoveryPolicy(watchdog_cycles=baseline_cycles + WATCHDOG_SLACK,
                          max_retries=2)


def fault_specs_for(kind: str, rate: float,
                    target: Optional[str] = "nv0"
                    ) -> Tuple[FaultSpec, ...]:
    """The default spec for one swept fault kind at one intensity.

    Accelerator and DMA faults strike the middle pipeline stage (the
    hardest case: both neighbours are mid-flight); NoC and DRAM faults
    strike whichever delivery / load the seeded draw selects. Every
    spec is a single transient (``count=1``): each campaign cell asks
    "one fault strikes — does the stack recover?", and a silently
    corrupted run (a dropped posted store, a DRAM upset) is repaired
    by the application-level retry precisely because the transient
    does not recur.
    """
    probability = min(1.0, rate * OPPORTUNITY_BOOST[kind])
    target = target if kind.startswith(("acc", "dma")) else None
    return (FaultSpec(kind=kind, target=target, probability=probability,
                      count=1),)


@dataclass
class FaultRunRecord:
    """One campaign cell: a (kind, rate, mode) run and its outcome."""

    kind: str
    mode: str
    rate: float
    recovered: bool
    bit_exact_first_try: bool
    cycles: int             # cumulative over app-level retries
    baseline_cycles: int
    faults_fired: int
    retries: int
    watchdog_timeouts: int
    software_frames: int
    degraded: bool
    app_retries: int

    @property
    def overhead_cycles(self) -> int:
        return self.cycles - self.baseline_cycles

    @property
    def overhead_pct(self) -> float:
        return 100.0 * self.overhead_cycles / self.baseline_cycles


@dataclass
class CampaignReport:
    """Everything a fault campaign measured."""

    records: List[FaultRunRecord] = field(default_factory=list)
    baselines: Dict[str, int] = field(default_factory=dict)

    @property
    def recovery_rate(self) -> float:
        if not self.records:
            return 1.0
        return sum(r.recovered for r in self.records) / len(self.records)

    @property
    def faults_fired(self) -> int:
        return sum(r.faults_fired for r in self.records)

    def overhead_by_kind(self) -> Dict[str, LatencySummary]:
        """Cycle-overhead (%) distribution per fault kind, over firing
        runs — the shared :class:`LatencySummary` aggregate, so the
        campaign reports tails, not just means."""
        samples: Dict[str, List[float]] = {}
        for record in self.records:
            if record.faults_fired:
                samples.setdefault(record.kind, []).append(
                    record.overhead_pct)
        return {kind: summarize_latencies(v)
                for kind, v in sorted(samples.items())}

    def render(self) -> str:
        header = (f"{'fault':<14} {'rate':>8} {'mode':>5} {'fired':>5} "
                  f"{'recovered':>9} {'retry':>5} {'wdog':>4} {'sw':>3} "
                  f"{'degr':>4} {'overhead':>9}")
        lines = [header, "-" * len(header)]
        for r in self.records:
            lines.append(
                f"{r.kind:<14} {r.rate:>8.0e} {r.mode:>5} "
                f"{r.faults_fired:>5} {str(r.recovered):>9} "
                f"{r.retries:>5} {r.watchdog_timeouts:>4} "
                f"{r.software_frames:>3} {str(r.degraded):>4} "
                f"{r.overhead_pct:>8.1f}%")
        lines.append("-" * len(header))
        lines.append(f"recovery rate: {100 * self.recovery_rate:.1f}% "
                     f"({sum(r.recovered for r in self.records)}/"
                     f"{len(self.records)} runs), "
                     f"{self.faults_fired} faults fired")
        return "\n".join(lines)


def _fresh_runtime(recovery: Optional[RecoveryPolicy] = None,
                   plan: Optional[FaultPlan] = None
                   ) -> Tuple[EspRuntime, Optional[FaultInjector]]:
    soc = build_soc1()
    runtime = EspRuntime(soc, recovery=recovery)
    injector = None
    if plan is not None:
        injector = FaultInjector(plan).attach(soc)
    return runtime, injector


def golden_run(frames: np.ndarray, mode: str
               ) -> Tuple[np.ndarray, int]:
    """Fault-free reference outputs and cycles (no recovery armed)."""
    runtime, _ = _fresh_runtime()
    result = runtime.esp_run(chain3_dataflow(), frames, mode=mode)
    return result.outputs, result.cycles


def run_fault_campaign(kinds: Sequence[str] = FAULT_KINDS,
                       rates: Sequence[float] = DEFAULT_RATES,
                       modes: Sequence[str] = DEFAULT_MODES,
                       n_frames: int = 4, seed: int = 0,
                       app_retries: int = 1,
                       verbose: bool = False) -> CampaignReport:
    """Sweep fault kinds x rates x modes over the 3-stage pipeline.

    Each cell builds a fresh SoC, arms the recovery policy, attaches a
    single-transient fault plan and runs the full batch; outputs are
    compared bit-exactly against the fault-free golden run. A mismatch
    is given ``app_retries`` application-level re-runs (fresh buffers,
    same SoC) before the cell counts as unrecovered.
    """
    frames, _ = de_cl_inputs(n_frames, seed=seed)
    report = CampaignReport()
    goldens: Dict[str, np.ndarray] = {}
    for mode in modes:
        golden, cycles = golden_run(frames, mode)
        goldens[mode] = golden
        report.baselines[mode] = cycles

    for kind in kinds:
        for rate in rates:
            for mode in modes:
                if kind == "p2p_req_drop" and mode != "p2p":
                    continue   # the fault site only exists on p2p loads
                policy = campaign_policy(report.baselines[mode])
                cell = zlib.crc32(f"{kind}:{mode}:{rate}".encode())
                plan = FaultPlan(fault_specs_for(kind, rate),
                                 seed=seed + cell % 100_000)
                runtime, injector = _fresh_runtime(policy, plan)
                dataflow = chain3_dataflow()
                results = [runtime.esp_run(dataflow, frames, mode=mode)]
                first_exact = bool(np.array_equal(results[0].outputs,
                                                  goldens[mode]))
                recovered = first_exact
                while not recovered and len(results) <= app_retries:
                    results.append(
                        runtime.esp_run(dataflow, frames, mode=mode))
                    recovered = bool(np.array_equal(results[-1].outputs,
                                                    goldens[mode]))
                record = FaultRunRecord(
                    kind=kind, mode=mode, rate=rate,
                    recovered=recovered,
                    bit_exact_first_try=first_exact,
                    cycles=sum(r.cycles for r in results),
                    baseline_cycles=report.baselines[mode],
                    faults_fired=plan.fired,
                    retries=sum(r.retries for r in results),
                    watchdog_timeouts=sum(r.watchdog_timeouts
                                          for r in results),
                    software_frames=sum(r.software_frames
                                        for r in results),
                    degraded=any(r.degraded for r in results),
                    app_retries=len(results) - 1,
                )
                report.records.append(record)
                if verbose:
                    print(f"{kind}/{rate:.0e}/{mode}: "
                          f"fired={plan.fired} recovered={recovered}")
    return report


def smoke_campaign(n_frames: int = 2, seed: int = 0) -> CampaignReport:
    """A fast CI subset: one deterministic transient per regime."""
    return run_fault_campaign(
        kinds=("acc_hang", "acc_crash", "link_drop", "dram_bitflip"),
        rates=(1e-3,), modes=("pipe", "p2p"),
        n_frames=n_frames, seed=seed)
