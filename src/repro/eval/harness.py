"""Shared machinery for the paper-reproduction experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..nn import Sequential
from ..platforms import soc_power_watts
from ..runtime import RunResult
from .apps import APP_CONFIGS, AppConfig, fresh_runtime

#: Default measurement length. Frames per run: small enough to keep a
#: full sweep fast, large enough to amortize pipeline fill.
DEFAULT_FRAMES = 32


def percentile(values, q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation.

    Thin wrapper over :func:`numpy.percentile` with input validation —
    kept as a named helper so every experiment aggregates latency the
    same way.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    return float(np.percentile(values, q))


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of a latency (or overhead) sample.

    The shared aggregate shape of the serving benchmarks and the fault
    campaigns: tail percentiles rather than just a mean, because a
    multi-tenant system is judged by its p99.
    """

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def scaled(self, factor: float) -> "LatencySummary":
        """The same summary in different units (e.g. cycles -> us)."""
        return LatencySummary(count=self.count,
                              mean=self.mean * factor,
                              p50=self.p50 * factor,
                              p95=self.p95 * factor,
                              p99=self.p99 * factor,
                              max=self.max * factor)

    @classmethod
    def from_histogram(cls, series) -> "LatencySummary":
        """Summary from a metrics ``HistogramSeries`` (bucketed sample).

        A live histogram keeps bucket counts, not the raw sample, so
        percentiles are estimated: the target is the same *observation
        position* :func:`percentile` interpolates on a raw sample
        (numpy's linear convention, ``(count - 1) * q / 100``), each
        neighbouring order statistic is estimated by assuming
        observations spread uniformly across its bucket's ``(lo, hi]``
        span, and the two are blended with the position's fractional
        part.

        Sharing :func:`percentile`'s rank convention matters at exact
        boundaries: under the previous ``q / 100 * count`` rank, a
        rank landing exactly on a cumulative-count boundary returned
        the bucket's upper edge while the true (interpolated)
        percentile lay partway toward the *next populated* bucket —
        across empty buckets, that error was unbounded by any single
        bucket width. Now each side of the interpolation lands inside
        the bucket of the order statistic it estimates, so the error
        bound is honest: at most the wider of the two neighbouring
        buckets' widths (a factor of 2 for the default power-of-two
        bounds), one bucket width when both neighbours share a bucket.
        The mean (``sum`` and ``count`` are exact) and the max
        (tracked per observation) carry no bucketing error. An order
        statistic that falls in the overflow (``+Inf``) bucket clamps
        to the observed max. Adversarial layouts — exact boundaries,
        single populated buckets, runs of empty buckets — are pinned
        against :func:`percentile` in ``tests/eval/test_harness.py``.
        """
        if series.count == 0:
            raise ValueError("from_histogram of an empty histogram")

        def order_stat(k: int) -> float:
            # Estimated k-th smallest observation (0-indexed), uniform
            # spread inside its bucket. Empty buckets are skipped
            # before `previous` is read, so cumulative bookkeeping only
            # ever advances on populated buckets.
            cumulative = 0
            for index, count in enumerate(series.counts):
                if count == 0:
                    continue
                previous = cumulative
                cumulative += count
                if cumulative > k:
                    if index >= len(series.bounds):
                        return float(series.max)
                    lo = series.bounds[index - 1] if index else 0
                    hi = series.bounds[index]
                    within = (k - previous + 1) / count
                    return float(min(lo + (hi - lo) * within,
                                     series.max))
            return float(series.max)

        def estimate(q: float) -> float:
            position = (series.count - 1) * q / 100.0
            floor_rank = int(position)
            fraction = position - floor_rank
            value = order_stat(floor_rank)
            if fraction:
                value += fraction * (order_stat(floor_rank + 1) - value)
            return float(min(value, series.max))

        return cls(
            count=series.count,
            mean=series.sum / series.count,
            p50=estimate(50.0),
            p95=estimate(95.0),
            p99=estimate(99.0),
            max=float(series.max),
        )

    @classmethod
    def merge(cls, parts) -> "LatencySummary":
        """Fleet-wide summary over per-instance parts.

        Each part is either a raw latency sample (any sequence of
        numbers) or a bucketed histogram (anything shaped like a
        :class:`repro.metrics.HistogramSeries`: ``bounds``/``counts``/
        ``sum``/``count``/``max`` attributes). Percentiles of N
        instances cannot be combined from their per-instance
        percentiles — a p99 of p99s is not the fleet p99 — so merging
        works on the underlying distributions:

        - **All parts raw samples** — the samples are pooled and the
          result is *exact* (identical to :func:`summarize_latencies`
          of the concatenation).
        - **Any part a histogram** — every histogram part must share
          one bucket layout; raw parts are bucketed into it, the
          per-bucket counts are summed, and percentiles are
          interpolated as in :meth:`from_histogram`. Error bound:
          same as ``from_histogram`` — each interpolation endpoint
          lands inside its order statistic's bucket (at most the wider
          neighbouring bucket's width; within 2x for the default
          power-of-two bounds). ``count``, ``mean`` and ``max`` stay
          exact in both cases.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("merge of no parts")
        histograms = [p for p in parts if _is_histogram(p)]
        samples = [np.asarray(p, dtype=np.float64)
                   for p in parts if not _is_histogram(p)]
        if not histograms:
            pooled = np.concatenate(samples) if samples else \
                np.empty(0)
            return summarize_latencies(pooled)
        bounds = tuple(histograms[0].bounds)
        for series in histograms[1:]:
            if tuple(series.bounds) != bounds:
                raise ValueError(
                    f"cannot merge histograms with different bucket "
                    f"layouts: {bounds} vs {tuple(series.bounds)}")
        counts = [0] * (len(bounds) + 1)
        total = 0
        total_sum = 0.0
        maximum = 0.0
        for series in histograms:
            for index, count in enumerate(series.counts):
                counts[index] += count
            total += series.count
            total_sum += series.sum
            maximum = max(maximum, float(series.max))
        for sample in samples:
            for value in sample:
                counts[_bucket_of(bounds, value)] += 1
            total += int(sample.size)
            total_sum += float(sample.sum())
            if sample.size:
                maximum = max(maximum, float(sample.max()))
        if total == 0:
            raise ValueError("merge of empty parts")
        return cls.from_histogram(_MergedSeries(
            bounds=bounds, counts=counts, sum=total_sum, count=total,
            max=maximum))

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.1f} p50={self.p50:.1f} "
                f"p95={self.p95:.1f} p99={self.p99:.1f} "
                f"max={self.max:.1f}")


def _is_histogram(part) -> bool:
    """Histogram-shaped: carries bucket counts rather than samples."""
    return hasattr(part, "counts") and hasattr(part, "bounds")


def _bucket_of(bounds, value) -> int:
    """Index of the first bound >= value (len(bounds) = overflow)."""
    lo, hi = 0, len(bounds)
    while lo < hi:
        mid = (lo + hi) // 2
        if bounds[mid] < value:
            lo = mid + 1
        else:
            hi = mid
    return lo


@dataclass
class _MergedSeries:
    """Duck-typed histogram series fed back to ``from_histogram``."""

    bounds: tuple
    counts: list
    sum: float
    count: int
    max: float


def summarize_latencies(values) -> LatencySummary:
    """p50/p95/p99, mean and max of a non-empty sample."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("summarize_latencies of an empty sample")
    return LatencySummary(
        count=int(values.size),
        mean=float(values.mean()),
        p50=percentile(values, 50.0),
        p95=percentile(values, 95.0),
        p99=percentile(values, 99.0),
        max=float(values.max()),
    )


@dataclass
class Measurement:
    """One (configuration, mode) measurement on the simulated SoC."""

    app: str
    mode: str
    frames: int
    fps: float
    watts: float
    dram_accesses: int
    ioctl_calls: int
    cycles: int

    @property
    def frames_per_joule(self) -> float:
        return self.fps / self.watts


def measure(app_key: str, mode: str, n_frames: int = DEFAULT_FRAMES,
            seed: int = 0,
            classifier_model: Optional[Sequential] = None,
            denoiser_model: Optional[Sequential] = None) -> Measurement:
    """Run one configuration in one mode on a fresh SoC."""
    if app_key not in APP_CONFIGS:
        raise KeyError(f"unknown app {app_key!r}; options: "
                       f"{sorted(APP_CONFIGS)}")
    config: AppConfig = APP_CONFIGS[app_key]
    runtime = fresh_runtime(config, classifier_model=classifier_model,
                            denoiser_model=denoiser_model)
    frames, _ = config.make_inputs(n_frames, seed=seed)
    result: RunResult = runtime.esp_run(config.build_dataflow(), frames,
                                        mode=mode)
    return Measurement(
        app=app_key,
        mode=mode,
        frames=result.frames,
        fps=result.frames_per_second,
        watts=soc_power_watts(runtime.soc),
        dram_accesses=result.dram_accesses,
        ioctl_calls=result.ioctl_calls,
        cycles=result.cycles,
    )


def measure_all_modes(app_key: str, n_frames: int = DEFAULT_FRAMES,
                      seed: int = 0) -> Dict[str, Measurement]:
    """base / pipe / p2p measurements for one configuration."""
    return {mode: measure(app_key, mode, n_frames=n_frames, seed=seed)
            for mode in ("base", "pipe", "p2p")}


def relative_error(measured: float, reference: float) -> float:
    """Signed relative deviation of measured vs the paper's value."""
    if reference == 0:
        raise ValueError("reference value is zero")
    return (measured - reference) / reference


def format_table(rows, headers) -> str:
    """Plain-text table renderer used by every experiment report."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    def fmt(row):
        return "  ".join(c.rjust(w) for c, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)
