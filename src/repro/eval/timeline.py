"""Execution timelines: what each accelerator did, cycle by cycle.

Renders a text Gantt chart from the shared device-span store
(:mod:`repro.trace.store` — the same source the VCD exporter reads),
which makes the difference between the three execution modes visible
at a glance: serial staircases in ``base``, overlapping per-frame bars
in ``pipe``, one long streaming bar per device in ``p2p``. Columns
covered by a single invocation render as ``#``; columns where two
invocations of one device overlap (concurrent per-frame bars mapped to
the same column) render as ``@``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..trace.store import DeviceSpan, device_spans
from ..soc import SoCInstance

#: Re-exported under the historical name: the timeline's span type is
#: the shared device-span record.
Span = DeviceSpan

#: Gantt glyphs: one invocation covers the column / several overlap.
GANTT_BUSY = "#"
GANTT_OVERLAP = "@"


def collect_spans(soc: SoCInstance,
                  since_cycle: int = 0) -> List[Span]:
    """Invocation spans of every accelerator, in start order."""
    return device_spans(soc, since_cycle=since_cycle)


def utilization_by_device(soc: SoCInstance,
                          window: Optional[Tuple[int, int]] = None):
    """Fraction of the window each device spent executing.

    Spans are clipped to the window, and each device's busy total is
    clamped to the window length, so the result is always in
    ``[0, 1]`` even when a device's invocations overlap (double-booked
    cycles count once at the cap).
    """
    spans = collect_spans(soc)
    if window is None:
        if not spans:
            return {}
        window = (min(s.start for s in spans), max(s.end for s in spans))
    lo, hi = window
    length = max(1, hi - lo)
    busy: Dict[str, int] = {}
    for span in spans:
        overlap = max(0, min(span.end, hi) - max(span.start, lo))
        busy[span.device] = busy.get(span.device, 0) + overlap
    return {device: min(cycles, length) / length
            for device, cycles in busy.items()}


def render_gantt(soc: SoCInstance, width: int = 72,
                 since_cycle: int = 0) -> str:
    """ASCII Gantt chart of accelerator activity."""
    spans = collect_spans(soc, since_cycle=since_cycle)
    if not spans:
        return "(no accelerator activity)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    scale = max(1, (t1 - t0)) / width

    devices = sorted({s.device for s in spans})
    label_width = max(len(d) for d in devices) + 2
    lines = [f"cycles {t0} .. {t1}  (one column ~ {scale:.0f} cycles)"]
    for device in devices:
        row = [" "] * width
        for span in spans:
            if span.device != device:
                continue
            lo = int((span.start - t0) / scale)
            hi = max(lo + 1, int((span.end - t0) / scale))
            for col in range(lo, min(hi, width)):
                row[col] = GANTT_BUSY if row[col] == " " \
                    else GANTT_OVERLAP
        lines.append(f"{device:<{label_width}}|{''.join(row)}|")
    util = utilization_by_device(soc, window=(t0, t1))
    lines.append("utilization: " + "  ".join(
        f"{device}={util.get(device, 0):.0%}" for device in devices))
    return "\n".join(lines)
