"""Execution timelines: what each accelerator did, cycle by cycle.

Renders a text Gantt chart from the invocation records the accelerator
sockets keep, which makes the difference between the three execution
modes visible at a glance: serial staircases in ``base``, overlapping
per-frame bars in ``pipe``, one long streaming bar per device in
``p2p``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..soc import SoCInstance


@dataclass(frozen=True)
class Span:
    """One busy interval of one device."""

    device: str
    start: int
    end: int

    @property
    def cycles(self) -> int:
        return self.end - self.start


def collect_spans(soc: SoCInstance,
                  since_cycle: int = 0) -> List[Span]:
    """Invocation spans of every accelerator, in start order."""
    spans = [Span(name, inv.start_cycle, inv.end_cycle)
             for name, tile in soc.accelerators.items()
             for inv in tile.invocations
             if inv.end_cycle > since_cycle]
    return sorted(spans, key=lambda s: (s.start, s.device))


def utilization_by_device(soc: SoCInstance,
                          window: Optional[Tuple[int, int]] = None):
    """Fraction of the window each device spent executing."""
    spans = collect_spans(soc)
    if window is None:
        if not spans:
            return {}
        window = (min(s.start for s in spans), max(s.end for s in spans))
    lo, hi = window
    length = max(1, hi - lo)
    busy = {}
    for span in spans:
        overlap = max(0, min(span.end, hi) - max(span.start, lo))
        busy[span.device] = busy.get(span.device, 0) + overlap
    return {device: cycles / length for device, cycles in busy.items()}


def render_gantt(soc: SoCInstance, width: int = 72,
                 since_cycle: int = 0) -> str:
    """ASCII Gantt chart of accelerator activity."""
    spans = collect_spans(soc, since_cycle=since_cycle)
    if not spans:
        return "(no accelerator activity)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    scale = max(1, (t1 - t0)) / width

    devices = sorted({s.device for s in spans})
    label_width = max(len(d) for d in devices) + 2
    lines = [f"cycles {t0} .. {t1}  (one column ~ {scale:.0f} cycles)"]
    for device in devices:
        row = [" "] * width
        for span in spans:
            if span.device != device:
                continue
            lo = int((span.start - t0) / scale)
            hi = max(lo + 1, int((span.end - t0) / scale))
            for col in range(lo, min(hi, width)):
                row[col] = "#" if row[col] == " " else "#"
        lines.append(f"{device:<{label_width}}|{''.join(row)}|")
    util = utilization_by_device(soc, window=(t0, t1))
    lines.append("utilization: " + "  ".join(
        f"{device}={util.get(device, 0):.0%}" for device in devices))
    return "\n".join(lines)
