"""The paper's case-study applications and SoC instances (Fig. 6).

Two SoCs:

- **SoC-1** hosts four Night-Vision tiles, four Classifier tiles and
  one Denoiser tile (plus CPU, memory, auxiliary), and runs three
  application configurations: 1NV+1Cl, 4NV+1Cl, 4NV+4Cl, and 1De+1Cl.
- **SoC-2** hosts the five partitions of the multi-tile Classifier and
  runs the 1Cl-split chain.

Every configuration of Fig. 7 maps to a (SoC builder, dataflow
builder) pair provided here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..accelerators import (
    classifier_spec,
    denoiser_spec,
    night_vision_spec,
    partition_classifier,
)
from ..datasets import add_gaussian_noise, darken, flatten_frames, generate
from ..nn import Sequential
from ..runtime import Dataflow, EspRuntime, chain, replicated_stage
from ..soc import SoCConfig, SoCInstance, build_soc

N_NV_TILES = 4
N_CL_TILES = 4


def build_soc1(classifier_model: Optional[Sequential] = None,
               denoiser_model: Optional[Sequential] = None,
               reuse_factor: int = 1024,
               clock_mhz: float = 78.0) -> SoCInstance:
    """SoC-1: 4x3 mesh, 4 NV + 4 Cl + 1 De accelerator tiles."""
    config = SoCConfig(cols=4, rows=3, name="esp4ml-soc1",
                       clock_mhz=clock_mhz)
    config.add_cpu((0, 0))
    config.add_memory((1, 0))
    config.add_aux((2, 0))
    nv = night_vision_spec()
    cl = classifier_spec(classifier_model, reuse_factor=reuse_factor,
                         clock_mhz=clock_mhz)
    de = denoiser_spec(denoiser_model, clock_mhz=clock_mhz)
    for index in range(N_NV_TILES):
        config.add_accelerator(config.next_free(), f"nv{index}", nv)
    for index in range(N_CL_TILES):
        config.add_accelerator(config.next_free(), f"cl{index}", cl)
    config.add_accelerator(config.next_free(), "de0", de)
    return build_soc(config)


def build_soc2(classifier_model: Optional[Sequential] = None,
               reuse_factor: int = 2048,
               clock_mhz: float = 78.0) -> SoCInstance:
    """SoC-2: 3x3 mesh, the 5-way partitioned classifier."""
    config = SoCConfig(cols=3, rows=3, name="esp4ml-soc2",
                       clock_mhz=clock_mhz)
    config.add_cpu((0, 0))
    config.add_memory((1, 0))
    config.add_aux((2, 0))
    for index, spec in enumerate(partition_classifier(
            model=classifier_model, reuse_factor=reuse_factor,
            clock_mhz=clock_mhz)):
        config.add_accelerator(config.next_free(), f"part{index}", spec)
    return build_soc(config)


# ---------------------------------------------------------------------------
# Dataflows (the pipelines of Fig. 6 / the bar clusters of Fig. 7)
# ---------------------------------------------------------------------------

def dataflow_nv_cl(n_nv: int = 1, n_cl: int = 1) -> Dataflow:
    """Night-Vision stage(s) feeding Classifier stage(s)."""
    if not (1 <= n_nv <= N_NV_TILES and 1 <= n_cl <= N_CL_TILES):
        raise ValueError(f"SoC-1 hosts up to {N_NV_TILES} NV and "
                         f"{N_CL_TILES} Cl tiles")
    producers = [f"nv{i}" for i in range(n_nv)]
    consumers = [f"cl{i}" for i in range(n_cl)]
    return replicated_stage(f"{n_nv}nv_{n_cl}cl", producers, consumers)


def dataflow_de_cl() -> Dataflow:
    """Denoiser feeding one Classifier."""
    return replicated_stage("1de_1cl", ["de0"], ["cl0"])


def dataflow_multitile() -> Dataflow:
    """The 5-stage partitioned classifier chain."""
    return chain("1cl_split", [f"part{i}" for i in range(5)])


# ---------------------------------------------------------------------------
# Input generators per application
# ---------------------------------------------------------------------------

def nv_cl_inputs(n_frames: int, seed: int = 0,
                 darken_factor: float = 0.25
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Darkened SVHN frames (+ labels) for the Night-Vision pipeline."""
    frames, labels = generate(n_frames, seed=seed)
    return flatten_frames(darken(frames, factor=darken_factor)), labels


def de_cl_inputs(n_frames: int, seed: int = 0,
                 noise_stddev: float = 0.15
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Noisy SVHN frames (+ labels) for the Denoiser pipeline."""
    frames, labels = generate(n_frames, seed=seed)
    noisy = add_gaussian_noise(flatten_frames(frames), stddev=noise_stddev,
                               seed=seed + 1)
    return noisy, labels


def classifier_inputs(n_frames: int, seed: int = 0
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Clean SVHN frames (+ labels) for the classifier chains."""
    frames, labels = generate(n_frames, seed=seed)
    return flatten_frames(frames), labels


# ---------------------------------------------------------------------------
# The named configurations of the evaluation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AppConfig:
    """One evaluated configuration: SoC + dataflow + inputs + kernels."""

    key: str                   # e.g. "4nv_4cl"
    soc_key: str               # "soc1" | "soc2"
    build_dataflow: Callable[[], Dataflow]
    make_inputs: Callable[[int], Tuple[np.ndarray, np.ndarray]]
    software_kernels: Tuple[str, ...]   # baseline composition
    cluster: str               # Fig. 7 cluster this config belongs to


APP_CONFIGS: Dict[str, AppConfig] = {
    "1nv_1cl": AppConfig(
        key="1nv_1cl", soc_key="soc1",
        build_dataflow=lambda: dataflow_nv_cl(1, 1),
        make_inputs=nv_cl_inputs,
        software_kernels=("night_vision", "classifier"),
        cluster="nv_cl"),
    "4nv_1cl": AppConfig(
        key="4nv_1cl", soc_key="soc1",
        build_dataflow=lambda: dataflow_nv_cl(4, 1),
        make_inputs=nv_cl_inputs,
        software_kernels=("night_vision", "classifier"),
        cluster="nv_cl"),
    "4nv_4cl": AppConfig(
        key="4nv_4cl", soc_key="soc1",
        build_dataflow=lambda: dataflow_nv_cl(4, 4),
        make_inputs=nv_cl_inputs,
        software_kernels=("night_vision", "classifier"),
        cluster="nv_cl"),
    "1de_1cl": AppConfig(
        key="1de_1cl", soc_key="soc1",
        build_dataflow=dataflow_de_cl,
        make_inputs=de_cl_inputs,
        software_kernels=("denoiser", "classifier"),
        cluster="de_cl"),
    "1cl_split": AppConfig(
        key="1cl_split", soc_key="soc2",
        build_dataflow=dataflow_multitile,
        make_inputs=classifier_inputs,
        software_kernels=("classifier",),
        cluster="multitile"),
}

#: The "best-case configuration" per Table I column.
BEST_CASE = {"nv_cl": "4nv_4cl", "de_cl": "1de_1cl",
             "multitile": "1cl_split"}


def build_soc_for(config: AppConfig, **kwargs) -> SoCInstance:
    if config.soc_key == "soc1":
        return build_soc1(**kwargs)
    return build_soc2(**{k: v for k, v in kwargs.items()
                         if k != "denoiser_model"})


def fresh_runtime(config: AppConfig, **kwargs) -> EspRuntime:
    """A new SoC + booted runtime for one measurement run."""
    return EspRuntime(build_soc_for(config, **kwargs))
