"""The standard fleet campaign: SoC-1 replicas under open-loop load.

Shared by ``benchmarks/bench_fleet.py``, ``python -m repro fleet`` and
the fleet tests: a homogeneous cluster of SoC-1 instances, each
serving the three concurrent applications of the serving benchmark
(Night-Vision ``nv0 -> cl0`` in p2p mode, a standalone classifier, the
denoiser), driven into overload by a seeded Poisson + diurnal + bursty
arrival trace with a deliberately *skewed* tenant mix — the hot-tenant
skew plus heterogeneous request sizes are what separate load-aware
balancing from blind rotation.

The campaign runs the same arrival trace (same seed, byte-identical
frame payloads) once per load-balancing policy and reports fleet-wide
p50/p99 latency, goodput and the rejection breakdown per policy.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..fleet import (
    Fleet,
    FleetReport,
    TenantLoad,
    WorkloadSpec,
    build_fleet,
    generate_arrivals,
)
from ..runtime import chain
from ..serve import ServerConfig, TenantConfig
from .apps import (
    build_soc1,
    classifier_inputs,
    dataflow_nv_cl,
    de_cl_inputs,
    nv_cl_inputs,
)

#: Policies the campaign grades, in report order.
CAMPAIGN_POLICIES = ("round-robin", "least-loaded", "latency-aware")

#: Bounded per-instance queue: small enough that sustained overload
#: turns into explicit queue-full rejections (the backpressure the
#: benchmark measures) instead of unbounded queueing.
FLEET_QUEUE_DEPTH = 8


def standard_tenants() -> List[TenantConfig]:
    """The three concurrent applications, freshly configured.

    Called once per instance: each server owns its own
    :class:`TenantConfig`/dataflow objects.
    """
    return [
        TenantConfig(name="night-vision", dataflow=dataflow_nv_cl(1, 1),
                     mode="p2p"),
        TenantConfig(name="classifier",
                     dataflow=chain("1cl-fleet", ["cl1"]), mode="pipe"),
        TenantConfig(name="denoiser",
                     dataflow=chain("1de-fleet", ["de0"]), mode="pipe"),
    ]


def standard_inputs(n_frames: int = 64, seed: int = 0
                    ) -> Dict[str, np.ndarray]:
    """Per-tenant input pools the coordinator slices arrivals from."""
    return {
        "night-vision": nv_cl_inputs(n_frames, seed=seed)[0],
        "classifier": classifier_inputs(n_frames, seed=seed + 1)[0],
        "denoiser": de_cl_inputs(n_frames, seed=seed + 2)[0],
    }


def overload_workload(seed: int = 0, smoke: bool = False,
                      skewed: bool = True) -> WorkloadSpec:
    """An arrival trace that outruns the fleet's service capacity.

    The skewed mix concentrates most traffic on the classifier tenant
    with variable request sizes; diurnal + burst envelopes push the
    instantaneous rate well past the sustained one, so queues fill,
    the bounded depth rejects, and tail latency separates the
    policies.
    """
    if skewed:
        tenants = (
            TenantLoad("classifier", weight=6.0, frames_min=1,
                       frames_max=8),
            TenantLoad("night-vision", weight=2.0, frames_min=1,
                       frames_max=4),
            TenantLoad("denoiser", weight=1.0, frames_min=1,
                       frames_max=2),
        )
    else:
        tenants = (
            TenantLoad("classifier", frames_min=1, frames_max=2),
            TenantLoad("night-vision", frames_min=1, frames_max=2),
            TenantLoad("denoiser", frames_min=1, frames_max=2),
        )
    horizon = 60_000 if smoke else 160_000
    return WorkloadSpec(
        tenants=tenants,
        horizon_cycles=horizon,
        # Tuned so the 4-instance fleet is overloaded (roughly
        # two-thirds of requests rejected at the bounded queue depth)
        # but not pegged: at much higher rates every queue saturates
        # and the policies converge; this regime is where balancing
        # decisions still have room to matter.
        mean_interarrival_cycles=900.0 if smoke else 1_300.0,
        diurnal_period_cycles=horizon,
        diurnal_amplitude=0.5,
        burst_every_cycles=horizon / 4.0,
        burst_duration_cycles=horizon // 10,
        burst_multiplier=3.0,
        seed=seed,
    )


def build_standard_fleet(n_instances: int = 4,
                         policy: str = "round-robin",
                         replicas: Optional[int] = None,
                         salt: int = 0,
                         metrics: bool = False,
                         tracing: bool = False,
                         trace_capacity: Optional[int] = None) -> Fleet:
    """A homogeneous SoC-1 fleet serving the standard three tenants.

    ``replicas`` defaults to ``min(3, n_instances)``: tenants shard to
    a strict subset of a larger fleet, so shards overlap unevenly —
    the consistent-placement affinity that gives round-robin its blind
    spots and load-aware policies their edge. ``tracing=True``
    attaches one namespaced tracer per instance (bounded to
    ``trace_capacity`` records when given), ready for
    :func:`repro.trace.merge_chrome_traces`.
    """
    if replicas is None:
        replicas = min(3, n_instances)
    return build_fleet(
        n_instances, build_soc1, standard_tenants,
        policy=policy, replicas=replicas, salt=salt,
        server_config=ServerConfig(max_queue_depth=FLEET_QUEUE_DEPTH),
        metrics=metrics, tracing=tracing, trace_capacity=trace_capacity)


def run_fleet_campaign(policies: Sequence[str] = CAMPAIGN_POLICIES,
                       n_instances: int = 4,
                       seed: int = 0,
                       smoke: bool = False,
                       metrics: bool = False
                       ) -> Dict[str, FleetReport]:
    """One fleet run per policy, identical workload across policies."""
    spec = overload_workload(seed=seed, smoke=smoke)
    arrivals = generate_arrivals(spec)
    reports: Dict[str, FleetReport] = {}
    for policy in policies:
        fleet = build_standard_fleet(n_instances, policy=policy,
                                     salt=seed, metrics=metrics)
        reports[policy] = fleet.run(arrivals,
                                    standard_inputs(seed=seed))
    return reports


def run_traced_fleet_scenario(out_dir: Optional[str] = None,
                              n_instances: int = 2,
                              n_arrivals: int = 24,
                              seed: int = 0,
                              trace_capacity: Optional[int] = 512
                              ) -> Dict[str, Any]:
    """The deterministic traced mini-fleet, end to end.

    One scenario shared by ``python -m repro trace-query``,
    ``benchmarks/bench_trace.py`` and the tests: a 2-instance SoC-1
    fleet with per-instance flight-recorder tracers, driven over the
    first ``n_arrivals`` arrivals of the standard overload trace,
    merged into a single fleet-wide Chrome trace whose
    ``fleet.route`` instants carry the router-minted trace IDs.

    When ``out_dir`` is given, the scenario also arms a
    :class:`~repro.trace.FlightRecorder` on instance ``i0``'s metrics
    registry with a rule that is *forced* to breach, evaluates once,
    and so deterministically produces one postmortem artifact under
    ``out_dir`` — the alert-triggered dump path exercised without
    having to wait for a real SLO violation.

    Returns a dict with ``fleet``, ``report``, ``trace`` (merged,
    validated upstream by callers), ``trace_ids`` (router-minted
    ``f-N`` IDs in arrival order), and — with ``out_dir`` —
    ``recorder`` and ``postmortem`` (the artifact path).
    """
    from ..metrics import HealthMonitor, SloRule
    from ..trace import FlightRecorder, merge_chrome_traces, trace_ids_in

    fleet = build_standard_fleet(
        n_instances, policy="least-loaded", salt=seed,
        metrics=True, tracing=True, trace_capacity=trace_capacity)
    spec = overload_workload(seed=seed, smoke=True)
    arrivals = sorted(generate_arrivals(spec),
                      key=lambda a: a.at)[:n_arrivals]
    report = fleet.run(arrivals, standard_inputs(seed=seed))
    clock_mhz = fleet.instances[0].soc.clock_mhz
    trace = merge_chrome_traces(fleet.tracers(), clock_mhz=clock_mhz,
                                decisions=report.decisions)
    result: Dict[str, Any] = {
        "fleet": fleet,
        "report": report,
        "trace": trace,
        "trace_ids": trace_ids_in(trace),
        "clock_mhz": clock_mhz,
    }
    if out_dir is not None:
        instance = fleet.instances[0]
        monitor = HealthMonitor(instance.metrics, [SloRule(
            name="forced-postmortem",
            check=lambda reg, now: "forced by the traced fleet "
                                   "scenario (deterministic dump)",
            severity="critical",
            description="always breaches; exists to exercise the "
                        "alert-triggered postmortem path")])
        recorder = FlightRecorder(
            out_dir, fleet.tracers(), clock_mhz=clock_mhz).arm(monitor)
        monitor.evaluate()
        result["recorder"] = recorder
        result["postmortem"] = recorder.dumps[0]
    return result
