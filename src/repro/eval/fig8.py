"""Fig. 8 reproduction: DRAM accesses with and without p2p.

The figure shows the relative number of DRAM accesses for the three
applications with p2p on vs off (pipelined execution in both cases).
"The energy savings due to a reduced access to memory are the main
benefit of the point-to-point communication among accelerators"; the
reduction "varies between 2x and 3x for the target applications".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .harness import DEFAULT_FRAMES, format_table, measure

#: The three applications of the figure (best-case configurations).
FIG8_CONFIGS = ("4nv_4cl", "1de_1cl", "1cl_split")


@dataclass
class Fig8Bar:
    app_key: str
    dram_no_p2p: int
    dram_p2p: int

    @property
    def relative(self) -> float:
        """p2p accesses as a fraction of no-p2p (the plotted bar)."""
        return self.dram_p2p / self.dram_no_p2p

    @property
    def reduction(self) -> float:
        """The 2x-3x reduction factor the paper quotes."""
        return self.dram_no_p2p / self.dram_p2p


def generate_fig8(n_frames: int = DEFAULT_FRAMES,
                  seed: int = 0) -> List[Fig8Bar]:
    """Count DRAM words moved in pipe (no-p2p) vs p2p execution."""
    bars = []
    for app_key in FIG8_CONFIGS:
        no_p2p = measure(app_key, "pipe", n_frames=n_frames, seed=seed)
        with_p2p = measure(app_key, "p2p", n_frames=n_frames, seed=seed)
        bars.append(Fig8Bar(app_key=app_key,
                            dram_no_p2p=no_p2p.dram_accesses,
                            dram_p2p=with_p2p.dram_accesses))
    return bars


def render_fig8(bars: List[Fig8Bar]) -> str:
    headers = ["application", "no-p2p words", "p2p words",
               "relative", "reduction"]
    rows = [[bar.app_key, f"{bar.dram_no_p2p:,}", f"{bar.dram_p2p:,}",
             f"{bar.relative:.0%}", f"{bar.reduction:.2f}x"]
            for bar in bars]
    table = format_table(rows, headers)
    return table + "\n\npaper: reduction varies between 2x and 3x"
