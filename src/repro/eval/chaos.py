"""Chaos campaign: fault injection against the *live serving stack*.

:mod:`repro.eval.faults` asks "does one pipeline survive one
transient?". This campaign asks the operational question behind the
self-healing control plane: when a fault strikes a multi-tenant
serving SoC under open-loop traffic, how long until the stack
*detects* it (time-to-detect, from the health monitor's alerts) and
how long until the victim tenant is back inside its latency SLO
(time-to-recover, from the completion stream) — and does closing the
loop (:class:`~repro.control.ControlPlane`) beat leaving the runtime's
local watchdog/retry/fallback machinery on its own?

Each scenario injects one fault class into a fresh SoC-1 serving
three tenants (the ``bench_serve`` topology: night-vision on
``nv0 -> cl0`` over p2p, a classifier on ``cl1``, the denoiser on
``de0``), runs the same seeded open-loop trace with the controller on
and off, and grades both arms:

- **TTD**: first alert fired at/after the injection cycle.
- **TTR**: start of the trailing run of in-SLO completions of the
  victim tenant (per-frame service time within ``SERVICE_MARGIN`` x
  the fault-free ceiling), requiring the monitor to end the run with
  no firing alerts.
- **recovered**: a TTR exists and is within the fault class's
  declared recovery SLO.

The controller-off arm still has the full local recovery policy
(watchdog, bounded retry, software fallback) — the comparison
isolates the *control plane's* contribution, not recovery in general.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..control import ControlConfig, ControlPlane
from ..faults import FaultInjector, FaultPlan, FaultSpec, RecoveryPolicy
from ..metrics import (
    HealthMonitor,
    MetricsSampler,
    default_rules,
    instrument_server,
    latency_burn_rule,
)
from ..runtime import Dataflow, EspRuntime, chain
from ..serve import InferenceServer, ServerConfig, TenantConfig, TracedRequest
from .apps import (
    build_soc1,
    classifier_inputs,
    dataflow_nv_cl,
    de_cl_inputs,
    nv_cl_inputs,
)

#: Sampler tick driving monitor evaluation (and thus control passes).
SAMPLE_INTERVAL = 2_500

#: Open-loop arrival period per tenant (cycles between requests).
ARRIVAL_PERIOD = 24_000

#: Per-frame service-time acceptance margin over the fault-free
#: ceiling (recovered hardware serves well under it; the 40x software
#: fallback never does).
SERVICE_MARGIN = 2.0

#: Reserve pool held for the controller: spare NV and Cl tiles that
#: no tenant maps to. (``de0`` has no spare on SoC-1 — a denoiser
#: fault can only be force-degraded, which is why the campaign's
#: reshard scenarios strike nv/cl tiles.)
RESERVE_POOL = ("cl2", "cl3", "nv1", "nv2")

#: The serving-side recovery policy. The watchdog must outlast the
#: longest legitimate p2p streaming invocation (a post-recovery drain
#: batch of up to 16 frames x 8273 cycles), hence the generous bound;
#: the backoff cap keeps the worst retry ladder to 2x that.
CHAOS_POLICY = RecoveryPolicy(watchdog_cycles=200_000, max_retries=1,
                              backoff_factor=2.0,
                              max_watchdog_cycles=400_000,
                              software_fallback=True)


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChaosScenario:
    """One fault class injected into the serving stack."""

    name: str
    fault_class: str            # FAULT_KINDS entry being exercised
    target_tenant: str          # whose SLO the fault attacks
    inject_cycle: int
    #: Declared recovery SLO for this fault class (cycles from
    #: injection to the start of the trailing in-SLO run).
    recovery_slo_cycles: int
    specs: Tuple[FaultSpec, ...] = ()

    def describe(self) -> str:
        return (f"{self.name}: {self.fault_class} vs "
                f"{self.target_tenant} at cycle "
                f"{self.inject_cycle:,} (recovery SLO "
                f"{self.recovery_slo_cycles:,})")


#: Declared recovery SLO per fault class: injection to the start of
#: the trailing in-SLO run. Pipe-mode tenants recover within one
#: forced-degraded batch (~180k software) plus the reshard; a wedged
#: p2p *stream* additionally pays one whole-batch software re-run
#: (~560k at the 40x slowdown) before the reshard can land, hence the
#: larger bound for the stream-striking classes.
DEFAULT_RECOVERY_SLOS = {
    "acc_hang": 400_000,
    "acc_crash": 400_000,
    "acc_slow": 400_000,
    "dma_stall": 750_000,
    "link_drop": 750_000,
}


def chaos_scenarios(inject_cycle: int = 150_000,
                    recovery_slos: Optional[Dict[str, int]] = None,
                    smoke: bool = False) -> List[ChaosScenario]:
    """The campaign's fault classes (a fast subset in smoke mode).

    Persistent faults (``count=None``) model a genuinely broken tile —
    the case only a reshard truly heals; the transient NoC drop
    (``count=1``) models a one-off delivery loss that nonetheless
    wedges a p2p stream.
    """
    slos = dict(DEFAULT_RECOVERY_SLOS)
    slos.update(recovery_slos or {})

    def scenario(name, fault_class, tenant, *specs):
        return ChaosScenario(
            name=name, fault_class=fault_class, target_tenant=tenant,
            inject_cycle=inject_cycle,
            recovery_slo_cycles=slos[fault_class],
            specs=tuple(specs))

    scenarios = [
        scenario("hang-cl1", "acc_hang", "classifier",
                 FaultSpec(kind="acc_hang", target="cl1",
                           at_cycle=inject_cycle, count=None)),
        scenario("crash-cl1", "acc_crash", "classifier",
                 FaultSpec(kind="acc_crash", target="cl1",
                           at_cycle=inject_cycle, count=None)),
    ]
    if not smoke:
        scenarios += [
            scenario("slow-cl1", "acc_slow", "classifier",
                     FaultSpec(kind="acc_slow", target="cl1",
                               at_cycle=inject_cycle, count=None,
                               factor=10.0)),
            scenario("stall-nv0-dma", "dma_stall", "night-vision",
                     FaultSpec(kind="dma_stall", target="nv0",
                               at_cycle=inject_cycle, count=None,
                               duration=None)),
            scenario("drop-p2p-req", "link_drop", "night-vision",
                     FaultSpec(kind="link_drop", at_cycle=inject_cycle,
                               count=1, message_kind="P2P_REQ")),
        ]
    return scenarios


# ---------------------------------------------------------------------------
# The serving stack under test
# ---------------------------------------------------------------------------

def chaos_tenants() -> Dict[str, TenantConfig]:
    """The three concurrent applications (bench_serve topology)."""
    return {
        "night-vision": TenantConfig(
            name="night-vision", dataflow=dataflow_nv_cl(1, 1),
            mode="p2p", max_batch_frames=4),
        "classifier": TenantConfig(
            name="classifier", dataflow=chain("1cl-chaos", ["cl1"]),
            mode="pipe", max_batch_frames=8),
        "denoiser": TenantConfig(
            name="denoiser", dataflow=chain("1de-chaos", ["de0"]),
            mode="pipe", max_batch_frames=4),
    }


def chaos_trace(horizon_cycles: int,
                period: int = ARRIVAL_PERIOD,
                seed: int = 0) -> List[TracedRequest]:
    """Open-loop traffic: every tenant submits one frame per period,
    phase-staggered so arrivals do not synchronize."""
    makers = {
        "night-vision": lambda n: nv_cl_inputs(n, seed=seed)[0],
        "classifier": lambda n: classifier_inputs(n, seed=seed + 1)[0],
        "denoiser": lambda n: de_cl_inputs(n, seed=seed + 2)[0],
    }
    trace: List[TracedRequest] = []
    for index, (tenant, make) in enumerate(sorted(makers.items())):
        offset = index * (period // len(makers))
        arrivals = list(range(offset, horizon_cycles, period))
        frames = make(len(arrivals))
        for slot, at in enumerate(arrivals):
            trace.append(TracedRequest(at, tenant,
                                       frames[slot:slot + 1]))
    return trace


@dataclass
class ChaosStack:
    """One freshly built serving stack plus its observability."""

    runtime: EspRuntime
    server: InferenceServer
    monitor: HealthMonitor
    sampler: MetricsSampler
    controller: Optional[ControlPlane]
    injector: Optional[FaultInjector]


def build_chaos_stack(controller_on: bool,
                      plan: Optional[FaultPlan] = None,
                      service_targets: Optional[Dict[str, int]] = None
                      ) -> ChaosStack:
    """SoC-1 + three tenants + monitor (+ controller, + fault plan).

    Both arms run the identical local recovery policy; only the
    controller (and the probation it relies on) differs.
    """
    soc = build_soc1()
    runtime = EspRuntime(soc, recovery=CHAOS_POLICY)
    config = ServerConfig(
        max_queue_depth=24,
        probation_cycles=60_000 if controller_on else None)
    server = InferenceServer(runtime, config)
    for tenant in chaos_tenants().values():
        server.register(tenant)
    registry = instrument_server(server)
    rules = default_rules(server)
    for tenant, target in sorted((service_targets or {}).items()):
        # Request-latency burn over ~3 arrival periods of headroom:
        # drained backlogs count against recovery until fresh
        # requests complete fast again.
        rules.append(latency_burn_rule(tenant, target))
    monitor = HealthMonitor(registry, rules)
    controller = None
    if controller_on:
        controller = ControlPlane(server, monitor, ControlConfig(
            reserve_pool=RESERVE_POOL,
            cooldown_cycles=30_000,
            window_cycles=300_000,
            max_actions_per_window=12,
            stall_escalation_evals=3,
            widen_cap=16,
        )).attach()
    injector = None
    if plan is not None:
        injector = FaultInjector(plan).attach(soc)
    sampler = MetricsSampler(
        registry, interval=SAMPLE_INTERVAL,
        callbacks=[lambda _registry: monitor.evaluate()]).start()
    return ChaosStack(runtime=runtime, server=server, monitor=monitor,
                      sampler=sampler, controller=controller,
                      injector=injector)


# ---------------------------------------------------------------------------
# Calibration: fault-free service ceilings
# ---------------------------------------------------------------------------

def calibrate_service(horizon_cycles: int, seed: int = 0
                      ) -> Dict[str, Dict[str, int]]:
    """Fault-free per-tenant ceilings from a golden run.

    Returns ``{"service": per-frame service ceiling, "latency":
    request-latency ceiling}`` per tenant, both with
    ``SERVICE_MARGIN`` headroom. The campaign grades recovery against
    the service ceiling and arms the latency-burn rules with the
    latency ceiling.
    """
    stack = build_chaos_stack(controller_on=False)
    report = stack.server.run_trace(chaos_trace(horizon_cycles,
                                                seed=seed))
    service: Dict[str, int] = {}
    latency: Dict[str, int] = {}
    for completion in report.completions:
        per_frame = ((completion.completed_at - completion.started_at)
                     // max(1, completion.batch_frames))
        service[completion.tenant] = max(
            service.get(completion.tenant, 0), per_frame)
        latency[completion.tenant] = max(
            latency.get(completion.tenant, 0),
            completion.latency_cycles)
    if stack.monitor.history:
        raise RuntimeError(
            f"golden calibration run raised alerts: "
            f"{stack.monitor.history}")
    return {
        "service": {t: int(v * SERVICE_MARGIN)
                    for t, v in sorted(service.items())},
        "latency": {t: int(v * SERVICE_MARGIN)
                    for t, v in sorted(latency.items())},
    }


# ---------------------------------------------------------------------------
# Scenario execution and grading
# ---------------------------------------------------------------------------

@dataclass
class ScenarioResult:
    """One (scenario, arm) run, graded."""

    scenario: str
    fault_class: str
    target_tenant: str
    controller: str                  # "on" | "off"
    inject_cycle: int
    recovery_slo_cycles: int
    faults_fired: int
    ttd_cycles: Optional[int]
    ttr_cycles: Optional[int]
    recovered: bool
    end_status: str                  # monitor.status() at trace end
    alerts: int                      # incidents over the run
    completions: int
    rejections: int
    failures: int
    degraded_completions: int
    reshards: int
    actions: List[str] = field(default_factory=list)
    actions_applied: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


def _time_to_detect(monitor: HealthMonitor,
                    inject_cycle: int) -> Optional[int]:
    fired = [alert.fired_at for alert in monitor.history
             if alert.fired_at >= inject_cycle]
    return (min(fired) - inject_cycle) if fired else None


def _time_to_recover(completions, tenant: str, inject_cycle: int,
                     per_frame_target: int,
                     min_good: int = 2) -> Optional[int]:
    """Start of the trailing all-in-SLO run of the victim tenant.

    Scans the tenant's post-injection completions newest-first for
    the earliest point after which *every* completion meets the
    per-frame service target (at least ``min_good`` of them).
    """
    post = sorted((c for c in completions
                   if c.tenant == tenant
                   and c.completed_at >= inject_cycle),
                  key=lambda c: c.completed_at)
    start: Optional[int] = None
    good = 0
    for completion in reversed(post):
        per_frame = ((completion.completed_at - completion.started_at)
                     // max(1, completion.batch_frames))
        if per_frame > per_frame_target:
            break
        good += 1
        start = completion.completed_at
    if start is None or good < min_good:
        return None
    return start - inject_cycle


def run_scenario(scenario: ChaosScenario, controller_on: bool,
                 horizon_cycles: int,
                 calibration: Dict[str, Dict[str, int]],
                 seed: int = 0) -> ScenarioResult:
    """One arm of one scenario on a fresh SoC."""
    plan = FaultPlan(faults=[FaultSpec(**{  # fresh specs: plans mutate
        k: v for k, v in spec.__dict__.items() if k != "fired"})
        for spec in scenario.specs], seed=seed)
    stack = build_chaos_stack(
        controller_on, plan=plan,
        service_targets=calibration["latency"])
    report = stack.server.run_trace(chaos_trace(horizon_cycles,
                                                seed=seed))
    monitor = stack.monitor
    target = calibration["service"][scenario.target_tenant]
    ttd = _time_to_detect(monitor, scenario.inject_cycle)
    ttr = _time_to_recover(report.completions, scenario.target_tenant,
                           scenario.inject_cycle, target)
    end_status = monitor.status()
    recovered = (ttr is not None
                 and ttr <= scenario.recovery_slo_cycles
                 and end_status == "healthy")
    controller = stack.controller
    reshards = sum(stack.server._tenants[t].reshards
                   for t in stack.server.tenants)
    return ScenarioResult(
        scenario=scenario.name,
        fault_class=scenario.fault_class,
        target_tenant=scenario.target_tenant,
        controller="on" if controller_on else "off",
        inject_cycle=scenario.inject_cycle,
        recovery_slo_cycles=scenario.recovery_slo_cycles,
        faults_fired=plan.fired,
        ttd_cycles=ttd,
        ttr_cycles=ttr,
        recovered=recovered,
        end_status=end_status,
        alerts=len(monitor.history),
        completions=len(report.completions),
        rejections=len(report.rejections),
        failures=len(report.failures),
        degraded_completions=sum(
            1 for c in report.completions if c.degraded),
        reshards=reshards,
        actions=[a.describe() for a in controller.actions]
        if controller else [],
        actions_applied=len(controller.applied_actions())
        if controller else 0,
    )


@dataclass
class ChaosReport:
    """The whole campaign: per-scenario arms plus the verdict."""

    horizon_cycles: int
    calibration: Dict[str, Dict[str, int]]
    results: List[ScenarioResult]

    def arm(self, controller: str) -> List[ScenarioResult]:
        return [r for r in self.results if r.controller == controller]

    def mttr_by_class(self, controller: str
                      ) -> Dict[str, Optional[int]]:
        return {r.fault_class: r.ttr_cycles
                for r in self.arm(controller)}

    def recovered_count(self, controller: str) -> int:
        return sum(1 for r in self.arm(controller) if r.recovered)

    @property
    def controller_strictly_better(self) -> bool:
        """Controller-on recovers everything; controller-off does not."""
        on, off = self.arm("on"), self.arm("off")
        return (len(on) > 0
                and self.recovered_count("on") == len(on)
                and self.recovered_count("off") < len(off))

    def render(self) -> str:
        lines = [f"== chaos campaign: {len(self.arm('on'))} scenarios "
                 f"x (controller on|off), horizon "
                 f"{self.horizon_cycles:,} cycles =="]
        header = (f"{'scenario':<16}{'arm':<5}{'TTD':>9}{'TTR':>10}"
                  f"{'recovered':>11}{'alerts':>8}{'actions':>9}"
                  f"{'end':>10}")
        lines.append(header)
        for result in self.results:
            ttd = "-" if result.ttd_cycles is None \
                else f"{result.ttd_cycles:,}"
            ttr = "-" if result.ttr_cycles is None \
                else f"{result.ttr_cycles:,}"
            lines.append(
                f"{result.scenario:<16}{result.controller:<5}"
                f"{ttd:>9}{ttr:>10}"
                f"{str(result.recovered):>11}{result.alerts:>8}"
                f"{result.actions_applied:>9}{result.end_status:>10}")
        lines.append(
            f"recovered: on {self.recovered_count('on')}/"
            f"{len(self.arm('on'))}, off {self.recovered_count('off')}/"
            f"{len(self.arm('off'))}; controller strictly better: "
            f"{self.controller_strictly_better}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "horizon_cycles": self.horizon_cycles,
            "calibration": self.calibration,
            "results": [r.to_dict() for r in self.results],
            "recovered_on": self.recovered_count("on"),
            "recovered_off": self.recovered_count("off"),
            "mttr_on": self.mttr_by_class("on"),
            "mttr_off": self.mttr_by_class("off"),
            "controller_strictly_better":
                self.controller_strictly_better,
        }


def run_chaos_campaign(smoke: bool = False, seed: int = 0,
                       horizon_cycles: Optional[int] = None,
                       scenarios: Optional[Sequence[ChaosScenario]]
                       = None) -> ChaosReport:
    """The full campaign: calibrate, then each scenario on/off."""
    if horizon_cycles is None:
        horizon_cycles = 500_000 if smoke else 1_200_000
    if scenarios is None:
        inject = 80_000 if smoke else 150_000
        scenarios = chaos_scenarios(inject_cycle=inject, smoke=smoke)
    calibration = calibrate_service(horizon_cycles, seed=seed)
    results: List[ScenarioResult] = []
    for scenario in scenarios:
        for controller_on in (True, False):
            results.append(run_scenario(
                scenario, controller_on, horizon_cycles,
                calibration, seed=seed))
    return ChaosReport(horizon_cycles=horizon_cycles,
                       calibration=calibration, results=results)
