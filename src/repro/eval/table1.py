"""Table I reproduction: resources, power and frames/s per platform.

Paper Table I ("summary of results using the best-case configuration")
reports, for the three applications:

- FPGA utilization (LUT/FF/BRAM %) and dynamic power of the hosting SoC,
- frames/s on the ESP4ML SoC, an Intel i7-8700K and a Jetson TX1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..hls import XCVU9P
from ..platforms import (
    INTEL_I7_8700K,
    JETSON_TX1,
    PAPER_FPS,
    PAPER_SOC_POWER_W,
    PAPER_UTILIZATION,
    soc_power_watts,
)
from .apps import APP_CONFIGS, BEST_CASE, build_soc1, build_soc2
from .harness import DEFAULT_FRAMES, format_table, measure


@dataclass
class Table1Column:
    """One application column of Table I, measured and paper values."""

    cluster: str              # nv_cl | de_cl | multitile
    app_key: str              # best-case configuration key
    luts: float
    ffs: float
    brams: float
    power_watts: float
    fps_esp4ml: float
    fps_i7: float
    fps_jetson: float
    paper_fps_esp4ml: float
    paper_fps_i7: float
    paper_fps_jetson: float
    paper_power_watts: float


def generate_table1(n_frames: int = DEFAULT_FRAMES,
                    seed: int = 0) -> Dict[str, Table1Column]:
    """Measure every Table I cell on the simulated platforms."""
    socs = {"soc1": build_soc1(), "soc2": build_soc2()}
    columns: Dict[str, Table1Column] = {}
    for cluster, app_key in BEST_CASE.items():
        config = APP_CONFIGS[app_key]
        soc = socs[config.soc_key]
        util = XCVU9P.utilization(soc.resources())
        hw = measure(app_key, mode="p2p", n_frames=n_frames, seed=seed)
        kernels = config.software_kernels
        columns[cluster] = Table1Column(
            cluster=cluster,
            app_key=app_key,
            luts=util["luts"],
            ffs=util["ffs"],
            brams=util["brams"],
            power_watts=soc_power_watts(soc),
            fps_esp4ml=hw.fps,
            fps_i7=INTEL_I7_8700K.app_fps(kernels),
            fps_jetson=JETSON_TX1.app_fps(kernels),
            paper_fps_esp4ml=PAPER_FPS["esp4ml"][cluster],
            paper_fps_i7=PAPER_FPS["i7"][cluster],
            paper_fps_jetson=PAPER_FPS["jetson"][cluster],
            paper_power_watts=PAPER_SOC_POWER_W[
                "soc1" if config.soc_key == "soc1" else "soc2"],
        )
    return columns


def render_table1(columns: Dict[str, Table1Column]) -> str:
    """Print the table in the paper's layout, with paper values beside."""
    order = ["nv_cl", "de_cl", "multitile"]
    titles = {"nv_cl": "NIGHTVISION&CLASSIFIER",
              "de_cl": "DENOISER&CLASSIFIER",
              "multitile": "MULTI-TILE CLASSIFIER"}
    headers = ["metric"] + [titles[c] for c in order]

    def row(label, fmt, attr, paper_attr=None):
        cells = [label]
        for cluster in order:
            col = columns[cluster]
            text = fmt.format(getattr(col, attr))
            if paper_attr is not None:
                text += f" (paper {fmt.format(getattr(col, paper_attr))})"
            cells.append(text)
        return cells

    paper_util = {c: PAPER_UTILIZATION[
        "soc1" if APP_CONFIGS[BEST_CASE[c]].soc_key == "soc1" else "soc2"]
        for c in order}
    rows = [
        ["LUTS"] + [f"{columns[c].luts:.0%} (paper "
                    f"{paper_util[c]['luts']:.0%})" for c in order],
        ["FFS"] + [f"{columns[c].ffs:.0%} (paper "
                   f"{paper_util[c]['ffs']:.0%})" for c in order],
        ["BRAMS"] + [f"{columns[c].brams:.0%} (paper "
                     f"{paper_util[c]['brams']:.0%})" for c in order],
        row("POWER (W)", "{:.2f}", "power_watts", "paper_power_watts"),
        row("FRAMES/S ESP4ML", "{:,.0f}", "fps_esp4ml",
            "paper_fps_esp4ml"),
        row("FRAMES/S INTEL I7", "{:,.0f}", "fps_i7", "paper_fps_i7"),
        row("FRAMES/S JETSON", "{:,.0f}", "fps_jetson",
            "paper_fps_jetson"),
    ]
    return format_table(rows, headers)
