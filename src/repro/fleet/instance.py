"""One serving replica of the fleet: an SoC behind a uniform handle.

ESP4ML composes accelerator tiles into one application SoC; "Agile SoC
Development with Open ESP" scales the same platform to many-instance
configurations. The fleet layer models exactly that: N independent
SoC instances, each one a full vertical stack —

    Environment  (its own event queue and cycle clock)
      SoCInstance  (mesh, tiles, DMA, memory)
        EspRuntime  (driver registry, executors)
          InferenceServer  (queues, batcher, arbiter)

— wrapped in a :class:`FleetInstance` so the router and coordinator
never reach into instance internals. The *Environment-ownership*
contract this encodes: every instance owns its own
:class:`~repro.sim.Environment`; nothing above this layer ever shares
simulation state between instances, and the only cross-instance
coupling is the coordinator's lockstep clock (see
:mod:`repro.fleet.cluster`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..metrics import MetricsRegistry, attach_metrics
from ..runtime import EspRuntime
from ..trace.context import TraceContext
from ..trace.tracer import Tracer, attach_tracer
from ..serve import (
    Completion,
    InferenceServer,
    Rejection,
    ServerConfig,
    ServerLoad,
    ServerReport,
    TenantConfig,
)


class FleetInstance:
    """A named SoC serving replica with lockstep-advance controls.

    The handle exposes exactly what the fleet needs: admit work
    (:meth:`submit`), advance simulated time (:meth:`advance_to`),
    introspect load (:meth:`load`), harvest completions for the
    router's latency estimators (:meth:`poll_completions`) and drain
    to quiescence (:meth:`drain`).
    """

    def __init__(self, name: str, server: InferenceServer) -> None:
        self.name = name
        self.server = server
        self.runtime: EspRuntime = server.runtime
        self.soc = server.soc
        self.env = server.env
        #: Completions already handed out by :meth:`poll_completions`.
        self._polled = 0

    @classmethod
    def build(cls, name: str,
              soc_builder: Callable[[], object],
              tenants: Sequence[TenantConfig],
              server_config: Optional[ServerConfig] = None,
              recovery=None,
              metrics_namespace: Optional[str] = None,
              trace_namespace: Optional[str] = None,
              trace_capacity: Optional[int] = None) -> "FleetInstance":
        """Stand up one full replica stack from a SoC builder.

        Every call builds a *fresh* SoC (own ``Environment``), boots a
        runtime on it, registers ``tenants`` and wraps the server.
        ``metrics_namespace`` attaches a namespaced
        :class:`~repro.metrics.MetricsRegistry` so N instances can be
        scraped into one snapshot without series collisions;
        ``trace_namespace`` does the same for a
        :class:`~repro.trace.Tracer` so N tracers can merge into one
        fleet-wide Chrome trace (``trace_capacity`` bounds it as a
        flight-recorder ring).
        """
        soc = soc_builder()
        if metrics_namespace is not None:
            attach_metrics(soc.env, namespace=metrics_namespace)
        if trace_namespace is not None:
            attach_tracer(soc.env, namespace=trace_namespace,
                          capacity=trace_capacity)
        runtime = EspRuntime(soc, recovery=recovery)
        server = InferenceServer(runtime, server_config or ServerConfig())
        for tenant in tenants:
            server.register(tenant)
        return cls(name, server)

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> int:
        """This instance's local cycle clock."""
        return self.env.now

    def advance_to(self, cycle: int) -> None:
        """Run this instance's simulation up to (and including) ``cycle``.

        The lockstep primitive: processes every event due at or before
        ``cycle`` and leaves the local clock *at* ``cycle``, even when
        the instance is idle (an idle replica still ages; the kernel's
        fast-forward makes that O(1)). Going backwards is a
        coordinator bug and raises.

        The equal-cycle call is deliberately a no-op: ``run(until=t)``
        can only return with the ready deque empty, so after any
        *time-bounded* advance there is no same-cycle work to strand,
        and an arrival landing on the instance's current cycle is
        admitted exactly like the standalone server's back-to-back
        same-cycle submissions (which also run without an intervening
        drain) — that equivalence is what keeps a single-instance
        fleet bit-identical to the standalone server (the pinned
        fidelity tests in ``tests/fleet/test_cluster.py``). The one
        place same-cycle events *can* be left pending is an
        event-bounded ``run(until=event)``, which aborts mid-cycle:
        :meth:`drain` flushes those itself.
        """
        if cycle < self.env.now:
            raise ValueError(
                f"instance {self.name!r} is at cycle {self.env.now}, "
                f"cannot rewind to {cycle}")
        if cycle > self.env.now:
            self.env.run(until=cycle)

    def start(self) -> None:
        """Spawn the server's tenant loops and let them park (idempotent).

        Settling matters for fidelity: processing the zero-delay
        spawn events *now* (without advancing the clock) parks every
        tenant loop on its wait-for-work event before the first
        submission, exactly as ``InferenceServer.run_trace`` does.
        Loops then wake in *submission* order rather than spawn
        order, so a single-instance fleet reproduces the standalone
        server's event sequence — and its pinned cycle counts.
        """
        self.server.start()
        # run(until=now) drains only the already-due (zero-delay)
        # events; it cannot advance the clock.
        self.env.run(until=self.env.now)

    def drain(self) -> None:
        """Run until every admitted request reached a terminal state.

        ``run(until=event)`` stops the instant the terminal event
        processes, which can be mid-cycle: events scheduled for the
        same cycle but behind the terminal event (a completion
        callback, a metrics update, a parked loop's wake) would stay
        undispatched — and, because the coordinator's final alignment
        is an equal-cycle ``advance_to`` no-op for the slowest
        instance, they would be stranded forever, silently missing
        from reports and from the router's completion feed. The
        zero-delay flush below dispatches the remainder of the current
        cycle without moving the clock.
        """
        admitted = self.server.queue.admitted
        self.env.run(until=self.server.wait_terminal(admitted))
        self.env.run(until=self.env.now)

    # -- work ---------------------------------------------------------------

    def submit(self, tenant: str, frames: np.ndarray,
               priority: int = 0,
               trace_ctx: Optional[TraceContext] = None
               ) -> Optional[Rejection]:
        """Submit one request at the instance's current cycle.

        ``trace_ctx`` carries the router-minted trace identity into
        the instance's serve layer (propagated, never re-minted).
        """
        return self.server.submit(tenant, frames, priority=priority,
                                  trace_ctx=trace_ctx)

    # -- introspection ------------------------------------------------------

    def load(self) -> ServerLoad:
        """The server's queued/in-flight load (pure read)."""
        return self.server.load()

    def poll_completions(self) -> List[Completion]:
        """Completions that landed since the last poll.

        The router's feedback channel: each lockstep advance may
        complete batches; the latency-aware policy folds them into its
        per-instance EWMA. Never returns the same completion twice.
        """
        fresh = self.server.completions[self._polled:]
        self._polled = len(self.server.completions)
        return fresh

    @property
    def tenants(self) -> List[str]:
        return self.server.tenants

    @property
    def metrics(self) -> Optional[MetricsRegistry]:
        return self.env.metrics

    @property
    def tracer(self) -> Optional[Tracer]:
        return self.env.tracer

    def report(self, makespan_cycles: Optional[int] = None) -> ServerReport:
        return self.server.report(makespan_cycles=makespan_cycles)

    def __repr__(self) -> str:
        return (f"<FleetInstance {self.name!r} at cycle {self.env.now} "
                f"({len(self.tenants)} tenants)>")
