"""The fleet coordinator: lockstep co-simulation of N SoC instances.

Each :class:`FleetInstance` owns its own
:class:`~repro.sim.Environment` — N independent event queues with N
independent clocks. The coordinator composes them into one fleet-time
simulation by *lockstep advancement*: arrivals are replayed in global
cycle order, and before each arrival every instance is advanced to the
arrival cycle. At that point all N clocks agree, so the router's load
and latency reads are simultaneous snapshots — the property that makes
least-loaded and latency-aware balancing meaningful.

Why lockstep rather than merging everything into one ``Environment``:
instances never exchange events (a request is submitted to exactly one
SoC; nothing crosses chips mid-flight), so the only synchronization
points are routing decisions. Between two arrivals, each instance's
evolution is completely determined by its own state — advancing them
one at a time to the same cycle is *exactly* equivalent to
interleaving their event queues, with no cross-instance event-ordering
ambiguity to resolve. It also keeps the single-SoC contract intact: an
instance simulated through the fleet layer executes the identical
event sequence it would alone, which is what pins single-instance
fleet runs to the seed cycle counts.

A consequence worth stating: with the same arrival trace, routing
decisions and per-instance event sequences are fully deterministic —
fleet runs are reproducible from (workload seed, policy, salt) alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..eval.harness import LatencySummary
from ..serve import Rejection, ServerConfig, ServerReport, TenantConfig
from ..trace.context import TraceContext
from .instance import FleetInstance
from .router import FleetRouter, RouterDecision
from .workload import Arrival


@dataclass
class FleetReport:
    """Everything one fleet run measured, cluster-wide."""

    policy: str
    clock_mhz: float
    makespan_cycles: int
    offered_requests: int
    offered_frames: int
    admitted: int
    completed_requests: int
    completed_frames: int
    failed: int
    #: Rejections with the instance that issued them (queue-full
    #: backpressure under overload lands here).
    rejections: List[Tuple[str, Rejection]]
    per_instance: Dict[str, ServerReport]
    decisions: List[RouterDecision]
    #: Fleet-wide latency: per-instance samples pooled through
    #: :meth:`LatencySummary.merge` (exact for raw samples).
    latency: Optional[LatencySummary]

    @property
    def makespan_seconds(self) -> float:
        return self.makespan_cycles / (self.clock_mhz * 1e6)

    @property
    def goodput_fps(self) -> float:
        """Frames *completed* per second — offered load that actually
        made it through, the overload-regime counterpart of
        throughput."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.completed_frames / self.makespan_seconds

    @property
    def rejection_rate(self) -> float:
        if self.offered_requests == 0:
            return 0.0
        return len(self.rejections) / self.offered_requests

    def rejections_by_reason(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for _, rejection in self.rejections:
            out[rejection.reason] = out.get(rejection.reason, 0) + 1
        return out

    def rejections_by_instance(self) -> Dict[str, int]:
        out = {name: 0 for name in self.per_instance}
        for name, _ in self.rejections:
            out[name] += 1
        return out

    def requests_by_instance(self) -> Dict[str, int]:
        out = {name: 0 for name in self.per_instance}
        for decision in self.decisions:
            out[decision.instance] += 1
        return out

    def render(self) -> str:
        us = 1.0 / self.clock_mhz
        lines = [
            f"== fleet report: policy={self.policy}, "
            f"{len(self.per_instance)} instances ==",
            f"offered {self.offered_requests} requests "
            f"({self.offered_frames} frames) over "
            f"{self.makespan_cycles:,} cycles "
            f"({self.makespan_seconds * 1e3:.2f} ms)",
            f"completed {self.completed_requests} requests "
            f"({self.completed_frames} frames), goodput "
            f"{self.goodput_fps:.1f} frames/s; rejected "
            f"{len(self.rejections)} "
            f"({100 * self.rejection_rate:.1f}%), failed {self.failed}",
        ]
        if self.latency is not None:
            scaled = self.latency.scaled(us)
            lines.append(
                f"fleet latency: p50 {scaled.p50:.1f} us, "
                f"p95 {scaled.p95:.1f} us, p99 {scaled.p99:.1f} us, "
                f"max {scaled.max:.1f} us")
        routed = self.requests_by_instance()
        rejected = self.rejections_by_instance()
        lines.append(f"{'instance':<10}{'routed':>8}{'served':>8}"
                     f"{'rejected':>10}{'p99 us':>10}")
        for name in sorted(self.per_instance):
            report = self.per_instance[name]
            summary = report.latency_summary()
            p99 = f"{summary.p99 * us:.1f}" if summary else "-"
            lines.append(
                f"{name:<10}{routed.get(name, 0):>8}"
                f"{len(report.completions):>8}"
                f"{rejected.get(name, 0):>10}{p99:>10}")
        reasons = self.rejections_by_reason()
        if reasons:
            breakdown = ", ".join(f"{reason}={count}" for reason, count
                                  in sorted(reasons.items()))
            lines.append(f"rejection breakdown: {breakdown}")
        return "\n".join(lines)


class Fleet:
    """N instances + a router, driven in lockstep over a workload."""

    def __init__(self, instances: Sequence[FleetInstance],
                 router: FleetRouter) -> None:
        if not instances:
            raise ValueError("a fleet needs at least one instance")
        self.instances = list(instances)
        self.router = router

    @property
    def names(self) -> List[str]:
        return [instance.name for instance in self.instances]

    def tracers(self) -> Dict[str, object]:
        """name -> tracer for every traced instance — the mapping
        :func:`repro.trace.merge_chrome_traces` consumes."""
        return {instance.name: instance.tracer
                for instance in self.instances
                if instance.tracer is not None}

    def run(self, arrivals: Sequence[Arrival],
            inputs: Dict[str, np.ndarray]) -> FleetReport:
        """Drive one arrival trace through the fleet to quiescence.

        ``inputs`` maps each tenant to a pool of input frames; an
        arrival of ``n_frames`` takes the next ``n_frames`` rows
        (wrapping), so frame payloads are deterministic and
        policy-independent — two policies compared on the same trace
        see byte-identical requests.

        The loop: advance every instance to the arrival cycle, let the
        router observe fresh completions, route, submit. After the
        last arrival all instances drain and are aligned to one final
        cycle, so the makespan is a fleet-wide quantity.
        """
        for instance in self.instances:
            instance.start()
            instance.server.queue.reset_stats()
        origins = {instance.name: instance.now
                   for instance in self.instances}
        cursors = {tenant: 0 for tenant in inputs}
        rejections: List[Tuple[str, Rejection]] = []
        offered_frames = 0
        decisions_before = len(self.router.decisions)

        ordered = sorted(arrivals, key=lambda a: a.at)
        for arrival in ordered:
            for instance in self.instances:
                instance.advance_to(origins[instance.name] + arrival.at)
            self.router.observe()
            instance = self.router.route(arrival.tenant, at=arrival.at)
            frames = self._take_frames(inputs, cursors, arrival)
            offered_frames += arrival.n_frames
            # Propagate the router-minted trace identity: the decision
            # instant and every instance-side span of this request
            # share one ID across the routing boundary.
            trace_id = self.router.decisions[-1].trace_id
            rejection = instance.submit(
                arrival.tenant, frames, priority=arrival.priority,
                trace_ctx=(None if trace_id is None
                           else TraceContext(trace_id)))
            if rejection is not None:
                rejections.append((instance.name, rejection))

        for instance in self.instances:
            instance.drain()
        # Align the fleet on one final cycle (idle instances age too).
        final = max(instance.now - origins[instance.name]
                    for instance in self.instances)
        for instance in self.instances:
            instance.advance_to(origins[instance.name] + final)
        self.router.observe()

        reports = {
            instance.name: instance.report(makespan_cycles=final)
            for instance in self.instances}
        samples = [
            [c.latency_cycles for c in report.completions]
            for report in reports.values() if report.completions]
        completed = sum(len(r.completions) for r in reports.values())
        return FleetReport(
            policy=self.router.policy,
            clock_mhz=self.instances[0].soc.clock_mhz,
            makespan_cycles=final,
            offered_requests=len(ordered),
            offered_frames=offered_frames,
            admitted=sum(r.admitted for r in reports.values()),
            completed_requests=completed,
            completed_frames=sum(r.completed_frames
                                 for r in reports.values()),
            failed=sum(len(r.failures) for r in reports.values()),
            rejections=rejections,
            per_instance=reports,
            decisions=self.router.decisions[decisions_before:],
            latency=(LatencySummary.merge(samples) if samples else None),
        )

    @staticmethod
    def _take_frames(inputs: Dict[str, np.ndarray],
                     cursors: Dict[str, int],
                     arrival: Arrival) -> np.ndarray:
        pool = inputs[arrival.tenant]
        cursor = cursors[arrival.tenant]
        rows = [(cursor + k) % len(pool) for k in range(arrival.n_frames)]
        cursors[arrival.tenant] = (cursor + arrival.n_frames) % len(pool)
        return pool[rows]

    def __repr__(self) -> str:
        return (f"<Fleet {len(self.instances)} instances, "
                f"router={self.router!r}>")


def build_fleet(n_instances: int,
                soc_builder: Callable[[], object],
                tenant_factory: Callable[[], Sequence[TenantConfig]],
                policy: str = "round-robin",
                replicas: Optional[int] = None,
                server_config: Optional[ServerConfig] = None,
                recovery=None,
                salt: int = 0,
                metrics: bool = False,
                tracing: bool = False,
                trace_capacity: Optional[int] = None) -> Fleet:
    """Stand up a homogeneous fleet: N replicas of one SoC + tenants.

    ``tenant_factory`` is called once per instance so each server gets
    its own :class:`TenantConfig` objects (dataflows are shared-naming
    but per-instance state lives in the server). ``metrics=True``
    attaches one namespaced registry per instance (``i0``, ``i1``,
    ...), ready for :func:`repro.metrics.merge_snapshots`;
    ``tracing=True`` attaches one namespaced tracer per instance under
    the same names, ready for
    :func:`repro.trace.merge_chrome_traces` (``trace_capacity`` turns
    each into a bounded flight-recorder ring).
    """
    if n_instances < 1:
        raise ValueError("n_instances must be >= 1")
    instances = [
        FleetInstance.build(
            f"i{index}", soc_builder, tenant_factory(),
            server_config=server_config, recovery=recovery,
            metrics_namespace=f"i{index}" if metrics else None,
            trace_namespace=f"i{index}" if tracing else None,
            trace_capacity=trace_capacity if tracing else None)
        for index in range(n_instances)]
    router = FleetRouter(instances, policy=policy, replicas=replicas,
                         salt=salt)
    return Fleet(instances, router)
