"""The fleet front door: tenant sharding + load-balancing policies.

A request names a tenant; the router decides which SoC instance runs
it, in two stages:

1. **Sharding (placement).** Each tenant is pinned to a *shard* — a
   fixed subset of ``replicas`` instances chosen by rendezvous
   (highest-random-weight) hashing. Placement is *consistent*: it
   depends only on (tenant, instance name, salt), so adding or
   removing an instance moves only the tenants whose top-weight set
   changed (~``replicas/N`` of them), never reshuffles the rest. The
   shard is the tenant's *affinity set*: model state, quantized
   parameter caches and batch coalescing all benefit from a tenant
   revisiting the same few instances instead of spraying the fleet.

2. **Balancing (selection).** Within the shard, one of three policies
   picks the instance:

   - ``round-robin`` — per-tenant rotation, no feedback. The
     baseline: deterministic, stateless, and blind to load.
   - ``least-loaded`` — the instance whose server reports the
     smallest estimated backlog (queued + in-flight frames weighted
     by each tenant's ``est_cycles_per_frame``), read live from
     :meth:`repro.serve.InferenceServer.load` — the fleet analogue of
     queue-depth-based dispatch.
   - ``latency-aware`` — the instance with the lowest exponentially
     weighted moving average of *recently completed* request
     latencies, fed by :meth:`FleetInstance.poll_completions` after
     every lockstep advance. Instances with no signal yet score 0, so
     cold replicas are explored first and the estimator self-corrects.

Ties break on shard order (and shard order is itself deterministic),
so routing is a pure function of (arrival sequence, completions seen)
— two runs with the same seed produce identical decision logs, which
the tests assert.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..trace.context import TraceIdAllocator
from .instance import FleetInstance

#: Selection policies within a tenant's shard.
ROUTER_POLICIES = ("round-robin", "least-loaded", "latency-aware")


def _weight(salt: int, tenant: str, instance: str) -> int:
    """Stable rendezvous weight of (tenant, instance).

    md5 of the joint key — *not* Python's builtin ``hash``, which is
    salted per process and would make placement differ across runs.
    """
    key = f"{salt}|{tenant}|{instance}".encode()
    return int.from_bytes(hashlib.md5(key).digest()[:8], "big")


def shard_tenant(tenant: str, instance_names: Sequence[str],
                 replicas: int, salt: int = 0) -> Tuple[str, ...]:
    """The ``replicas`` instances owning ``tenant``, by rendezvous hash.

    Highest-random-weight placement: every (tenant, instance) pair
    gets a deterministic pseudo-random weight; the tenant lands on the
    ``replicas`` heaviest instances. Consistency follows from the
    weights being independent per pair — removing an instance only
    promotes the next-heaviest, and adding one only claims the pairs
    where it is heaviest.
    """
    if not 1 <= replicas <= len(instance_names):
        raise ValueError(
            f"replicas must be in [1, {len(instance_names)}], "
            f"got {replicas}")
    ranked = sorted(instance_names,
                    key=lambda name: (-_weight(salt, tenant, name), name))
    return tuple(ranked[:replicas])


@dataclass(frozen=True)
class RouterDecision:
    """One routing decision, for audit and determinism tests."""

    at: int               # fleet cycle of the arrival
    tenant: str
    instance: str         # chosen instance name
    policy: str
    shard: Tuple[str, ...]
    #: Policy-specific score of the winner (rotation index, estimated
    #: backlog cycles, or EWMA latency).
    score: float
    #: Distributed-tracing identity minted for the routed request
    #: ("f-0", "f-1", ... in arrival order). The instance-side spans
    #: carry the same ID, so a merged fleet trace links this decision
    #: to the request's whole waterfall.
    trace_id: Optional[str] = None


class FleetRouter:
    """Routes tenant requests onto a fixed set of instances."""

    def __init__(self, instances: Sequence[FleetInstance],
                 policy: str = "round-robin",
                 replicas: Optional[int] = None,
                 salt: int = 0,
                 ewma_alpha: float = 0.25) -> None:
        if not instances:
            raise ValueError("a fleet needs at least one instance")
        if policy not in ROUTER_POLICIES:
            raise ValueError(f"policy must be one of {ROUTER_POLICIES}, "
                             f"got {policy!r}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], "
                             f"got {ewma_alpha}")
        names = [instance.name for instance in instances]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate instance names: {names}")
        self.instances = list(instances)
        self.policy = policy
        self.replicas = len(instances) if replicas is None else replicas
        if not 1 <= self.replicas <= len(instances):
            raise ValueError(
                f"replicas must be in [1, {len(instances)}], "
                f"got {self.replicas}")
        self.salt = salt
        self.ewma_alpha = ewma_alpha
        self._by_name: Dict[str, FleetInstance] = {
            instance.name: instance for instance in self.instances}
        self._shards: Dict[str, Tuple[str, ...]] = {}
        self._rotation: Dict[str, int] = {}
        #: Per-instance EWMA of completed-request latency (cycles);
        #: ``None`` until the first completion is observed.
        self._ewma: Dict[str, Optional[float]] = {
            name: None for name in names}
        self.decisions: List[RouterDecision] = []
        # One deterministic trace-ID mint for the whole fleet
        # ("f-{n}" in arrival order); instances propagate the router's
        # ID instead of minting their own.
        self._trace_ids = TraceIdAllocator("f")

    # -- sharding -----------------------------------------------------------

    def shard(self, tenant: str) -> Tuple[str, ...]:
        """The tenant's affinity set (cached rendezvous placement)."""
        placed = self._shards.get(tenant)
        if placed is None:
            placed = shard_tenant(
                tenant, [i.name for i in self.instances],
                self.replicas, salt=self.salt)
            self._shards[tenant] = placed
        return placed

    # -- feedback -----------------------------------------------------------

    def observe(self) -> None:
        """Fold fresh completions into the per-instance latency EWMAs.

        The coordinator calls this after every lockstep advance, so
        the latency-aware policy sees each completion exactly once, in
        deterministic (instance order, completion order) sequence.
        """
        alpha = self.ewma_alpha
        for instance in self.instances:
            for completion in instance.poll_completions():
                latency = float(completion.latency_cycles)
                previous = self._ewma[instance.name]
                self._ewma[instance.name] = latency if previous is None \
                    else alpha * latency + (1.0 - alpha) * previous

    def ewma_latency(self, instance: str) -> Optional[float]:
        """The instance's current latency estimate (None = no signal)."""
        return self._ewma[instance]

    # -- selection ----------------------------------------------------------

    def route(self, tenant: str, at: int = 0) -> FleetInstance:
        """Pick the instance for one arrival and log the decision."""
        shard = self.shard(tenant)
        if self.policy == "round-robin":
            index = self._rotation.get(tenant, 0)
            self._rotation[tenant] = index + 1
            name = shard[index % len(shard)]
            score = float(index % len(shard))
        elif self.policy == "least-loaded":
            name, score = min(
                ((candidate,
                  float(self._by_name[candidate]
                        .load().est_backlog_cycles))
                 for candidate in shard),
                key=lambda pair: (pair[1], shard.index(pair[0])))
        else:   # latency-aware
            # A never-observed EWMA (None) must not read as "fastest":
            # an instance that has completed nothing — possibly because
            # it is stalled — would then absorb all traffic forever.
            # Cold instances are scored by their current backlog
            # instead (same unit: cycles): an idle cold instance still
            # gets explored (backlog 0), while a stalled one
            # accumulates backlog and stops attracting requests.
            def _score(candidate: str) -> float:
                ewma = self._ewma[candidate]
                if ewma is not None:
                    return ewma
                return float(
                    self._by_name[candidate].load().est_backlog_cycles)

            name, score = min(
                ((candidate, _score(candidate)) for candidate in shard),
                key=lambda pair: (pair[1], shard.index(pair[0])))
        self.decisions.append(RouterDecision(
            at=at, tenant=tenant, instance=name, policy=self.policy,
            shard=shard, score=score,
            trace_id=self._trace_ids.next_id()))
        return self._by_name[name]

    def __repr__(self) -> str:
        return (f"<FleetRouter {self.policy!r} over "
                f"{len(self.instances)} instances, "
                f"replicas={self.replicas}, "
                f"{len(self.decisions)} decisions>")
