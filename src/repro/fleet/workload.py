"""Open-loop workload generation: Poisson arrivals with envelopes.

The fleet's stand-in for "millions of users": request arrivals are an
*open-loop* process — traffic keeps coming whether or not the fleet
keeps up, which is what lets a benchmark drive the cluster into
overload and measure goodput and rejection behaviour rather than just
closed-loop latency.

The arrival process is a non-homogeneous Poisson process with rate

    rate(t) = base_rate * diurnal(t) * burst(t)

- ``base_rate = 1 / mean_interarrival_cycles`` — the long-run average.
- ``diurnal(t) = 1 + amplitude * sin(2*pi*t / period)`` — the slow
  daily swing of a user population (peak vs trough traffic).
- ``burst(t)`` — ``burst_multiplier`` inside seeded burst windows
  (burst starts themselves a Poisson process, each lasting
  ``burst_duration_cycles``), 1 elsewhere: flash crowds on top of the
  diurnal curve.

Arrivals are sampled by *thinning* (Lewis & Shedler): candidates are
drawn from a homogeneous process at the peak rate and accepted with
probability ``rate(t) / peak_rate``. Every draw comes from one seeded
``numpy`` generator in a fixed order, so a :class:`WorkloadSpec` maps
to exactly one arrival trace — the determinism the router tests and
the fleet benchmark pin against.

Each arrival carries a tenant (weighted choice — skewed weights model
a hot tenant) and a frame count (uniform in a range — heterogeneous
request sizes are what load-aware balancing exploits). Frames
themselves are bound later by the coordinator from per-tenant input
pools, keeping the trace cheap to generate and policy-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's share of the arrival mix."""

    name: str
    #: Relative arrival weight (2.0 gets twice the requests of 1.0).
    weight: float = 1.0
    #: Frames per request, drawn uniformly from [min, max].
    frames_min: int = 1
    frames_max: int = 1
    priority: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")
        if not 1 <= self.frames_min <= self.frames_max:
            raise ValueError(
                f"need 1 <= frames_min <= frames_max, got "
                f"[{self.frames_min}, {self.frames_max}]")


@dataclass(frozen=True)
class Arrival:
    """One request of the open-loop trace (frames bound later)."""

    at: int
    tenant: str
    n_frames: int
    priority: int = 0


@dataclass(frozen=True)
class WorkloadSpec:
    """A seeded open-loop arrival process over a finite horizon."""

    tenants: Tuple[TenantLoad, ...]
    horizon_cycles: int
    #: Mean cycles between arrivals at the *base* rate (before the
    #: diurnal/burst envelopes scale it).
    mean_interarrival_cycles: float
    #: Diurnal envelope: one "day" lasts this many cycles (None = no
    #: diurnal modulation).
    diurnal_period_cycles: int = 0
    #: Peak-to-mean swing of the diurnal envelope, in [0, 1).
    diurnal_amplitude: float = 0.0
    #: Mean cycles between burst-window starts (0 = no bursts).
    burst_every_cycles: float = 0.0
    burst_duration_cycles: int = 0
    #: Rate multiplier inside a burst window (>= 1).
    burst_multiplier: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("workload needs at least one tenant")
        if self.horizon_cycles < 1:
            raise ValueError("horizon_cycles must be >= 1")
        if self.mean_interarrival_cycles <= 0:
            raise ValueError("mean_interarrival_cycles must be > 0")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_amplitude > 0 and self.diurnal_period_cycles < 1:
            raise ValueError("diurnal modulation needs a period")
        if self.burst_multiplier < 1.0:
            raise ValueError("burst_multiplier must be >= 1")
        if self.burst_every_cycles > 0 \
                and self.burst_duration_cycles < 1:
            raise ValueError("bursts need a duration")

    @property
    def base_rate(self) -> float:
        return 1.0 / self.mean_interarrival_cycles

    @property
    def peak_rate(self) -> float:
        """The thinning bound: every envelope at its maximum."""
        return (self.base_rate * (1.0 + self.diurnal_amplitude)
                * (self.burst_multiplier
                   if self.burst_every_cycles > 0 else 1.0))


def burst_windows(spec: WorkloadSpec,
                  rng: np.random.Generator) -> List[Tuple[int, int]]:
    """Seeded ``[start, end)`` burst windows over the horizon."""
    if spec.burst_every_cycles <= 0:
        return []
    windows: List[Tuple[int, int]] = []
    t = 0.0
    while True:
        t += rng.exponential(spec.burst_every_cycles)
        if t >= spec.horizon_cycles:
            return windows
        start = int(t)
        end = start + spec.burst_duration_cycles
        windows.append((start, end))
        t = float(end)


def _rate_at(spec: WorkloadSpec, t: float,
             windows: List[Tuple[int, int]], cursor: int
             ) -> Tuple[float, int]:
    """Instantaneous rate at ``t`` (+ advanced burst-window cursor)."""
    rate = spec.base_rate
    if spec.diurnal_amplitude > 0:
        rate *= 1.0 + spec.diurnal_amplitude * np.sin(
            2.0 * np.pi * t / spec.diurnal_period_cycles)
    while cursor < len(windows) and windows[cursor][1] <= t:
        cursor += 1
    if cursor < len(windows) and windows[cursor][0] <= t:
        rate *= spec.burst_multiplier
    return rate, cursor


def generate_arrivals(spec: WorkloadSpec) -> List[Arrival]:
    """The arrival trace of ``spec`` — same spec, same trace, always."""
    rng = np.random.default_rng(spec.seed)
    windows = burst_windows(spec, rng)
    weights = np.array([t.weight for t in spec.tenants])
    cumulative = np.cumsum(weights / weights.sum())
    peak = spec.peak_rate
    arrivals: List[Arrival] = []
    t = 0.0
    cursor = 0
    while True:
        t += rng.exponential(1.0 / peak)
        if t >= spec.horizon_cycles:
            break
        rate, cursor = _rate_at(spec, t, windows, cursor)
        if rng.random() > rate / peak:
            continue   # thinned: candidate rejected
        pick = int(np.searchsorted(cumulative, rng.random(),
                                   side="right"))
        tenant = spec.tenants[min(pick, len(spec.tenants) - 1)]
        n_frames = int(rng.integers(tenant.frames_min,
                                    tenant.frames_max + 1))
        arrivals.append(Arrival(at=int(t), tenant=tenant.name,
                                n_frames=n_frames,
                                priority=tenant.priority))
    return arrivals


def offered_load(spec: WorkloadSpec, arrivals: List[Arrival]) -> dict:
    """Summary of what the trace asks of the fleet (for reports)."""
    by_tenant: dict = {}
    for arrival in arrivals:
        entry = by_tenant.setdefault(arrival.tenant,
                                     {"requests": 0, "frames": 0})
        entry["requests"] += 1
        entry["frames"] += arrival.n_frames
    return {
        "requests": len(arrivals),
        "frames": sum(a.n_frames for a in arrivals),
        "horizon_cycles": spec.horizon_cycles,
        "by_tenant": by_tenant,
    }
