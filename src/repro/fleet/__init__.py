"""Fleet-scale serving: shard the SoC into a cluster.

ESP4ML's platform-based design composes accelerator tiles into one
application SoC; the Open ESP line of work scales the same platform to
many-instance, many-accelerator configurations. This package is that
step for the reproduction's serving stack: N simulated SoC instances
(each its own ``Environment``/SoC/runtime/``InferenceServer``, wrapped
in a :class:`FleetInstance`) behind a :class:`FleetRouter` with
pluggable load-balancing policies and consistent tenant sharding,
driven in lockstep by a :class:`Fleet` coordinator over seeded
open-loop traffic from :mod:`repro.fleet.workload`.

Quick start::

    from repro.fleet import (TenantLoad, WorkloadSpec, build_fleet,
                             generate_arrivals)

    fleet = build_fleet(4, build_soc1, tenant_factory,
                        policy="least-loaded")
    arrivals = generate_arrivals(WorkloadSpec(
        tenants=(TenantLoad("classifier", weight=3.0),),
        horizon_cycles=200_000, mean_interarrival_cycles=2_000))
    report = fleet.run(arrivals, inputs={"classifier": frames})
    print(report.render())

Design notes live in ``docs/fleet.md``; the graded benchmark is
``benchmarks/bench_fleet.py`` (→ ``BENCH_fleet.json``).
"""

from .cluster import Fleet, FleetReport, build_fleet
from .instance import FleetInstance
from .router import (
    FleetRouter,
    ROUTER_POLICIES,
    RouterDecision,
    shard_tenant,
)
from .workload import (
    Arrival,
    TenantLoad,
    WorkloadSpec,
    burst_windows,
    generate_arrivals,
    offered_load,
)

__all__ = [
    "Arrival",
    "Fleet",
    "FleetInstance",
    "FleetReport",
    "FleetRouter",
    "ROUTER_POLICIES",
    "RouterDecision",
    "TenantLoad",
    "WorkloadSpec",
    "build_fleet",
    "burst_windows",
    "generate_arrivals",
    "offered_load",
    "shard_tenant",
]
