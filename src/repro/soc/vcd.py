"""VCD waveform export of a simulation run.

Dumps the signals a hardware engineer would probe on the real SoC —
per-accelerator ``busy`` and the occupancy of the NoC's DMA-plane
links — as a standard Value Change Dump file viewable in GTKWave &co.
Link signals require the SoC to be built with ``trace_links=True``
(:func:`repro.soc.build_soc`); accelerator signals come from the
shared device-span store (:mod:`repro.trace.store`), the same source
the Gantt chart and utilization summaries read.

Timebase: simulation timestamps are clock cycles, so the emitted
``$timescale`` is picoseconds with every timestamp multiplied by the
cycle period — a viewer then shows true wall-clock time for any SoC
clock (78 MHz has a non-integer period in ns, hence ps).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..trace.store import device_spans
from .soc_builder import SoCInstance

#: Printable VCD identifier characters.
_ID_CHARS = [chr(c) for c in range(33, 127)]


def _identifier(index: int) -> str:
    """Short unique VCD identifier for variable ``index``."""
    base = len(_ID_CHARS)
    out = ""
    index += 1
    while index:
        index, digit = divmod(index - 1, base)
        out = _ID_CHARS[digit] + out
    return out


def _sanitize(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch in "._" else "_")
    return "".join(out)


def picoseconds_per_cycle(clock_mhz: float) -> int:
    """The VCD timestamp multiplier: one cycle's period in ps."""
    if clock_mhz <= 0:
        raise ValueError(f"clock_mhz must be > 0, got {clock_mhz}")
    return max(1, round(1e6 / clock_mhz))


def parse_vcd_timescale(vcd: str) -> Tuple[int, str]:
    """Round-trip check helper: the ``(magnitude, unit)`` of a VCD.

    Parses the ``$timescale`` declaration out of VCD text; raises
    ``ValueError`` when the declaration is missing or malformed.
    """
    for line in vcd.splitlines():
        line = line.strip()
        if not line.startswith("$timescale"):
            continue
        body = line[len("$timescale"):].replace("$end", "").strip()
        for index, ch in enumerate(body):
            if not ch.isdigit():
                magnitude, unit = body[:index], body[index:].strip()
                break
        else:
            raise ValueError(f"malformed $timescale: {line!r}")
        if not magnitude or unit not in ("s", "ms", "us", "ns", "ps",
                                         "fs"):
            raise ValueError(f"malformed $timescale: {line!r}")
        return int(magnitude), unit
    raise ValueError("no $timescale declaration found")


def emit_vcd(soc: SoCInstance, include_links: bool = True,
             max_links: int = 16) -> str:
    """Render the run as VCD text.

    Accelerator ``busy`` wires toggle at invocation boundaries; link
    wires toggle with channel occupancy (only when the mesh recorded
    history). The ``max_links`` busiest traced links are included.
    """
    changes: List[Tuple[int, str, int]] = []   # (time, id, value)
    variables: List[Tuple[str, str, str]] = []  # (scope, name, id)
    next_id = 0

    def new_var(scope: str, name: str) -> str:
        nonlocal next_id
        ident = _identifier(next_id)
        next_id += 1
        variables.append((scope, _sanitize(name), ident))
        return ident

    idents: Dict[str, str] = {}
    for device in sorted(soc.accelerators):
        idents[device] = new_var("accelerators", f"{device}_busy")
        changes.append((0, idents[device], 0))
    for span in device_spans(soc):
        changes.append((span.start, idents[span.device], 1))
        changes.append((span.end, idents[span.device], 0))

    if include_links:
        traced = [link for link in soc.mesh.links.values()
                  if link.channel.record_history
                  and link.channel.history]
        traced.sort(key=lambda l: l.flits_carried, reverse=True)
        for link in traced[:max_links]:
            label = (f"{link.src[0]}_{link.src[1]}__to__"
                     f"{link.dst[0]}_{link.dst[1]}__{link.plane}")
            ident = new_var("noc", label)
            changes.append((0, ident, 0))
            for when, in_use in link.channel.history:
                changes.append((when, ident, 1 if in_use else 0))

    # Header. Timestamps are cycles; the ps-per-cycle multiplier puts
    # the waveform on a true wall-clock timebase for any SoC clock.
    ps_per_cycle = picoseconds_per_cycle(soc.clock_mhz)
    lines = [
        "$date ESP4ML reproduction $end",
        f"$comment SoC {soc.name}; 1 cycle = {ps_per_cycle} ps "
        f"at {soc.clock_mhz} MHz $end",
        "$timescale 1 ps $end",
        f"$scope module {_sanitize(soc.name)} $end",
    ]
    current_scope = None
    for scope, name, ident in variables:
        if scope != current_scope:
            if current_scope is not None:
                lines.append("$upscope $end")
            lines.append(f"$scope module {scope} $end")
            current_scope = scope
        lines.append(f"$var wire 1 {ident} {name} $end")
    if current_scope is not None:
        lines.append("$upscope $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    # Value changes, grouped by time; later changes at the same time
    # override earlier ones per identifier (so the falling edge of one
    # invocation and the rising edge of a back-to-back successor at the
    # same cycle collapse to "still busy").
    by_time: Dict[int, Dict[str, int]] = {}
    for when, ident, value in changes:
        by_time.setdefault(when, {})[ident] = value
    for when in sorted(by_time):
        lines.append(f"#{when * ps_per_cycle}")
        for ident, value in by_time[when].items():
            lines.append(f"{value}{ident}")
    lines.append(f"#{soc.env.now * ps_per_cycle}")
    return "\n".join(lines) + "\n"
