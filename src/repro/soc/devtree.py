"""Device-tree generation (the ``devtree.dtb`` of Fig. 3).

The ESP flow emits a device tree so the Linux kernel running on the
Ariane core can probe every accelerator. We generate the equivalent
source text (DTS); the runtime's driver layer consumes the same
information programmatically via :func:`devices_from_config`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .config import SoCConfig

Coord = Tuple[int, int]

#: Base of the memory-mapped accelerator register space and stride per
#: tile (matches ESP's CSR addressing scheme in spirit).
APB_BASE = 0x6000_0000
APB_STRIDE = 0x0000_1000


@dataclass(frozen=True)
class DeviceNode:
    """One accelerator entry of the device tree."""

    name: str
    spec_name: str
    coord: Coord
    reg_base: int
    irq: int


def devices_from_config(config: SoCConfig) -> List[DeviceNode]:
    """Enumerate accelerator devices in probe order (row-major)."""
    nodes = []
    for index, (coord, tile) in enumerate(config.tiles_of_kind("acc")):
        nodes.append(DeviceNode(
            name=tile.name,
            spec_name=tile.spec.name,
            coord=coord,
            reg_base=APB_BASE + index * APB_STRIDE,
            irq=index + 1,
        ))
    return nodes


def emit_dts(config: SoCConfig) -> str:
    """Render the device-tree source for the SoC."""
    lines = [
        "/dts-v1/;",
        "/ {",
        f'    model = "{config.name}";',
        '    compatible = "columbia,esp";',
        "    soc {",
        f"        noc: mesh@{config.cols}x{config.rows} {{",
        f'            compatible = "esp,noc-2dmesh";',
        f"            columns = <{config.cols}>;",
        f"            rows = <{config.rows}>;",
        "        };",
    ]
    for node in devices_from_config(config):
        x, y = node.coord
        lines.extend([
            f"        {node.name}@{node.reg_base:08x} {{",
            f'            compatible = "esp,{node.spec_name}";',
            f"            reg = <0x{node.reg_base:08x} 0x{APB_STRIDE:x}>;",
            f"            interrupts = <{node.irq}>;",
            f"            esp,noc-coords = <{x} {y}>;",
            "        };",
        ])
    lines.extend(["    };", "};", ""])
    return "\n".join(lines)
