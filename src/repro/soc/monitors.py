"""SoC performance monitors (ESP's hardware counters, aggregated).

ESP instruments tiles with performance counters; the infrastructure
papers the DATE paper builds on read them out for DVFS and traffic
studies. This module gathers every counter the simulated SoC keeps —
per-accelerator activity, DMA engine traffic, TLB behaviour, memory
bandwidth, LLC statistics and NoC link utilization — into one
monitor report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .soc_builder import SoCInstance


@dataclass(frozen=True)
class AcceleratorCounters:
    device: str
    invocations: int
    frames: int
    busy_cycles: int
    utilization: float
    dma_loads: int
    dma_stores: int
    p2p_loads: int
    p2p_stores: int
    words_loaded: int
    words_stored: int
    tlb_hits: int
    tlb_misses: int


@dataclass(frozen=True)
class MemoryCounters:
    coord: tuple
    words_read: int
    words_written: int
    load_transactions: int
    store_transactions: int
    llc_hits: Optional[int]
    llc_misses: Optional[int]
    llc_writebacks: Optional[int]


@dataclass(frozen=True)
class MonitorReport:
    """One snapshot of every hardware counter in the SoC."""

    elapsed_cycles: int
    clock_mhz: float
    accelerators: List[AcceleratorCounters]
    memories: List[MemoryCounters]
    noc_flit_hops: int
    noc_packets: int
    noc_plane_flits: Dict[str, int]
    busiest_link: Optional[str]

    @property
    def total_dram_words(self) -> int:
        return sum(m.words_read + m.words_written for m in self.memories)

    def dram_bandwidth_words_per_cycle(self) -> float:
        if self.elapsed_cycles == 0:
            return 0.0
        return self.total_dram_words / self.elapsed_cycles

    def to_text(self) -> str:
        lines = [
            f"== SoC monitors @ cycle {self.elapsed_cycles:,} "
            f"({self.clock_mhz} MHz) ==",
            f"{'device':<12}{'invk':>6}{'frames':>8}{'busy%':>7}"
            f"{'ld':>6}{'st':>6}{'p2p-ld':>8}{'p2p-st':>8}"
            f"{'tlb h/m':>12}",
        ]
        for acc in self.accelerators:
            lines.append(
                f"{acc.device:<12}{acc.invocations:>6}{acc.frames:>8}"
                f"{acc.utilization:>7.0%}{acc.dma_loads:>6}"
                f"{acc.dma_stores:>6}{acc.p2p_loads:>8}"
                f"{acc.p2p_stores:>8}"
                f"{f'{acc.tlb_hits}/{acc.tlb_misses}':>12}")
        for mem in self.memories:
            llc = ""
            if mem.llc_hits is not None:
                llc = (f"   LLC h/m/wb: {mem.llc_hits}/{mem.llc_misses}"
                       f"/{mem.llc_writebacks}")
            lines.append(
                f"memory {mem.coord}: {mem.words_read:,} read, "
                f"{mem.words_written:,} written{llc}")
        lines.append(
            f"NoC: {self.noc_packets:,} packets, "
            f"{self.noc_flit_hops:,} flit-hops; busiest link "
            f"{self.busiest_link}")
        lines.append(
            f"DRAM bandwidth: "
            f"{self.dram_bandwidth_words_per_cycle():.3f} words/cycle")
        return "\n".join(lines)


@dataclass(frozen=True)
class TileActivity:
    """Per-accelerator activity between two snapshots.

    The serving layer's attribution primitive: the tile arbiter grants
    a tenant exclusive tiles, so the counter delta between grant and
    release is exactly that tenant's hardware activity — no sampling,
    no estimation.
    """

    device: str
    invocations: int
    frames: int
    busy_cycles: int
    dma_loads: int
    dma_stores: int
    p2p_loads: int
    p2p_stores: int
    words_loaded: int
    words_stored: int

    def __add__(self, other: "TileActivity") -> "TileActivity":
        if other.device != self.device:
            raise ValueError(f"cannot add activity of {self.device!r} "
                             f"and {other.device!r}")
        return TileActivity(
            device=self.device,
            invocations=self.invocations + other.invocations,
            frames=self.frames + other.frames,
            busy_cycles=self.busy_cycles + other.busy_cycles,
            dma_loads=self.dma_loads + other.dma_loads,
            dma_stores=self.dma_stores + other.dma_stores,
            p2p_loads=self.p2p_loads + other.p2p_loads,
            p2p_stores=self.p2p_stores + other.p2p_stores,
            words_loaded=self.words_loaded + other.words_loaded,
            words_stored=self.words_stored + other.words_stored,
        )


def tile_activity(soc: SoCInstance, names) -> Dict[str, TileActivity]:
    """Snapshot the activity counters of the named accelerator tiles."""
    out: Dict[str, TileActivity] = {}
    for name in names:
        if name not in soc.accelerators:
            raise KeyError(f"unknown accelerator {name!r}; options: "
                           f"{sorted(soc.accelerators)}")
        tile = soc.accelerators[name]
        out[name] = TileActivity(
            device=name,
            invocations=len(tile.invocations),
            frames=tile.frames_processed,
            busy_cycles=tile.busy_cycles,
            dma_loads=tile.dma.dma_loads,
            dma_stores=tile.dma.dma_stores,
            p2p_loads=tile.dma.p2p_loads,
            p2p_stores=tile.dma.p2p_stores,
            words_loaded=tile.dma.words_loaded,
            words_stored=tile.dma.words_stored,
        )
    return out


def activity_delta(before: Dict[str, TileActivity],
                   after: Dict[str, TileActivity]
                   ) -> Dict[str, TileActivity]:
    """Counter-wise ``after - before`` over matching devices."""
    out: Dict[str, TileActivity] = {}
    for name, end in after.items():
        start = before.get(name)
        if start is None:
            raise KeyError(f"no 'before' snapshot for {name!r}")
        out[name] = TileActivity(
            device=name,
            invocations=end.invocations - start.invocations,
            frames=end.frames - start.frames,
            busy_cycles=end.busy_cycles - start.busy_cycles,
            dma_loads=end.dma_loads - start.dma_loads,
            dma_stores=end.dma_stores - start.dma_stores,
            p2p_loads=end.p2p_loads - start.p2p_loads,
            p2p_stores=end.p2p_stores - start.p2p_stores,
            words_loaded=end.words_loaded - start.words_loaded,
            words_stored=end.words_stored - start.words_stored,
        )
    return out


def monitor_delta(before: MonitorReport,
                  after: MonitorReport) -> MonitorReport:
    """Counter-wise ``after - before``: the activity of one interval.

    Back-to-back pipelines on one SoC share cumulative counters; the
    delta of two :func:`read_monitors` snapshots attributes activity to
    the run between them. Utilization is recomputed from the busy-cycle
    delta over the elapsed-cycle delta.
    """
    elapsed = after.elapsed_cycles - before.elapsed_cycles
    if elapsed < 0:
        raise ValueError("'after' snapshot precedes 'before'")
    before_acc = {a.device: a for a in before.accelerators}
    accelerators = []
    for acc in after.accelerators:
        base = before_acc.get(acc.device)
        if base is None:
            raise KeyError(f"no 'before' snapshot for {acc.device!r}")
        busy = acc.busy_cycles - base.busy_cycles
        accelerators.append(AcceleratorCounters(
            device=acc.device,
            invocations=acc.invocations - base.invocations,
            frames=acc.frames - base.frames,
            busy_cycles=busy,
            utilization=busy / elapsed if elapsed else 0.0,
            dma_loads=acc.dma_loads - base.dma_loads,
            dma_stores=acc.dma_stores - base.dma_stores,
            p2p_loads=acc.p2p_loads - base.p2p_loads,
            p2p_stores=acc.p2p_stores - base.p2p_stores,
            words_loaded=acc.words_loaded - base.words_loaded,
            words_stored=acc.words_stored - base.words_stored,
            tlb_hits=acc.tlb_hits - base.tlb_hits,
            tlb_misses=acc.tlb_misses - base.tlb_misses,
        ))
    before_mem = {m.coord: m for m in before.memories}
    memories = []
    for mem in after.memories:
        base = before_mem.get(mem.coord)
        if base is None:
            raise KeyError(f"no 'before' snapshot for memory {mem.coord}")
        def _opt(end, start):
            return None if end is None else end - (start or 0)
        memories.append(MemoryCounters(
            coord=mem.coord,
            words_read=mem.words_read - base.words_read,
            words_written=mem.words_written - base.words_written,
            load_transactions=(mem.load_transactions
                               - base.load_transactions),
            store_transactions=(mem.store_transactions
                                - base.store_transactions),
            llc_hits=_opt(mem.llc_hits, base.llc_hits),
            llc_misses=_opt(mem.llc_misses, base.llc_misses),
            llc_writebacks=_opt(mem.llc_writebacks, base.llc_writebacks),
        ))
    plane_flits = {name: after.noc_plane_flits.get(name, 0)
                   - before.noc_plane_flits.get(name, 0)
                   for name in after.noc_plane_flits}
    return MonitorReport(
        elapsed_cycles=elapsed,
        clock_mhz=after.clock_mhz,
        accelerators=accelerators,
        memories=memories,
        noc_flit_hops=after.noc_flit_hops - before.noc_flit_hops,
        noc_packets=after.noc_packets - before.noc_packets,
        noc_plane_flits=plane_flits,
        busiest_link=after.busiest_link,
    )


def read_monitors(soc: SoCInstance) -> MonitorReport:
    """Snapshot every counter of the SoC."""
    accelerators = []
    for name in sorted(soc.accelerators):
        tile = soc.accelerators[name]
        tlb_stats = tile.dma.tlb.stats()
        accelerators.append(AcceleratorCounters(
            device=name,
            invocations=len(tile.invocations),
            frames=tile.frames_processed,
            busy_cycles=tile.busy_cycles,
            utilization=tile.utilization(),
            dma_loads=tile.dma.dma_loads,
            dma_stores=tile.dma.dma_stores,
            p2p_loads=tile.dma.p2p_loads,
            p2p_stores=tile.dma.p2p_stores,
            words_loaded=tile.dma.words_loaded,
            words_stored=tile.dma.words_stored,
            tlb_hits=tlb_stats["hits"],
            tlb_misses=tlb_stats["misses"],
        ))
    memories = []
    for tile in soc.memory_map.tiles:
        llc = tile.llc
        memories.append(MemoryCounters(
            coord=tile.coord,
            words_read=tile.words_read,
            words_written=tile.words_written,
            load_transactions=tile.load_transactions,
            store_transactions=tile.store_transactions,
            llc_hits=llc.hits if llc else None,
            llc_misses=llc.misses if llc else None,
            llc_writebacks=llc.writebacks if llc else None,
        ))
    busiest = soc.mesh.busiest_links(top=1)
    busiest_label = None
    if busiest and busiest[0].flits_carried > 0:
        link = busiest[0]
        busiest_label = (f"{link.src}->{link.dst}@{link.plane} "
                         f"({link.flits_carried:,} flits)")
    return MonitorReport(
        elapsed_cycles=soc.env.now,
        clock_mhz=soc.clock_mhz,
        accelerators=accelerators,
        memories=memories,
        noc_flit_hops=soc.mesh.flit_hops,
        noc_packets=soc.mesh.packets_delivered,
        noc_plane_flits=soc.mesh.plane_flits(),
        busiest_link=busiest_label,
    )
