"""SoC performance monitors (ESP's hardware counters, aggregated).

ESP instruments tiles with performance counters; the infrastructure
papers the DATE paper builds on read them out for DVFS and traffic
studies. This module gathers every counter the simulated SoC keeps —
per-accelerator activity, DMA engine traffic, TLB behaviour, memory
bandwidth, LLC statistics and NoC link utilization — into one
monitor report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .soc_builder import SoCInstance


@dataclass(frozen=True)
class AcceleratorCounters:
    device: str
    invocations: int
    frames: int
    busy_cycles: int
    utilization: float
    dma_loads: int
    dma_stores: int
    p2p_loads: int
    p2p_stores: int
    words_loaded: int
    words_stored: int
    tlb_hits: int
    tlb_misses: int


@dataclass(frozen=True)
class MemoryCounters:
    coord: tuple
    words_read: int
    words_written: int
    load_transactions: int
    store_transactions: int
    llc_hits: Optional[int]
    llc_misses: Optional[int]
    llc_writebacks: Optional[int]


@dataclass(frozen=True)
class MonitorReport:
    """One snapshot of every hardware counter in the SoC."""

    elapsed_cycles: int
    clock_mhz: float
    accelerators: List[AcceleratorCounters]
    memories: List[MemoryCounters]
    noc_flit_hops: int
    noc_packets: int
    noc_plane_flits: Dict[str, int]
    busiest_link: Optional[str]

    @property
    def total_dram_words(self) -> int:
        return sum(m.words_read + m.words_written for m in self.memories)

    def dram_bandwidth_words_per_cycle(self) -> float:
        if self.elapsed_cycles == 0:
            return 0.0
        return self.total_dram_words / self.elapsed_cycles

    def to_text(self) -> str:
        lines = [
            f"== SoC monitors @ cycle {self.elapsed_cycles:,} "
            f"({self.clock_mhz} MHz) ==",
            f"{'device':<12}{'invk':>6}{'frames':>8}{'busy%':>7}"
            f"{'ld':>6}{'st':>6}{'p2p-ld':>8}{'p2p-st':>8}"
            f"{'tlb h/m':>12}",
        ]
        for acc in self.accelerators:
            lines.append(
                f"{acc.device:<12}{acc.invocations:>6}{acc.frames:>8}"
                f"{acc.utilization:>7.0%}{acc.dma_loads:>6}"
                f"{acc.dma_stores:>6}{acc.p2p_loads:>8}"
                f"{acc.p2p_stores:>8}"
                f"{f'{acc.tlb_hits}/{acc.tlb_misses}':>12}")
        for mem in self.memories:
            llc = ""
            if mem.llc_hits is not None:
                llc = (f"   LLC h/m/wb: {mem.llc_hits}/{mem.llc_misses}"
                       f"/{mem.llc_writebacks}")
            lines.append(
                f"memory {mem.coord}: {mem.words_read:,} read, "
                f"{mem.words_written:,} written{llc}")
        lines.append(
            f"NoC: {self.noc_packets:,} packets, "
            f"{self.noc_flit_hops:,} flit-hops; busiest link "
            f"{self.busiest_link}")
        lines.append(
            f"DRAM bandwidth: "
            f"{self.dram_bandwidth_words_per_cycle():.3f} words/cycle")
        return "\n".join(lines)


def read_monitors(soc: SoCInstance) -> MonitorReport:
    """Snapshot every counter of the SoC."""
    accelerators = []
    for name in sorted(soc.accelerators):
        tile = soc.accelerators[name]
        tlb_stats = tile.dma.tlb.stats()
        accelerators.append(AcceleratorCounters(
            device=name,
            invocations=len(tile.invocations),
            frames=tile.frames_processed,
            busy_cycles=tile.busy_cycles,
            utilization=tile.utilization(),
            dma_loads=tile.dma.dma_loads,
            dma_stores=tile.dma.dma_stores,
            p2p_loads=tile.dma.p2p_loads,
            p2p_stores=tile.dma.p2p_stores,
            words_loaded=tile.dma.words_loaded,
            words_stored=tile.dma.words_stored,
            tlb_hits=tlb_stats["hits"],
            tlb_misses=tlb_stats["misses"],
        ))
    memories = []
    for tile in soc.memory_map.tiles:
        llc = tile.llc
        memories.append(MemoryCounters(
            coord=tile.coord,
            words_read=tile.words_read,
            words_written=tile.words_written,
            load_transactions=tile.load_transactions,
            store_transactions=tile.store_transactions,
            llc_hits=llc.hits if llc else None,
            llc_misses=llc.misses if llc else None,
            llc_writebacks=llc.writebacks if llc else None,
        ))
    busiest = soc.mesh.busiest_links(top=1)
    busiest_label = None
    if busiest and busiest[0].flits_carried > 0:
        link = busiest[0]
        busiest_label = (f"{link.src}->{link.dst}@{link.plane} "
                         f"({link.flits_carried:,} flits)")
    return MonitorReport(
        elapsed_cycles=soc.env.now,
        clock_mhz=soc.clock_mhz,
        accelerators=accelerators,
        memories=memories,
        noc_flit_hops=soc.mesh.flit_hops,
        noc_packets=soc.mesh.packets_delivered,
        noc_plane_flits=soc.mesh.plane_flits(),
        busiest_link=busiest_label,
    )
