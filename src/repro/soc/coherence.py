"""Per-accelerator cache-coherence modes and the fully-coherent model.

ESP accelerators select among cache-coherence models at run time (Giri
et al. [12], [14], cited by the paper; "Towards Generalized On-Chip
Communication for Programmable Accelerators" measures all of them):

- **non-coherent DMA**: straight to DRAM, bypassing every cache;
- **LLC-coherent DMA**: requests allocate in the shared last-level
  cache at the memory tile (:mod:`repro.soc.llc`);
- **fully-coherent**: the accelerator tile owns a small private cache
  kept coherent with a MESI-style invalidation protocol. The protocol
  runs on the three NoC coherence planes that are otherwise idle
  (``coh-req`` / ``coh-fwd`` / ``coh-rsp``, Fig. 2 planes 1-3), with
  the memory-tile LLC as the shared directory point.

This module holds the mode enum threaded through the stack, the
private cache, the protocol message payloads and the directory.
Everything here is **pay-for-what-you-use**: no process is spawned and
no state is allocated until the first fully-coherent transaction, so a
SoC that never uses the mode is event-for-event identical to one built
before the mode existed.

Modeling note (documented in ``docs/coherence.md``): like the LLC, the
private caches affect *timing and traffic accounting only*. Functional
data always moves through the backing store out-of-band, so a protocol
race (e.g. an invalidation crossing a grant in flight) can only skew a
few cycles of timing, never corrupt data.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from ..fixed import words_to_flits
from ..noc import (
    COH_FORWARD_PLANE,
    COH_REQUEST_PLANE,
    COH_RESPONSE_PLANE,
    MessageKind,
    Packet,
)
from ..sim import Fifo
from .registers import (
    COHERENCE_FULL,
    COHERENCE_LLC,
    COHERENCE_NON_COHERENT,
)

Coord = Tuple[int, int]

#: Directory lookup/occupancy cost per transaction, in cycles.
DIRECTORY_LATENCY = 4

#: Default private-cache capacity per accelerator tile, in words. Small
#: by design: the fully-coherent model pays off exactly when a kernel's
#: working set fits next to the tile (Giri et al.).
DEFAULT_PRIVATE_CACHE_WORDS = 1024


class CoherenceMode(Enum):
    """The three run-time-selectable accelerator coherence models."""

    NON_COHERENT = "non-coherent"
    LLC_COHERENT = "llc-coherent"
    FULLY_COHERENT = "fully-coherent"

    @property
    def register_value(self) -> int:
        """The ``COHERENCE_REG`` encoding of this mode."""
        return _MODE_TO_REG[self]

    @classmethod
    def from_register(cls, value: int) -> "CoherenceMode":
        """Decode a ``COHERENCE_REG`` value (unknown values degrade to
        non-coherent, as the fabric does for unsupported requests)."""
        return _REG_TO_MODE.get(int(value), cls.NON_COHERENT)

    @classmethod
    def coerce(cls, value) -> "CoherenceMode":
        """Normalize a user-facing spelling into a mode.

        Accepts a :class:`CoherenceMode`, one of its string values
        (``"non-coherent"`` / ``"llc-coherent"`` / ``"fully-coherent"``),
        a legacy boolean (``True`` = LLC-coherent) or ``None`` (=
        non-coherent).
        """
        if value is None:
            return cls.NON_COHERENT
        if isinstance(value, cls):
            return value
        if isinstance(value, bool):
            return cls.LLC_COHERENT if value else cls.NON_COHERENT
        if isinstance(value, str):
            try:
                return cls(value)
            except ValueError:
                names = [m.value for m in cls]
                raise ValueError(
                    f"unknown coherence mode {value!r}; "
                    f"options: {names}") from None
        raise TypeError(
            f"cannot interpret {value!r} as a coherence mode")


_MODE_TO_REG = {
    CoherenceMode.NON_COHERENT: COHERENCE_NON_COHERENT,
    CoherenceMode.LLC_COHERENT: COHERENCE_LLC,
    CoherenceMode.FULLY_COHERENT: COHERENCE_FULL,
}
_REG_TO_MODE = {reg: mode for mode, reg in _MODE_TO_REG.items()}


def resolve_coherence(coherence, coherent,
                      stacklevel: int = 3) -> CoherenceMode:
    """Resolve the (new, deprecated-boolean) kwarg pair into a mode.

    ``coherence`` is the first-class argument (mode, string or
    ``None``); ``coherent`` is the deprecated boolean alias, kept so
    pre-enum call sites run unchanged (with a :class:`DeprecationWarning`)
    and keep their exact cycle counts: ``True`` maps onto
    :attr:`CoherenceMode.LLC_COHERENT`, ``False`` onto
    :attr:`CoherenceMode.NON_COHERENT`. Passing both is an error.
    """
    if coherent is not None:
        if coherence is not None:
            raise TypeError(
                "pass either coherence= or the deprecated coherent=, "
                "not both")
        warnings.warn(
            "the boolean coherent= kwarg is deprecated; pass "
            "coherence=CoherenceMode.LLC_COHERENT (or 'llc-coherent') "
            "instead",
            DeprecationWarning, stacklevel=stacklevel)
        return CoherenceMode.coerce(bool(coherent))
    return CoherenceMode.coerce(coherence)


# ---------------------------------------------------------------------------
# Private cache (per accelerator tile)
# ---------------------------------------------------------------------------

#: MESI-style stable states tracked per private-cache line. ``I`` is
#: represented by absence.
MODIFIED = "M"
EXCLUSIVE = "E"
SHARED = "S"


class PrivateCache:
    """Set-associative LRU cache with per-line MESI-style state.

    Lives next to the DMA engine of a fully-coherent accelerator tile.
    Like the LLC, it models timing and traffic only; data stays in the
    backing store. Writes to an ``E`` line upgrade to ``M`` silently
    (the MESI optimization the E state exists for — no bus traffic).
    """

    def __init__(self, capacity_words: int = DEFAULT_PRIVATE_CACHE_WORDS,
                 line_words: int = 16, ways: int = 4,
                 hit_latency: int = 2) -> None:
        if capacity_words < line_words * ways:
            raise ValueError(
                f"capacity {capacity_words} below one set "
                f"({line_words} x {ways})")
        if capacity_words % (line_words * ways):
            raise ValueError("capacity must be a whole number of sets")
        self.capacity_words = capacity_words
        self.line_words = line_words
        self.ways = ways
        self.hit_latency = hit_latency
        self.n_sets = capacity_words // (line_words * ways)
        # Per set: line -> MESI state, in LRU order (oldest first).
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.invalidations_received = 0

    def _set_of(self, line: int) -> OrderedDict:
        return self._sets[line % self.n_sets]

    def lines_of(self, offset: int, n_words: int) -> range:
        first = offset // self.line_words
        last = (offset + n_words - 1) // self.line_words
        return range(first, last + 1)

    def state(self, line: int) -> Optional[str]:
        """The line's MESI state, or ``None`` when not resident."""
        return self._set_of(line).get(line)

    def touch(self, line: int, write: bool) -> Optional[str]:
        """Probe for a local hit; returns the state when it is one.

        A read hits in any state. A write hits in ``M`` or ``E``
        (``E`` upgrades to ``M`` silently); a write to an ``S`` line is
        a miss — it needs an upgrade request for ownership.
        """
        cache_set = self._set_of(line)
        state = cache_set.get(line)
        if state is None:
            self.misses += 1
            return None
        if write and state == SHARED:
            self.misses += 1
            return None
        if write and state == EXCLUSIVE:
            cache_set[line] = MODIFIED
        cache_set.move_to_end(line)
        self.hits += 1
        return cache_set[line]

    def install(self, line: int, state: str) -> Optional[int]:
        """Install (or restate) a line; returns an evicted dirty line.

        The victim, when one is needed, is the LRU way of the set; a
        clean victim vanishes silently, a dirty (``M``) victim is
        returned so the caller can issue the writeback message.
        """
        if state not in (MODIFIED, EXCLUSIVE, SHARED):
            raise ValueError(f"bad MESI state {state!r}")
        cache_set = self._set_of(line)
        dirty_victim = None
        if line not in cache_set and len(cache_set) >= self.ways:
            victim, victim_state = cache_set.popitem(last=False)
            self.evictions += 1
            if victim_state == MODIFIED:
                self.writebacks += 1
                dirty_victim = victim
        cache_set[line] = state
        cache_set.move_to_end(line)
        return dirty_victim

    def invalidate(self, line: int) -> bool:
        """Drop a line on a coherence invalidation; True when it was
        ``M`` (the ack must carry the dirty data back)."""
        cache_set = self._set_of(line)
        state = cache_set.pop(line, None)
        if state is not None:
            self.invalidations_received += 1
        return state == MODIFIED

    def flush(self) -> int:
        """Drop every line; returns how many were dirty."""
        dirty = 0
        for cache_set in self._sets:
            for _, state in cache_set.items():
                if state == MODIFIED:
                    dirty += 1
            cache_set.clear()
        self.writebacks += dirty
        return dirty

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "writebacks": self.writebacks,
                "invalidations_received": self.invalidations_received,
                "resident_lines": self.resident_lines}


# ---------------------------------------------------------------------------
# Protocol messages
# ---------------------------------------------------------------------------


@dataclass
class CoherenceRequest:
    """One batched transaction on the ``coh-req`` plane.

    The engine classifies every line a DMA transfer touches and sends
    one request per owning memory tile, carrying three line lists:
    ``gets_lines`` (read, data needed), ``getm_lines`` (write
    ownership, data needed — a partial-line store must fill first) and
    ``upgrade_lines`` (write ownership, no data — either an ``S``
    upgrade or a full-line overwrite).
    """

    gets_lines: Tuple[int, ...]
    getm_lines: Tuple[int, ...]
    upgrade_lines: Tuple[int, ...]
    requester: Coord
    tag: str
    word_bits: int

    @property
    def data_lines(self) -> Tuple[int, ...]:
        return self.gets_lines + self.getm_lines

    @property
    def all_lines(self) -> Tuple[int, ...]:
        return self.gets_lines + self.getm_lines + self.upgrade_lines


@dataclass
class InvalidateRequest:
    """``coh-fwd`` payload: directory orders a tile to drop lines."""

    lines: Tuple[int, ...]
    reply_to: Coord     # the directory's tile
    tag: str            # the transaction being serviced


@dataclass
class InvalidateAck:
    """``coh-rsp`` payload: a tile acknowledges an invalidation.

    ``dirty_lines`` lists the lines that were ``M`` locally — the ack
    carries their data back to the directory (a MESI recall), so its
    packet is sized by ``len(dirty_lines) * line_words``.
    """

    lines: Tuple[int, ...]
    dirty_lines: Tuple[int, ...]
    tag: str


@dataclass
class CoherenceReply:
    """``coh-rsp`` payload: directory grants a transaction.

    ``exclusive_lines`` are the GETS lines granted ``E`` because no
    other tile held them — the requester installs them exclusive and
    can later write them without any traffic.
    """

    tag: str
    exclusive_lines: Tuple[int, ...] = ()


@dataclass
class CoherenceWriteback:
    """``coh-rsp`` payload: fire-and-forget dirty-eviction writeback."""

    lines: Tuple[int, ...]
    word_bits: int


def line_list_flits(n_lines: int) -> int:
    """Flits of a command packet listing line ids (8 ids per flit)."""
    return max(1, (n_lines + 7) // 8)


# ---------------------------------------------------------------------------
# Directory (memory-tile side)
# ---------------------------------------------------------------------------


@dataclass
class DirectoryStats:
    requests: int = 0
    invalidations_sent: int = 0
    recalls: int = 0
    writebacks_received: int = 0
    exclusive_grants: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class CoherenceDirectory:
    """The coherence point of one memory tile.

    Tracks, per cache line, which accelerator tiles hold it (sharers)
    or own it (``E``/``M``), serves transactions serially from the
    ``coh-req`` inbox, forwards invalidations on ``coh-fwd`` and
    collects acks / writebacks / sends grants on ``coh-rsp``. The
    tile's :class:`~repro.soc.llc.LastLevelCache` is the shared data
    point: granted lines are looked up there first, and only LLC misses
    move DRAM words — exactly the accounting of LLC-coherent DMA.

    Created lazily by :meth:`MemoryTile.ensure_directory` on the first
    fully-coherent transaction, never at SoC build.
    """

    def __init__(self, tile) -> None:
        self.tile = tile
        self.env = tile.env
        self.mesh = tile.mesh
        self.llc = tile.llc
        if self.llc is None:
            raise ValueError(
                "a coherence directory needs the memory tile to host "
                "an LLC (the shared directory point)")
        #: Global line -> tiles holding it S.
        self._sharers: Dict[int, Set[Coord]] = {}
        #: Global line -> tile holding it E or M (directory cannot
        #: distinguish the two — E upgrades to M silently).
        self._owner: Dict[int, Coord] = {}
        self._acks: Dict[str, Fifo] = {}
        self.stats = DirectoryStats()
        self.env.process(self._server(),
                         name=f"coh-dir{tile.coord}")
        self.env.process(self._rsp_dispatcher(),
                         name=f"coh-dir-rsp{tile.coord}")

    # -- helpers -----------------------------------------------------------

    def _local_line(self, line: int) -> int:
        """Map a global line id onto the tile's local line space."""
        return line - self.tile.base_words // self.llc.line_words

    def _ack_queue(self, tag: str) -> Fifo:
        queue = self._acks.get(tag)
        if queue is None:
            queue = Fifo(self.env, name=f"coh-ack:{tag}")
            self._acks[tag] = queue
        return queue

    def _stream_cycles(self, words: int) -> int:
        """SRAM streaming cost (twice the DRAM word rate)."""
        wpc = 2 * self.tile.words_per_cycle
        return (words + wpc - 1) // wpc

    def _absorb_writeback(self, lines: Tuple[int, ...]) -> int:
        """Install written-back dirty lines into the LLC.

        A writeback carries a whole line, so there is never a fetch;
        installing may evict another dirty LLC line to DRAM. Returns
        the SRAM streaming cycles of the absorption.
        """
        llc = self.llc
        tile = self.tile
        for line in lines:
            _, evicted = llc.access_line(self._local_line(line),
                                         write=True)
            if evicted:
                tile.words_written += llc.line_words
        self.stats.writebacks_received += len(lines)
        return self._stream_cycles(len(lines) * llc.line_words)

    # -- processes ---------------------------------------------------------

    def _rsp_dispatcher(self):
        """Route ``coh-rsp`` arrivals at the memory tile.

        Invalidation acks are demultiplexed by transaction tag to the
        waiting server; eviction writebacks are absorbed inline.
        """
        inbox = self.mesh.inbox(self.tile.coord, COH_RESPONSE_PLANE)
        while True:
            packet = yield inbox.get()
            payload = packet.payload
            if isinstance(payload, CoherenceWriteback):
                for line in payload.lines:
                    self._owner.pop(line, None)
                    self._sharers.pop(line, None)
                yield self.env.timeout(
                    self._absorb_writeback(payload.lines))
            elif isinstance(payload, InvalidateAck):
                yield self._ack_queue(payload.tag).put(payload)
            else:
                raise TypeError(
                    f"directory at {self.tile.coord} got unexpected "
                    f"coh-rsp payload {payload!r}")

    def _invalidation_targets(
            self, request: CoherenceRequest
    ) -> Dict[Coord, List[int]]:
        """Which tiles must drop which lines for this transaction."""
        targets: Dict[Coord, List[int]] = {}
        me = request.requester

        def add(coord: Coord, line: int) -> None:
            targets.setdefault(coord, []).append(line)

        for line in request.gets_lines:
            # A read only recalls the line from a remote owner (whose
            # copy may be dirty); plain sharers can keep it.
            owner = self._owner.get(line)
            if owner is not None and owner != me:
                add(owner, line)
                self.stats.recalls += 1
        for line in request.getm_lines + request.upgrade_lines:
            owner = self._owner.get(line)
            if owner is not None and owner != me:
                add(owner, line)
                self.stats.recalls += 1
            for sharer in self._sharers.get(line, ()):
                if sharer != me:
                    add(sharer, line)
        return targets

    def _server(self):
        """Serve coherence transactions, one at a time (the directory
        is a serial resource, like the DMA request queue)."""
        env = self.env
        mesh = self.mesh
        tile = self.tile
        llc = self.llc
        inbox = mesh.inbox(tile.coord, COH_REQUEST_PLANE)
        while True:
            packet = yield inbox.get()
            request = packet.payload
            if not isinstance(request, CoherenceRequest):
                raise TypeError(
                    f"directory at {tile.coord} got unexpected coh-req "
                    f"payload {request!r}")
            self.stats.requests += 1
            tracer = env.tracer
            sid = None if tracer is None else tracer.begin(
                f"mem{tile.coord}", "coh-dir",
                f"txn[{len(request.all_lines)}l]", "coh.directory",
                requester=str(request.requester),
                lines=len(request.all_lines))
            yield env.timeout(DIRECTORY_LATENCY)

            # 1. Invalidate / recall conflicting copies.
            targets = self._invalidation_targets(request)
            for coord, lines in targets.items():
                self.stats.invalidations_sent += len(lines)
                mesh.send(Packet(
                    src=tile.coord, dst=coord,
                    plane=COH_FORWARD_PLANE, kind=MessageKind.COH_INV,
                    payload_flits=line_list_flits(len(lines)),
                    payload=InvalidateRequest(
                        lines=tuple(lines), reply_to=tile.coord,
                        tag=request.tag),
                    tag=request.tag))
            for _ in targets:
                ack = yield self._ack_queue(request.tag).get()
                if ack.dirty_lines:
                    # Recalled dirty data lands in the LLC, so the
                    # immediately following lookup hits on chip.
                    yield env.timeout(
                        self._absorb_writeback(ack.dirty_lines))
            self._acks.pop(request.tag, None)

            # 2. Data lines through the LLC (timing + DRAM counters,
            # mirroring the LLC-coherent service path).
            n_hit = n_fill = 0
            for line in request.data_lines:
                hit, evicted = llc.access_line(self._local_line(line),
                                               write=False)
                if hit:
                    n_hit += 1
                else:
                    n_fill += 1
                if evicted:
                    tile.words_written += llc.line_words
            tile.words_read += n_fill * llc.line_words
            cycles = 0
            if n_hit:
                cycles += llc.hit_latency + self._stream_cycles(
                    n_hit * llc.line_words)
            if n_fill:
                fill_words = n_fill * llc.line_words
                cycles += tile.dram_latency + (
                    fill_words + tile.words_per_cycle - 1) \
                    // tile.words_per_cycle
            if cycles:
                yield env.timeout(cycles)

            # 3. Update directory state and grant.
            exclusive: List[int] = []
            me = request.requester
            for line in request.gets_lines:
                owner = self._owner.pop(line, None)
                sharers = self._sharers.setdefault(line, set())
                sharers.discard(owner)
                if not sharers:
                    # Sole copy on chip: grant E (silent-upgrade MESI).
                    self._owner[line] = me
                    self._sharers.pop(line, None)
                    exclusive.append(line)
                    self.stats.exclusive_grants += 1
                else:
                    sharers.add(me)
            for line in request.getm_lines + request.upgrade_lines:
                self._owner[line] = me
                self._sharers.pop(line, None)

            data_words = len(request.data_lines) * llc.line_words
            flits = words_to_flits(
                data_words, request.word_bits,
                mesh.flit_bits(COH_RESPONSE_PLANE)) if data_words \
                else line_list_flits(len(request.upgrade_lines))
            mesh.send(Packet(
                src=tile.coord, dst=me, plane=COH_RESPONSE_PLANE,
                kind=MessageKind.COH_RSP, payload_flits=flits,
                payload=CoherenceReply(tag=request.tag,
                                       exclusive_lines=tuple(exclusive)),
                tag=request.tag))
            if sid is not None:
                tracer.end(sid, invalidations=sum(
                    len(v) for v in targets.values()), fills=n_fill)
