"""Memory tile: the DRAM controller behind the NoC.

Accelerators exchange "long sequences of data between their on-chip
local private memories and the off-chip main memory (DRAM)" via DMA
(paper Sec. II). The memory tile serves DMA requests arriving on the
dma-req plane and answers loads on the dma-rsp plane.

The DRAM access counters on this tile are what Fig. 8 of the paper
reports: p2p communication cuts them by 2-3x because intermediate
results stop round-tripping through this tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from ..fixed import words_to_flits
from ..noc import (
    DMA_REQUEST_PLANE,
    DMA_RESPONSE_PLANE,
    Mesh2D,
    MessageKind,
    Packet,
)
from ..sim import Environment, Event
from .llc import LastLevelCache

Coord = Tuple[int, int]


@dataclass
class DmaRequest:
    """Payload of a DMA_REQ packet."""

    op: str                 # "load" | "store"
    offset: int             # word address in the memory tile
    words: int
    word_bits: int
    reply_to: Coord
    tag: str
    data: Optional[np.ndarray] = None   # store payload
    coherent: bool = False  # LLC-coherent DMA (vs straight to DRAM)

    def __post_init__(self) -> None:
        if self.op not in ("load", "store"):
            raise ValueError(f"op must be load/store, got {self.op!r}")
        if self.words < 1:
            raise ValueError(f"words must be >= 1, got {self.words}")
        if self.op == "store" and self.data is None:
            raise ValueError("store request needs data")


class MemoryTile:
    """One DRAM channel: storage, a serial controller, access counters."""

    def __init__(self, env: Environment, mesh: Mesh2D, coord: Coord,
                 size_words: int = 1 << 22, dram_latency: int = 30,
                 words_per_cycle: int = 4,
                 llc: Optional[LastLevelCache] = None) -> None:
        if size_words < 1:
            raise ValueError(f"size_words must be >= 1, got {size_words}")
        if dram_latency < 0:
            raise ValueError("dram_latency must be >= 0")
        if words_per_cycle < 1:
            raise ValueError("words_per_cycle must be >= 1")
        self.env = env
        self.mesh = mesh
        self.coord = coord
        self.size_words = size_words
        self.dram_latency = dram_latency
        self.words_per_cycle = words_per_cycle
        self.llc = llc
        self.storage = np.zeros(size_words, dtype=np.float64)
        # Fig. 8 counters.
        self.words_read = 0
        self.words_written = 0
        self.load_transactions = 0
        self.store_transactions = 0
        # Fault hook (None = fault-free, zero overhead) + upset count.
        self.fault_injector = None
        self.bitflips = 0
        # Set by the owning MemoryMap; lets the tile retire posted
        # stores for the map-level quiescence tracking.
        self.parent_map: Optional["MemoryMap"] = None
        #: Global word address of this tile's first word (set by the
        #: MemoryMap) — the coherence directory maps global cache-line
        #: ids onto the tile-local LLC with it.
        self.base_words = 0
        #: Lazily-created coherence directory (fully-coherent mode
        #: only); ``None`` means no fully-coherent transaction has ever
        #: targeted this tile and no directory process exists.
        self.directory = None
        self._server_proc = env.process(self._server(),
                                        name=f"mem-server{coord}")

    def ensure_directory(self):
        """The tile's coherence directory, created on first use.

        Lazy by contract: the directory spawns two processes, and the
        pinned-seed timing invariant requires a SoC that never issues a
        fully-coherent transaction to schedule exactly the same events
        as one built before the mode existed. Returns ``None`` when the
        tile hosts no LLC — the fabric then downgrades fully-coherent
        requests, exactly as the flag-era LLC-coherent path degrades
        without an LLC.
        """
        if self.directory is None and self.llc is not None:
            from .coherence import CoherenceDirectory
            self.directory = CoherenceDirectory(self)
        return self.directory

    # -- direct (software) access: processor loads/stores ------------------

    def read_words(self, offset: int, n_words: int) -> np.ndarray:
        self._check_range(offset, n_words)
        return self.storage[offset:offset + n_words].copy()

    def write_words(self, offset: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float64).reshape(-1)
        self._check_range(offset, len(data))
        self.storage[offset:offset + len(data)] = data

    def _check_range(self, offset: int, n_words: int) -> None:
        if offset < 0 or offset + n_words > self.size_words:
            raise ValueError(
                f"access [{offset}, {offset + n_words}) outside memory of "
                f"{self.size_words} words")

    # -- DMA service ---------------------------------------------------------

    @property
    def total_accesses(self) -> int:
        """DRAM words moved (the Fig. 8 metric)."""
        return self.words_read + self.words_written

    def _service_cycles(self, words: int) -> int:
        return self.dram_latency + (words + self.words_per_cycle - 1) \
            // self.words_per_cycle

    def _coherent_service(self, request: DmaRequest) -> int:
        """Serve one transaction through the LLC.

        The cache affects timing and the DRAM counters only; the
        backing store always holds current data (write-back dirtiness
        is tracked for eviction accounting). DRAM words move on line
        fills and writebacks, not on hits — this is what lets an
        LLC-coherent pipeline keep intermediate frames on chip.
        """
        llc = self.llc
        is_store = request.op == "store"
        n_hit = n_miss = n_writeback = 0
        n_fill = 0
        end = request.offset + request.words
        for line in llc.lines_of(request.offset, request.words):
            hit, writeback = llc.access_line(line, write=is_store)
            if hit:
                n_hit += 1
            else:
                n_miss += 1
                line_start = line * llc.line_words
                full_cover = (request.offset <= line_start and
                              line_start + llc.line_words <= end)
                # Fetch-on-write is skipped when the store overwrites
                # the whole line (streaming DMA stores hit this path);
                # loads and partial stores must fill from DRAM.
                if not (is_store and full_cover):
                    n_fill += 1
            if writeback:
                n_writeback += 1
        dram_words = (n_fill + n_writeback) * llc.line_words
        self.words_read += n_fill * llc.line_words
        self.words_written += n_writeback * llc.line_words
        if is_store:
            self.store_transactions += 1
        else:
            self.load_transactions += 1
        # Hits stream from SRAM at twice the DRAM word rate after one
        # access-latency; misses add the DRAM burst.
        hit_words = n_hit * llc.line_words
        cycles = 0
        if hit_words:
            cycles += llc.hit_latency + (
                hit_words + 2 * self.words_per_cycle - 1) \
                // (2 * self.words_per_cycle)
        if dram_words:
            cycles += self.dram_latency + (
                dram_words + self.words_per_cycle - 1) \
                // self.words_per_cycle
        return cycles

    def _server(self):
        inbox = self.mesh.inbox(self.coord, DMA_REQUEST_PLANE)
        while True:
            packet = yield inbox.get()
            request = packet.payload
            if not isinstance(request, DmaRequest):
                raise TypeError(
                    f"memory tile received non-DMA payload {request!r}")
            if self.fault_injector is not None and request.op == "load":
                # A DRAM upset flips one bit of the loaded range in the
                # backing storage; it persists until rewritten, so the
                # runtime's retry (which regenerates the data) is what
                # clears it.
                if self.fault_injector.maybe_flip_dram(
                        self.storage, request.offset, request.words,
                        self.env.now):
                    self.bitflips += 1
            if request.coherent and self.llc is not None:
                yield self.env.timeout(self._coherent_service(request))
                if request.op == "load":
                    data = self.read_words(request.offset, request.words)
                    self.mesh.send(Packet(
                        src=self.coord,
                        dst=request.reply_to,
                        plane=DMA_RESPONSE_PLANE,
                        kind=MessageKind.DMA_RSP,
                        payload_flits=words_to_flits(
                            request.words, request.word_bits,
                            self.mesh.flit_bits(DMA_RESPONSE_PLANE)),
                        payload=data,
                        tag=request.tag,
                    ))
                else:
                    self.write_words(request.offset, request.data)
                    if self.parent_map is not None:
                        self.parent_map.store_retired()
                continue
            yield self.env.timeout(self._service_cycles(request.words))
            if request.op == "load":
                self.words_read += request.words
                self.load_transactions += 1
                data = self.read_words(request.offset, request.words)
                response = Packet(
                    src=self.coord,
                    dst=request.reply_to,
                    plane=DMA_RESPONSE_PLANE,
                    kind=MessageKind.DMA_RSP,
                    payload_flits=words_to_flits(
                        request.words, request.word_bits,
                        self.mesh.flit_bits(DMA_RESPONSE_PLANE)),
                    payload=data,
                    tag=request.tag,
                )
                self.mesh.send(response)
            else:
                self.words_written += request.words
                self.store_transactions += 1
                self.write_words(request.offset, request.data)
                if self.parent_map is not None:
                    self.parent_map.store_retired()


class MemoryMap:
    """Address routing across one or more memory tiles.

    Each tile owns a contiguous word range; ESP SoCs can host several
    memory tiles (Fig. 2 shows one), and DMA requests are routed to the
    owner of the address.
    """

    def __init__(self, tiles: List[MemoryTile]) -> None:
        if not tiles:
            raise ValueError("at least one memory tile required")
        self.tiles = list(tiles)
        self._bases: List[int] = []
        base = 0
        for tile in self.tiles:
            self._bases.append(base)
            tile.base_words = base
            base += tile.size_words
            tile.parent_map = self
        self.total_words = base
        # Posted-store quiescence tracking: DMA stores are posted (the
        # engine moves on once the NoC accepts the data), so a reader
        # that bypasses the memory tile's request queue — the CPU-side
        # result read of a serving loop — must first wait until every
        # posted store has landed. Counters only; zero simulation cost.
        self.stores_posted = 0
        self.stores_retired = 0
        self._stores_written_off = 0
        self._quiesce_waiters: List[Event] = []

    # -- posted-store quiescence ------------------------------------------

    @property
    def stores_in_flight(self) -> int:
        """Posted DMA stores not yet applied by a memory tile."""
        return max(0, self.stores_posted - self.stores_retired
                   - self._stores_written_off)

    def store_posted(self) -> None:
        """A DMA engine handed one store request to the NoC."""
        self.stores_posted += 1

    def store_retired(self) -> None:
        """A memory tile applied one posted store to its storage."""
        self.stores_retired += 1
        if self.stores_in_flight == 0:
            waiters, self._quiesce_waiters = self._quiesce_waiters, []
            for event in waiters:
                event.succeed()

    def write_off_in_flight(self) -> int:
        """Declare currently in-flight stores lost (fault recovery).

        A store whose request packet the NoC dropped will never retire;
        after a bounded quiesce gives up, writing the stragglers off
        keeps later quiesce waits from being poisoned forever. Returns
        how many stores were written off.
        """
        lost = self.stores_in_flight
        self._stores_written_off += lost
        if lost and self.stores_in_flight == 0:
            waiters, self._quiesce_waiters = self._quiesce_waiters, []
            for event in waiters:
                event.succeed()
        return lost

    def quiesce_event(self, env: Environment) -> Event:
        """Event that triggers once no posted store is in flight."""
        event = Event(env)
        if self.stores_in_flight == 0:
            event.succeed()
        else:
            event.wait_reason = (f"quiesce of {self.stores_in_flight} "
                                 f"in-flight posted stores")
            self._quiesce_waiters.append(event)
        return event

    def cancel_quiesce(self, event: Event) -> bool:
        """Withdraw a pending :meth:`quiesce_event` (bounded wait)."""
        try:
            self._quiesce_waiters.remove(event)
            return True
        except ValueError:
            return False

    def owner(self, offset: int) -> Tuple[MemoryTile, int]:
        """(tile, local_offset) owning the global word address."""
        if offset < 0 or offset >= self.total_words:
            raise ValueError(
                f"address {offset} outside {self.total_words}-word space")
        for tile, base in zip(reversed(self.tiles), reversed(self._bases)):
            if offset >= base:
                return tile, offset - base
        raise AssertionError("unreachable")

    def split_range(self, offset: int,
                    n_words: int) -> List[Tuple[MemoryTile, int, int]]:
        """Split [offset, offset+n) into per-tile (tile, local, words)."""
        if n_words < 1:
            raise ValueError(f"n_words must be >= 1, got {n_words}")
        out = []
        remaining = n_words
        cursor = offset
        while remaining > 0:
            tile, local = self.owner(cursor)
            available = tile.size_words - local
            take = min(remaining, available)
            out.append((tile, local, take))
            cursor += take
            remaining -= take
        return out

    def read_words(self, offset: int, n_words: int) -> np.ndarray:
        parts = [tile.read_words(local, words)
                 for tile, local, words in self.split_range(offset, n_words)]
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def write_words(self, offset: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float64).reshape(-1)
        cursor = 0
        for tile, local, words in self.split_range(offset, len(data)):
            tile.write_words(local, data[cursor:cursor + words])
            cursor += words

    @property
    def total_accesses(self) -> int:
        return sum(tile.total_accesses for tile in self.tiles)

    @property
    def words_read(self) -> int:
        return sum(tile.words_read for tile in self.tiles)

    @property
    def words_written(self) -> int:
        return sum(tile.words_written for tile in self.tiles)
