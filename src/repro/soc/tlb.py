"""Accelerator-tile TLB.

ESP accelerators address their data through a per-tile TLB holding the
scatter-gather list of the (physically scattered, virtually contiguous)
buffer allocated by ``esp_alloc`` (paper Sec. IV and [15]). The driver
preloads the TLB when it configures the accelerator, so steady-state
DMA transactions translate with a small fixed latency; a cold entry
costs a page-table walk to memory.

The paper's p2p support required "minor modifications" to this TLB —
here, p2p transactions bypass translation entirely (the payload rides
the NoC between tiles), which :class:`~repro.soc.dma.DmaEngine` models.
"""

from __future__ import annotations

from typing import Dict, Set


class Tlb:
    """Virtual page -> physical page translation with hit/miss costs."""

    def __init__(self, page_words: int = 1024, hit_latency: int = 1,
                 miss_latency: int = 40) -> None:
        if page_words < 1:
            raise ValueError(f"page_words must be >= 1, got {page_words}")
        self.page_words = page_words
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency
        self._entries: Set[int] = set()
        self.hits = 0
        self.misses = 0

    def preload(self, offset_words: int, n_words: int) -> None:
        """Driver-side TLB fill for a buffer (done at configuration)."""
        if n_words <= 0:
            return
        first = offset_words // self.page_words
        last = (offset_words + n_words - 1) // self.page_words
        self._entries.update(range(first, last + 1))

    def flush(self) -> None:
        self._entries.clear()

    def translate(self, offset_words: int, n_words: int) -> int:
        """Latency (cycles) to translate one DMA transaction.

        Every page the transaction touches is looked up; cold pages pay
        the walk and become warm.
        """
        if n_words <= 0:
            raise ValueError(f"n_words must be >= 1, got {n_words}")
        first = offset_words // self.page_words
        last = (offset_words + n_words - 1) // self.page_words
        latency = 0
        for page in range(first, last + 1):
            if page in self._entries:
                self.hits += 1
                latency += self.hit_latency
            else:
                self.misses += 1
                latency += self.miss_latency
                self._entries.add(page)
        return latency

    @property
    def entries(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries)}
