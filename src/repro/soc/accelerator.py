"""The accelerator tile: ESP socket around a synthesized kernel.

The socket (paper Fig. 2) provides the platform services the kernel
needs: configuration registers (written by the Linux driver over the
NoC), a DMA engine with TLB, private local memory, interrupt-request
logic, and — new in ESP4ML — the p2p communication service.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

from ..accelerators.base import AcceleratorSpec
from ..faults.errors import KernelCrash
from ..noc import IO_PLANE, Mesh2D, MessageKind, Packet
from ..sim import Environment, Event, Semaphore
from .coherence import CoherenceMode
from .dma import DmaEngine
from .memory import MemoryMap
from .registers import (
    CMD_REG,
    CMD_RESET,
    CMD_START,
    COHERENCE_REG,
    DVFS_REG,
    DST_OFFSET_REG,
    MAX_DVFS_DIVIDER,
    DST_STRIDE_REG,
    RegisterFile,
    SRC_OFFSET_REG,
    SRC_STRIDE_REG,
    STATUS_DONE,
    STATUS_ERROR,
    STATUS_IDLE,
    STATUS_RUNNING,
)
from .tlb import Tlb
from .wrapper import (InvocationConfig, InvocationResult,
                      wrapper_process, wrapper_process_double_buffered)

Coord = Tuple[int, int]

#: Register holding the number of frames of the current invocation
#: (the ``conf_size`` of Fig. 4, in frame units).
N_FRAMES_REG = "N_FRAMES_REG"


class RegWrite:
    """Payload of a REG_ACCESS packet (driver -> accelerator tile)."""

    def __init__(self, name: str, value: int) -> None:
        self.name = name
        self.value = value

    def __repr__(self) -> str:
        return f"RegWrite({self.name}={self.value})"


class RegRead:
    """Payload of a REG_ACCESS read request (driver -> tile)."""

    def __init__(self, name: str, reply_to: Coord, tag: str) -> None:
        self.name = name
        self.reply_to = reply_to
        self.tag = tag

    def __repr__(self) -> str:
        return f"RegRead({self.name})"


class RegReadReply:
    """Payload of a REG_ACCESS read response (tile -> driver)."""

    def __init__(self, name: str, value: int, tag: str) -> None:
        self.name = name
        self.value = value
        self.tag = tag


class AcceleratorTile:
    """One accelerator tile: socket + wrapper + kernel."""

    def __init__(self, env: Environment, mesh: Mesh2D, coord: Coord,
                 spec: AcceleratorSpec, memory_map: MemoryMap,
                 device_name: str, irq_dst: Coord,
                 tlb: Optional[Tlb] = None,
                 private_cache_words: Optional[int] = None) -> None:
        self.env = env
        self.mesh = mesh
        self.coord = coord
        self.spec = spec
        self.device_name = device_name
        self.irq_dst = irq_dst
        self.regs = RegisterFile(
            coord, user_registers=[N_FRAMES_REG, *spec.user_registers])
        self.dma = DmaEngine(env, mesh, coord, memory_map, tlb=tlb,
                             word_bits=spec.word_bits,
                             max_burst_words=max(spec.input_words,
                                                 spec.output_words),
                             private_cache_words=private_cache_words)
        self.dma.owner = device_name
        self._start = Semaphore(env, name=f"start:{device_name}")
        self.regs.on_write(self._on_reg_write)

        # Accounting.
        self.invocations: List[InvocationResult] = []
        self.frames_processed = 0
        self.busy_cycles = 0
        self.resets = 0
        self.kernel_crashes = 0

        # Fault hook (None = fault-free, zero overhead) and the reset
        # line the host pulls through CMD_RESET to abort a wedged run.
        self.fault_injector = None
        self._abort: Optional[Event] = None

        env.process(self._io_server(), name=f"io-server:{device_name}")
        env.process(self._run_loop(), name=f"run-loop:{device_name}")

    # -- NoC-facing ----------------------------------------------------------

    def _io_server(self):
        """Serve register accesses arriving on the IO plane."""
        inbox = self.mesh.inbox(self.coord, IO_PLANE)
        while True:
            packet = yield inbox.get()
            access = packet.payload
            if isinstance(access, RegWrite):
                self.regs.write(access.name, access.value)
            elif isinstance(access, RegRead):
                self.mesh.send(Packet(
                    src=self.coord, dst=access.reply_to, plane=IO_PLANE,
                    kind=MessageKind.REG_ACCESS, payload_flits=1,
                    payload=RegReadReply(access.name,
                                         self.regs.read(access.name),
                                         access.tag),
                    tag=access.tag))
            else:
                raise TypeError(
                    f"tile {self.coord} got unexpected IO payload "
                    f"{access!r}")

    def _on_reg_write(self, name: str, value: int) -> None:
        if name == CMD_REG and value == CMD_START:
            self._start.post()
        elif name == CMD_REG and value == CMD_RESET:
            self.host_reset()

    def _raise_irq(self) -> None:
        if self.env.tracer is not None:
            self.env.tracer.instant(self.device_name, "socket", "irq",
                                    "acc.irq", status=self.status)
        self.mesh.send(Packet(
            src=self.coord, dst=self.irq_dst, plane=IO_PLANE,
            kind=MessageKind.IRQ, payload_flits=0,
            payload=self.device_name, tag=self.device_name))

    # -- execution -------------------------------------------------------------

    def _snapshot_config(self) -> InvocationConfig:
        return InvocationConfig(
            src_offset=self.regs.read(SRC_OFFSET_REG),
            dst_offset=self.regs.read(DST_OFFSET_REG),
            n_frames=max(1, self.regs.read(N_FRAMES_REG)),
            p2p=self.regs.p2p_config(),
            src_stride=self.regs.read(SRC_STRIDE_REG),
            dst_stride=self.regs.read(DST_STRIDE_REG),
            coherence=CoherenceMode.from_register(
                self.regs.read(COHERENCE_REG)),
            clock_divider=min(MAX_DVFS_DIVIDER,
                              max(1, self.regs.read(DVFS_REG))),
        )

    def host_reset(self) -> None:
        """Abort the in-flight invocation and return the socket to idle.

        The hardware effect of writing ``CMD_RESET`` to ``CMD_REG``:
        the running kernel (hung or not) is abandoned, the socket DMA
        queues are flushed, pending start pulses are cleared, and
        ``STATUS_REG`` returns to idle so the driver can reprogram and
        restart the tile.
        """
        self.resets += 1
        if self.env.metrics is not None:
            self.env.metrics.acc_resets.labels(self.device_name).inc()
        self._start._value = 0   # clear start pulses posted while wedged
        if self._abort is not None and not self._abort.triggered:
            # Busy: pull the reset line; the run loop does the cleanup.
            self._abort.succeed()
        else:
            # Idle (or between invocations): clean up directly.
            self.dma.reset()
            self.regs._values[CMD_REG] = 0
            self.regs._values["STATUS_REG"] = STATUS_IDLE

    def _invocation_body(self, config: InvocationConfig, fault):
        """One wrapper run, possibly perturbed by an injected fault."""
        if fault is not None:
            if fault[0] == "hang":
                forever = self.env.event()
                forever.wait_reason = (f"injected kernel hang in "
                                       f"{self.device_name!r}")
                yield forever
            if fault[0] == "crash":
                yield self.env.timeout(1)
                raise KernelCrash(self.device_name)
            if fault[0] == "slow":
                # A latency spike: the kernel limps along as if the
                # tile clock were divided down by the spike factor.
                divider = min(MAX_DVFS_DIVIDER, max(
                    config.clock_divider + 1,
                    int(config.clock_divider * fault[1])))
                config = replace(config, clock_divider=divider)
        wrapper = wrapper_process_double_buffered \
            if self.spec.double_buffered else wrapper_process
        result = yield self.env.process(
            wrapper(self.env, self.spec, self.dma, config),
            name=f"wrapper:{self.device_name}")
        return result

    def _run_loop(self):
        """Idle -> start command -> wrapper run -> IRQ, forever.

        Each invocation runs as a child process raced against the
        socket's reset line, so a host CMD_RESET can abandon a hung or
        misbehaving kernel; a kernel crash is caught here and surfaces
        as a completion IRQ with ``STATUS_ERROR``.
        """
        env = self.env
        while True:
            yield self._start.wait()
            self.regs._values[CMD_REG] = 0
            self.regs._values["STATUS_REG"] = STATUS_RUNNING
            if env.metrics is not None:
                # Heartbeat: starting counts as progress, so a tile
                # that sat idle for a long time (a freshly activated
                # spare) is not instantly "stalled" on its first
                # invocation — quiet time is measured from the start,
                # not from whenever the tile last did work.
                env.metrics.acc_last_progress.labels(
                    self.device_name).set(env.now)
            config = self._snapshot_config()
            fault = None
            if self.fault_injector is not None:
                fault = self.fault_injector.acc_fault(self.device_name,
                                                      env.now)
            work = env.process(self._invocation_body(config, fault),
                               name=f"invocation:{self.device_name}")
            self._abort = env.event()
            abort = self._abort
            try:
                yield env.any_of([work, abort])
            except KernelCrash:
                self._abort = None
                self.kernel_crashes += 1
                if env.metrics is not None:
                    env.metrics.acc_crashes.labels(
                        self.device_name).inc()
                self.regs._values["STATUS_REG"] = STATUS_ERROR
                if env.tracer is not None:
                    env.tracer.instant(self.device_name, "socket",
                                       "kernel-crash", "acc.crash")
                self._raise_irq()
                continue
            self._abort = None
            if not work.triggered:
                # Reset won the race: abandon the invocation. The
                # zombie work process is defused so a late failure
                # cannot crash the simulation.
                work.__sim_defused__ = True
                self.dma.reset()
                self.regs._values[CMD_REG] = 0
                self.regs._values["STATUS_REG"] = STATUS_IDLE
                if env.tracer is not None:
                    env.tracer.instant(self.device_name, "socket",
                                       "host-reset", "acc.abort")
                continue
            result = work.value
            if env.tracer is not None:
                # Mirrors the invocation record exactly, so views built
                # from the tracer agree with views built from the socket
                # counters (the store-unification invariant).
                env.tracer.complete(
                    self.device_name, "socket", self.spec.name,
                    "acc.invocation", result.start_cycle,
                    result.end_cycle, device=self.device_name,
                    frames=result.frames)
            self.invocations.append(result)
            self.frames_processed += result.frames
            self.busy_cycles += result.cycles
            if env.metrics is not None:
                metrics = env.metrics
                metrics.acc_invocations.labels(self.device_name).inc()
                metrics.acc_invocation_cycles.labels(
                    self.device_name).observe(result.cycles)
                metrics.acc_last_progress.labels(
                    self.device_name).set(env.now)
            self.regs._values["STATUS_REG"] = STATUS_DONE
            self._raise_irq()

    # -- reporting ----------------------------------------------------------------

    @property
    def status(self) -> int:
        return self.regs.read("STATUS_REG")

    @property
    def is_idle(self) -> bool:
        return self.status in (STATUS_IDLE, STATUS_DONE)

    def utilization(self, elapsed: Optional[int] = None) -> float:
        span = elapsed if elapsed is not None else self.env.now
        return self.busy_cycles / span if span else 0.0

    def __repr__(self) -> str:
        return (f"<AcceleratorTile {self.device_name!r} at {self.coord} "
                f"spec={self.spec.name!r}>")
