"""Accelerator configuration registers.

Every ESP accelerator socket exposes memory-mapped registers; the
ESP4ML contribution adds two (paper Sec. IV):

- ``LOCATION_REG``: read-only x-y coordinates of the tile on the NoC,
  so the OS can map device names to mesh locations.
- ``P2P_REG``: p2p configuration — store enable, load enable, number of
  source tiles (1 to 4) and their x-y coordinates.

The register list of each accelerator is specified in an XML file in
the ESP integration flow; :mod:`repro.flow.xml_gen` emits it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

Coord = Tuple[int, int]

#: Standard register names present in every socket.
CMD_REG = "CMD_REG"
STATUS_REG = "STATUS_REG"
SRC_OFFSET_REG = "SRC_OFFSET_REG"
DST_OFFSET_REG = "DST_OFFSET_REG"
SRC_STRIDE_REG = "SRC_STRIDE_REG"
DST_STRIDE_REG = "DST_STRIDE_REG"
COHERENCE_REG = "COHERENCE_REG"
DVFS_REG = "DVFS_REG"
LOCATION_REG = "LOCATION_REG"
P2P_REG = "P2P_REG"

CMD_START = 1
#: Abort the in-flight invocation and return the socket to idle. The
#: robustness extension the runtime's watchdog relies on: a hung or
#: crashed kernel is abandoned, the socket DMA queues are flushed, and
#: the tile accepts a fresh CMD_START.
CMD_RESET = 2

#: COHERENCE_REG values: ESP accelerators select their coherence model
#: at run time (Giri et al. [12], [14]). ``COHERENCE_FULL`` selects the
#: fully-coherent model: a private cache at the accelerator tile kept
#: coherent over the NoC's three coherence planes
#: (:mod:`repro.soc.coherence`).
COHERENCE_NON_COHERENT = 0
COHERENCE_LLC = 1
COHERENCE_FULL = 2

STATUS_IDLE = 0
STATUS_RUNNING = 1
STATUS_DONE = 2
#: The invocation died (kernel crash): completion IRQ fires with this
#: status so the driver can distinguish failure from success.
STATUS_ERROR = 3

MAX_P2P_SOURCES = 4

#: DVFS_REG holds the tile's clock divider (1 = full speed). ESP pairs
#: each tile with a DVFS controller (Mantovani et al. [21], cited by
#: the paper); the divider stretches the accelerator's compute cycles
#: and scales its dynamic power down proportionally.
MAX_DVFS_DIVIDER = 16


@dataclass(frozen=True)
class P2PConfig:
    """Decoded contents of ``P2P_REG``."""

    store_enabled: bool = False
    load_enabled: bool = False
    sources: Tuple[Coord, ...] = ()

    def __post_init__(self) -> None:
        if self.load_enabled and not self.sources:
            raise ValueError("p2p load enabled but no source tiles given")
        if len(self.sources) > MAX_P2P_SOURCES:
            raise ValueError(
                f"at most {MAX_P2P_SOURCES} p2p sources supported, "
                f"got {len(self.sources)}")
        for x, y in self.sources:
            if not (0 <= x < 16 and 0 <= y < 16):
                raise ValueError(
                    f"source coordinate ({x},{y}) does not fit the "
                    f"4-bit x/y fields of P2P_REG")

    def encode(self) -> int:
        """Pack into the register encoding (64-bit).

        bit 0: store enable; bit 1: load enable; bits 2-4: number of
        sources minus one; bits 8+8i..15+8i: source i as (y << 4 | x).
        """
        value = int(self.store_enabled) | (int(self.load_enabled) << 1)
        if self.sources:
            value |= (len(self.sources) - 1) << 2
        for index, (x, y) in enumerate(self.sources):
            value |= ((y << 4) | x) << (8 + 8 * index)
        return value

    @classmethod
    def decode(cls, value: int) -> "P2PConfig":
        store_enabled = bool(value & 1)
        load_enabled = bool(value & 2)
        n_sources = ((value >> 2) & 0x7) + 1
        sources: List[Coord] = []
        if load_enabled:
            for index in range(n_sources):
                byte = (value >> (8 + 8 * index)) & 0xFF
                sources.append((byte & 0xF, byte >> 4))
        return cls(store_enabled=store_enabled, load_enabled=load_enabled,
                   sources=tuple(sources))

    @property
    def uses_p2p(self) -> bool:
        return self.store_enabled or self.load_enabled


def encode_location(coord: Coord) -> int:
    """``LOCATION_REG`` encoding: y in bits 4-7, x in bits 0-3."""
    x, y = coord
    return (y << 4) | x


def decode_location(value: int) -> Coord:
    return (value & 0xF, (value >> 4) & 0xF)


class RegisterFile:
    """The memory-mapped register bank of one accelerator socket."""

    def __init__(self, coord: Coord,
                 user_registers: Optional[List[str]] = None) -> None:
        self._values: Dict[str, int] = {
            CMD_REG: 0,
            STATUS_REG: STATUS_IDLE,
            SRC_OFFSET_REG: 0,
            DST_OFFSET_REG: 0,
            SRC_STRIDE_REG: 0,
            DST_STRIDE_REG: 0,
            COHERENCE_REG: COHERENCE_NON_COHERENT,
            DVFS_REG: 1,
            LOCATION_REG: encode_location(coord),
            P2P_REG: 0,
        }
        self._user_registers = tuple(user_registers or ())
        for name in self._user_registers:
            if name in self._values:
                raise ValueError(f"register name {name!r} collides with a "
                                 f"standard register")
            self._values[name] = 0
        self._write_hooks: List[Callable[[str, int], None]] = []

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._values)

    @property
    def user_registers(self) -> Tuple[str, ...]:
        return self._user_registers

    def on_write(self, hook: Callable[[str, int], None]) -> None:
        """Register a side-effect hook (the socket's start logic)."""
        self._write_hooks.append(hook)

    def read(self, name: str) -> int:
        if name not in self._values:
            raise KeyError(f"no register named {name!r}")
        return self._values[name]

    def write(self, name: str, value: int) -> None:
        if name not in self._values:
            raise KeyError(f"no register named {name!r}")
        if name == LOCATION_REG:
            raise PermissionError("LOCATION_REG is read-only")
        self._values[name] = int(value)
        for hook in self._write_hooks:
            hook(name, int(value))

    def p2p_config(self) -> P2PConfig:
        return P2PConfig.decode(self._values[P2P_REG])

    def set_p2p(self, config: P2PConfig) -> None:
        self.write(P2P_REG, config.encode())

    def location(self) -> Coord:
        return decode_location(self._values[LOCATION_REG])
