"""SoC configuration: the ``.esp_config`` of the ESP GUI flow.

The ESP graphic configuration interface lets the designer pick a mesh
size and assign each tile a role (processor, memory, accelerator,
auxiliary, empty). This module is the programmatic equivalent: a
validated floorplan description that the SoC builder turns into a
runnable instance ("bitstream").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..accelerators.base import AcceleratorSpec

Coord = Tuple[int, int]

TILE_KINDS = ("cpu", "mem", "acc", "aux", "empty")


@dataclass
class TileConfig:
    """One slot of the floorplan grid."""

    kind: str
    name: Optional[str] = None
    spec: Optional[AcceleratorSpec] = None
    mem_size_words: int = 1 << 22
    llc_words: int = 0          # >0: memory tile hosts an LLC
    #: Accelerator tiles: private-cache capacity for fully-coherent
    #: DMA (None = the repro.soc.coherence default).
    private_cache_words: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in TILE_KINDS:
            raise ValueError(
                f"tile kind must be one of {TILE_KINDS}, got {self.kind!r}")
        if self.kind == "acc":
            if self.spec is None:
                raise ValueError("accelerator tiles need a spec")
            if not self.name:
                raise ValueError("accelerator tiles need a device name")
        elif self.spec is not None:
            raise ValueError(f"{self.kind!r} tiles cannot carry a spec")


@dataclass
class SoCConfig:
    """A complete SoC floorplan plus global parameters."""

    cols: int
    rows: int
    name: str = "esp-soc"
    clock_mhz: float = 78.0
    tiles: Dict[Coord, TileConfig] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cols < 1 or self.rows < 1:
            raise ValueError("grid must be at least 1x1")
        if self.cols > 16 or self.rows > 16:
            raise ValueError("P2P_REG coordinate fields limit the mesh "
                             "to 16x16")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be > 0")

    # -- floorplan editing ----------------------------------------------------

    def _place(self, coord: Coord, tile: TileConfig) -> None:
        x, y = coord
        if not (0 <= x < self.cols and 0 <= y < self.rows):
            raise ValueError(f"{coord} outside the {self.cols}x{self.rows} "
                             f"grid")
        if coord in self.tiles:
            raise ValueError(f"tile {coord} already assigned "
                             f"({self.tiles[coord].kind})")
        self.tiles[coord] = tile

    def add_cpu(self, coord: Coord, name: str = "cpu") -> None:
        self._place(coord, TileConfig(kind="cpu", name=name))

    def add_memory(self, coord: Coord, size_words: int = 1 << 22,
                   llc_words: int = 0) -> None:
        """Place a memory tile; ``llc_words`` > 0 adds a last-level
        cache for LLC-coherent DMA."""
        self._place(coord, TileConfig(kind="mem", name="mem",
                                      mem_size_words=size_words,
                                      llc_words=llc_words))

    def add_aux(self, coord: Coord) -> None:
        self._place(coord, TileConfig(kind="aux", name="aux"))

    def add_accelerator(self, coord: Coord, name: str,
                        spec: AcceleratorSpec,
                        private_cache_words: Optional[int] = None) -> None:
        for existing in self.tiles.values():
            if existing.kind == "acc" and existing.name == name:
                raise ValueError(f"device name {name!r} already used")
        self._place(coord, TileConfig(
            kind="acc", name=name, spec=spec,
            private_cache_words=private_cache_words))

    def next_free(self) -> Coord:
        """First unassigned slot in row-major order."""
        for y in range(self.rows):
            for x in range(self.cols):
                if (x, y) not in self.tiles:
                    return (x, y)
        raise ValueError("floorplan is full")

    # -- queries ---------------------------------------------------------------

    def tiles_of_kind(self, kind: str) -> List[Tuple[Coord, TileConfig]]:
        return sorted(((c, t) for c, t in self.tiles.items()
                       if t.kind == kind),
                      key=lambda item: (item[0][1], item[0][0]))

    def accelerator_names(self) -> List[str]:
        return [t.name for _, t in self.tiles_of_kind("acc")]

    def validate(self) -> None:
        """Check the invariants the ESP GUI enforces before generation."""
        if not self.tiles_of_kind("cpu"):
            raise ValueError("SoC needs at least one processor tile")
        if not self.tiles_of_kind("mem"):
            raise ValueError("SoC needs at least one memory tile")
        names = self.accelerator_names()
        if len(names) != len(set(names)):
            raise ValueError("duplicate accelerator device names")

    def floorplan_text(self) -> str:
        """ASCII rendering of the grid (the GUI's tile map)."""
        rows = []
        for y in range(self.rows):
            cells = []
            for x in range(self.cols):
                tile = self.tiles.get((x, y))
                if tile is None:
                    cells.append("· empty ·".center(12))
                else:
                    label = tile.name or tile.kind
                    cells.append(f"{tile.kind}:{label}"[:12].center(12))
            rows.append("|" + "|".join(cells) + "|")
        return "\n".join(rows)
