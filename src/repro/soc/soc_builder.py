"""SoC generation: floorplan -> runnable instance (the "bitstream").

The ESP flow takes the validated configuration, generates wrappers,
routing tables, the FPGA bitstream and a bootable Linux image (paper
Sec. IV). Here generation produces a :class:`SoCInstance`: a live
simulation with all tiles instantiated on the NoC, ready to execute
software through the runtime layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..hls import ResourceEstimate
from ..noc import Mesh2D, NocReport, build_routing_table, collect_report
from ..sim import Environment
from .accelerator import AcceleratorTile
from .config import SoCConfig
from .llc import LastLevelCache
from .memory import MemoryMap, MemoryTile
from .processor import AuxTile, ProcessorTile

Coord = Tuple[int, int]

#: Socket/infrastructure cost per tile kind, added on top of the
#: accelerator kernels (NoC routers, wrapper FIFOs, DMA engine, regs).
TILE_OVERHEAD = {
    "cpu": ResourceEstimate(luts=150_000, ffs=120_000, brams=60, dsps=27),
    "mem": ResourceEstimate(luts=20_000, ffs=24_000, brams=8, dsps=0),
    "acc": ResourceEstimate(luts=17_000, ffs=19_000, brams=16, dsps=0),
    "aux": ResourceEstimate(luts=14_000, ffs=12_000, brams=12, dsps=0),
    "empty": ResourceEstimate(luts=1_500, ffs=2_000, brams=0, dsps=0),
}


@dataclass
class SoCInstance:
    """A built SoC: simulation environment plus tile handles."""

    name: str
    config: SoCConfig
    env: Environment
    mesh: Mesh2D
    cpu: ProcessorTile
    memory_map: MemoryMap
    accelerators: Dict[str, AcceleratorTile]
    aux_tiles: List[AuxTile]
    routing_tables: Dict[Coord, Dict[Coord, Coord]]

    @property
    def clock_mhz(self) -> float:
        return self.config.clock_mhz

    def cycles_to_seconds(self, cycles: int) -> float:
        return cycles / (self.clock_mhz * 1e6)

    @property
    def elapsed_seconds(self) -> float:
        return self.cycles_to_seconds(self.env.now)

    def run(self, until=None):
        """Advance the simulation (delegates to the environment)."""
        return self.env.run(until=until)

    def resources(self) -> ResourceEstimate:
        """Whole-SoC resource usage: kernels + sockets + infrastructure."""
        total = ResourceEstimate()
        for _, tile in self.config.tiles.items():
            total = total + TILE_OVERHEAD[tile.kind]
            if tile.kind == "acc" and tile.spec is not None:
                total = total + tile.spec.resources
        # Unassigned grid slots still instantiate NoC routers.
        unassigned = self.config.cols * self.config.rows \
            - len(self.config.tiles)
        for _ in range(unassigned):
            total = total + TILE_OVERHEAD["empty"]
        return total

    def noc_report(self) -> NocReport:
        return collect_report(self.mesh)

    def dram_accesses(self) -> int:
        """Total DRAM words moved (Fig. 8 metric)."""
        return self.memory_map.total_accesses

    def accelerator(self, name: str) -> AcceleratorTile:
        if name not in self.accelerators:
            raise KeyError(
                f"no accelerator named {name!r}; available: "
                f"{sorted(self.accelerators)}")
        return self.accelerators[name]


def build_soc(config: SoCConfig,
              env: Optional[Environment] = None,
              trace_links: bool = False) -> SoCInstance:
    """Generate a runnable SoC from a validated configuration.

    ``trace_links`` records per-link occupancy transitions so the run
    can be exported as a VCD waveform (:mod:`repro.soc.vcd`).
    """
    config.validate()
    env = env or Environment()
    mesh = Mesh2D(env, config.cols, config.rows,
                  trace_links=trace_links)

    cpu_tiles = config.tiles_of_kind("cpu")
    cpu_coord = cpu_tiles[0][0]

    memory_tiles: List[MemoryTile] = []
    for coord, tile in config.tiles_of_kind("mem"):
        llc = LastLevelCache(capacity_words=tile.llc_words) \
            if tile.llc_words else None
        memory_tiles.append(MemoryTile(env, mesh, coord,
                                       size_words=tile.mem_size_words,
                                       llc=llc))
    memory_map = MemoryMap(memory_tiles)

    cpu = ProcessorTile(env, mesh, cpu_coord)

    accelerators: Dict[str, AcceleratorTile] = {}
    for coord, tile in config.tiles_of_kind("acc"):
        accelerators[tile.name] = AcceleratorTile(
            env, mesh, coord, tile.spec, memory_map,
            device_name=tile.name, irq_dst=cpu_coord,
            private_cache_words=tile.private_cache_words)

    aux_tiles = [AuxTile(env, mesh, coord)
                 for coord, _ in config.tiles_of_kind("aux")]

    routing_tables = {coord: build_routing_table(coord, config.cols,
                                                 config.rows)
                      for coord in mesh.coords()}

    return SoCInstance(
        name=config.name,
        config=config,
        env=env,
        mesh=mesh,
        cpu=cpu,
        memory_map=memory_map,
        accelerators=accelerators,
        aux_tiles=aux_tiles,
        routing_tables=routing_tables,
    )
