"""Last-level cache model for LLC-coherent DMA.

ESP accelerators choose among cache-coherence models at run time
(Giri et al. [12], [14], cited by the paper): non-coherent DMA goes
straight to DRAM; LLC-coherent DMA allocates in a shared last-level
cache at the memory tile, which absorbs inter-accelerator traffic
whose working set fits. The paper's p2p service competes with exactly
this mechanism, so the reproduction models it: the coherence ablation
bench compares non-coherent DMA vs LLC-coherent DMA vs p2p.

The model is a set-associative write-back cache with LRU replacement,
tracked at cache-line granularity over the memory tile's word space.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple


class LastLevelCache:
    """Set-associative LRU cache over word addresses."""

    def __init__(self, capacity_words: int = 1 << 16,
                 line_words: int = 16, ways: int = 8,
                 hit_latency: int = 6) -> None:
        if capacity_words < line_words * ways:
            raise ValueError(
                f"capacity {capacity_words} below one set "
                f"({line_words} x {ways})")
        if capacity_words % (line_words * ways):
            raise ValueError("capacity must be a whole number of sets")
        self.capacity_words = capacity_words
        self.line_words = line_words
        self.ways = ways
        self.hit_latency = hit_latency
        self.n_sets = capacity_words // (line_words * ways)
        # Per set: line_tag -> dirty flag, in LRU order (oldest first).
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def _locate(self, word_addr: int) -> Tuple[OrderedDict, int]:
        line = word_addr // self.line_words
        return self._sets[line % self.n_sets], line

    def lines_of(self, offset: int, n_words: int) -> range:
        """Line numbers a [offset, offset+n) access touches."""
        first = offset // self.line_words
        last = (offset + n_words - 1) // self.line_words
        return range(first, last + 1)

    def access_line(self, line: int, write: bool) -> Tuple[bool, bool]:
        """Touch one line; returns (hit, writeback_needed)."""
        cache_set = self._sets[line % self.n_sets]
        writeback = False
        if line in cache_set:
            self.hits += 1
            cache_set[line] = cache_set[line] or write
            cache_set.move_to_end(line)
            return True, False
        self.misses += 1
        if len(cache_set) >= self.ways:
            _, dirty = cache_set.popitem(last=False)   # evict LRU
            self.evictions += 1
            if dirty:
                self.writebacks += 1
                writeback = True
        cache_set[line] = write
        return False, writeback

    def flush(self) -> int:
        """Write back every dirty line; returns the writeback count."""
        count = 0
        for cache_set in self._sets:
            for line, dirty in cache_set.items():
                if dirty:
                    count += 1
            cache_set.clear()
        self.writebacks += count
        return count

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "writebacks": self.writebacks,
                "resident_lines": self.resident_lines}
