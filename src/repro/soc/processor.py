"""Processor tile: the Ariane core running Linux and the auxiliary tile.

The SoC's software — the ESP4ML runtime and the accelerator device
drivers — executes on this tile. Simulation processes representing
software threads use its methods to touch accelerator registers over
the NoC IO plane and to wait for completion interrupts.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from ..noc import IO_PLANE, Mesh2D, MessageKind, Packet
from ..sim import Environment, Event, Fifo
from .accelerator import RegRead, RegReadReply, RegWrite

Coord = Tuple[int, int]


class ProcessorTile:
    """The CPU tile: register access initiator + interrupt controller."""

    def __init__(self, env: Environment, mesh: Mesh2D, coord: Coord,
                 name: str = "ariane-0") -> None:
        self.env = env
        self.mesh = mesh
        self.coord = coord
        self.name = name
        self._irq_queues: Dict[str, Fifo] = {}
        self._read_replies: Dict[str, Fifo] = {}
        self._read_tags = itertools.count()
        self.irqs_received = 0
        self.reg_writes = 0
        self.reg_reads = 0
        self.reg_read_timeouts = 0
        env.process(self._irq_dispatcher(), name=f"irq-dispatch:{name}")

    def _irq_queue(self, device_name: str) -> Fifo:
        queue = self._irq_queues.get(device_name)
        if queue is None:
            queue = Fifo(self.env, name=f"irq:{device_name}")
            self._irq_queues[device_name] = queue
        return queue

    def _irq_dispatcher(self):
        inbox = self.mesh.inbox(self.coord, IO_PLANE)
        while True:
            packet = yield inbox.get()
            if packet.kind is MessageKind.IRQ:
                self.irqs_received += 1
                yield self._irq_queue(packet.payload).put(packet)
            elif isinstance(packet.payload, RegReadReply):
                queue = self._read_replies.get(packet.tag)
                if queue is None:
                    queue = Fifo(self.env, name=f"rdrply:{packet.tag}")
                    self._read_replies[packet.tag] = queue
                yield queue.put(packet.payload)
            else:
                raise TypeError(
                    f"processor tile got unexpected {packet.kind} on the "
                    f"IO plane")

    def write_reg(self, tile_coord: Coord, name: str, value: int):
        """Uncached MMIO store to an accelerator register (generator).

        Completes when the write packet reaches the tile, which is when
        the hardware applies it — so a sequence of yielded writes is
        applied in program order.
        """
        self.reg_writes += 1
        yield self.mesh.send(Packet(
            src=self.coord, dst=tile_coord, plane=IO_PLANE,
            kind=MessageKind.REG_ACCESS, payload_flits=1,
            payload=RegWrite(name, value), tag=name))

    def read_reg(self, tile_coord: Coord, name: str):
        """Uncached MMIO load: round trip over the IO plane (generator).

        Returns the register value. Used by polling-mode drivers that
        spin on ``STATUS_REG`` instead of sleeping on the interrupt.
        """
        self.reg_reads += 1
        tag = f"rd{next(self._read_tags)}"
        queue = Fifo(self.env, name=f"rdrply:{tag}")
        self._read_replies[tag] = queue
        self.mesh.send(Packet(
            src=self.coord, dst=tile_coord, plane=IO_PLANE,
            kind=MessageKind.REG_ACCESS, payload_flits=1,
            payload=RegRead(name, reply_to=self.coord, tag=tag),
            tag=tag))
        reply = yield queue.get()
        del self._read_replies[tag]
        return reply.value

    def read_reg_bounded(self, tile_coord: Coord, name: str,
                         max_cycles: int):
        """MMIO load with a watchdog: ``None`` when no reply arrives.

        The robust variant of :meth:`read_reg` — a lost reply packet
        (or a dead tile) surfaces as a ``None`` return after
        ``max_cycles`` instead of blocking the calling thread forever.
        """
        if max_cycles < 1:
            raise ValueError(f"max_cycles must be >= 1, got {max_cycles}")
        self.reg_reads += 1
        tag = f"rd{next(self._read_tags)}"
        queue = Fifo(self.env, name=f"rdrply:{tag}")
        self._read_replies[tag] = queue
        self.mesh.send(Packet(
            src=self.coord, dst=tile_coord, plane=IO_PLANE,
            kind=MessageKind.REG_ACCESS, payload_flits=1,
            payload=RegRead(name, reply_to=self.coord, tag=tag),
            tag=tag))
        reply_event = queue.get()
        watchdog = self.env.timeout(max_cycles)
        yield self.env.any_of([reply_event, watchdog])
        if not reply_event.triggered:
            # Give up: withdraw the getter so a late reply parks in the
            # (now orphaned) queue instead of resuming a dead waiter.
            queue.cancel(reply_event)
            del self._read_replies[tag]
            self.reg_read_timeouts += 1
            return None
        del self._read_replies[tag]
        return reply_event.value.value

    def wait_irq(self, device_name: str):
        """Block until the named device raises its interrupt."""
        yield self._irq_queue(device_name).get()

    # -- watchdog-friendly IRQ interface ---------------------------------

    def irq_event(self, device_name: str) -> Event:
        """A get event on the device's IRQ queue (for any_of races).

        The executor's watchdog yields ``any_of([irq_event, timeout])``
        instead of blocking unconditionally in :meth:`wait_irq`; on
        timeout it must withdraw the event with :meth:`cancel_irq`.
        """
        return self._irq_queue(device_name).get()

    def cancel_irq(self, device_name: str, event: Event) -> bool:
        """Withdraw a pending :meth:`irq_event` (watchdog expired)."""
        return self._irq_queue(device_name).cancel(event)

    def try_irq(self, device_name: str) -> Optional[Packet]:
        """Non-blocking IRQ poll; drains one stale interrupt if any."""
        return self._irq_queue(device_name).try_get()


class AuxTile:
    """Auxiliary tile (debug link, frame buffer, timers).

    Takes part in the floorplan but has no behaviour the experiments
    exercise; ESP SoCs always carry one (Fig. 2).
    """

    def __init__(self, env: Environment, mesh: Mesh2D, coord: Coord) -> None:
        self.env = env
        self.mesh = mesh
        self.coord = coord

    def __repr__(self) -> str:
        return f"<AuxTile at {self.coord}>"
