"""Accelerator-tile DMA engine with the ESP4ML p2p extension.

Regular DMA (paper Sec. II): load/store transactions travel to the
memory tile on the dma-req plane; load data returns on the dma-rsp
plane. The two planes are decoupled to prevent deadlock.

The p2p service (paper Sec. IV) remaps those transactions onto
tile-to-tile transfers *reusing the same two planes* and the queues
that are otherwise idle during regular DMA:

- all p2p transactions are **on-demand**: the receiver sends a p2p load
  request (dma-req plane) to the source tile; the sender holds produced
  data in an otherwise-unused shallow queue and only forwards it
  (dma-rsp plane) when a request arrives;
- the receiver "will only request data when it has enough space to
  store it locally", which guarantees the consumption assumption: long
  packets never stall in the NoC waiting for a busy consumer;
- a receiver may gather from 1 to 4 source tiles (``P2P_REG``); loads
  round-robin across them.

This is all transparent to the accelerator kernel: the wrapper calls
``load``/``store`` the same way in both modes.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..fixed import words_to_flits
from ..noc import (
    DMA_REQUEST_PLANE,
    DMA_RESPONSE_PLANE,
    Mesh2D,
    MessageKind,
    Packet,
)
from ..sim import Environment, Fifo
from .memory import DmaRequest, MemoryMap
from .registers import P2PConfig
from .tlb import Tlb

Coord = Tuple[int, int]

#: Depth of the reused p2p store queue (shallow, per the paper: "we
#: carefully reused available queues in the ESP accelerator tile").
P2P_QUEUE_DEPTH = 2


@dataclass
class P2PLoadRequest:
    """Payload of a P2P_REQ packet (receiver -> sender tile)."""

    words: int
    word_bits: int
    reply_to: Coord
    tag: str


class DmaEngine:
    """The DMA controller inside one accelerator socket."""

    def __init__(self, env: Environment, mesh: Mesh2D, coord: Coord,
                 memory_map: MemoryMap, tlb: Optional[Tlb] = None,
                 word_bits: int = 16, max_burst_words: int = 1024) -> None:
        if max_burst_words < 1:
            raise ValueError("max_burst_words must be >= 1")
        self.env = env
        self.mesh = mesh
        self.coord = coord
        self.memory_map = memory_map
        self.tlb = tlb or Tlb()
        self.word_bits = word_bits
        self.max_burst_words = max_burst_words

        self._tag_counter = itertools.count()
        self._responses: Dict[str, Fifo] = {}
        self._p2p_round_robin = 0

        # p2p sender side: produced chunks wait here, on demand.
        self._p2p_store_queue = Fifo(env, capacity=P2P_QUEUE_DEPTH,
                                     name=f"p2p-store{coord}")

        # Statistics.
        self.dma_loads = 0
        self.dma_stores = 0
        self.p2p_loads = 0
        self.p2p_stores = 0
        self.words_loaded = 0
        self.words_stored = 0

        # Fault hook (None = fault-free, zero overhead).
        self.fault_injector = None

        # Trace label: the owning tile overwrites this with its device
        # name so spans group under the tile in the trace viewer.
        self.owner = f"tile{coord}"

        env.process(self._response_dispatcher(),
                    name=f"dma-rsp-dispatch{coord}")
        env.process(self._p2p_server(), name=f"p2p-server{coord}")

    # -- plumbing ----------------------------------------------------------

    def _new_tag(self) -> str:
        return f"{self.coord[0]}.{self.coord[1]}:{next(self._tag_counter)}"

    def _response_queue(self, tag: str) -> Fifo:
        queue = self._responses.get(tag)
        if queue is None:
            queue = Fifo(self.env, name=f"rsp:{tag}")
            self._responses[tag] = queue
        return queue

    def _response_dispatcher(self):
        """Demultiplex dma-rsp packets (DMA and p2p data) by tag."""
        inbox = self.mesh.inbox(self.coord, DMA_RESPONSE_PLANE)
        while True:
            packet = yield inbox.get()
            yield self._response_queue(packet.tag).put(packet)

    def _flits(self, words: int, plane: str) -> int:
        return words_to_flits(words, self.word_bits,
                              self.mesh.flit_bits(plane))

    def _record_transaction(self, metrics, op: str, words: int) -> None:
        """One completed transaction into the live metrics registry.

        Also refreshes the owner's last-progress heartbeat gauge — the
        signal the accelerator-stall health rule watches: a hung kernel
        or wedged DMA engine stops completing transactions, so the
        heartbeat goes quiet while ``STATUS_REG`` still reads RUNNING.
        """
        owner = self.owner
        metrics.dma_transactions.labels(owner, op).inc()
        metrics.dma_words.labels(owner, op).inc(words)
        metrics.acc_last_progress.labels(owner).set(self.env.now)

    def _maybe_stall(self):
        """Injected engine stall before a transaction (generator).

        A finite stall delays the transaction; an infinite one wedges
        the engine on an event that never triggers — exactly how a dead
        DMA controller looks to software, recovered by the runtime
        watchdog.
        """
        stall = self.fault_injector.dma_stall(self.coord, self.env.now)
        if stall is None:
            return
        if self.env.metrics is not None:
            self.env.metrics.dma_stalls.labels(self.owner).inc()
        if stall < 0:   # FaultInjector.HANG
            forever = self.env.event()
            forever.wait_reason = (f"injected dma hang at tile "
                                   f"{self.coord}")
            yield forever
        else:
            yield self.env.timeout(stall)

    def reset(self) -> int:
        """Hardware reset of the engine's queues (socket CMD_RESET).

        Discards parked p2p chunks, abandoned putters and stale
        response queues so a recovered tile starts its next invocation
        from a clean slate. Returns the number of discarded items.
        """
        dropped = self._p2p_store_queue.flush()
        for queue in self._responses.values():
            dropped += queue.flush()
        self._responses.clear()
        self._p2p_round_robin = 0
        return dropped

    # -- regular DMA ---------------------------------------------------------

    def _dma_load(self, offset: int, n_words: int,
                  coherent: bool = False):
        tracer = self.env.tracer
        sid = None if tracer is None else tracer.begin(
            self.owner, "dma.load", f"load[{n_words}w]", "dma.load",
            offset=offset, words=n_words, coherent=coherent)
        if self.fault_injector is not None:
            yield from self._maybe_stall()
        yield self.env.timeout(self.tlb.translate(offset, n_words))
        pending = []
        cursor = offset
        remaining = n_words
        while remaining > 0:
            burst = min(remaining, self.max_burst_words)
            for tile, local, words in self.memory_map.split_range(cursor,
                                                                  burst):
                tag = self._new_tag()
                request = DmaRequest(op="load", offset=local, words=words,
                                     word_bits=self.word_bits,
                                     reply_to=self.coord, tag=tag,
                                     coherent=coherent)
                self.mesh.send(Packet(
                    src=self.coord, dst=tile.coord,
                    plane=DMA_REQUEST_PLANE, kind=MessageKind.DMA_REQ,
                    payload_flits=0, payload=request, tag=tag))
                pending.append(tag)
            cursor += burst
            remaining -= burst
        parts = []
        for tag in pending:
            packet = yield self._response_queue(tag).get()
            parts.append(np.asarray(packet.payload))
            del self._responses[tag]
        self.dma_loads += 1
        self.words_loaded += n_words
        metrics = self.env.metrics
        if metrics is not None:
            self._record_transaction(metrics, "dma_load", n_words)
        if sid is not None:
            tracer.end(sid)
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def _dma_store(self, offset: int, data: np.ndarray,
                   coherent: bool = False):
        data = np.asarray(data, dtype=np.float64).reshape(-1)
        n_words = len(data)
        tracer = self.env.tracer
        sid = None if tracer is None else tracer.begin(
            self.owner, "dma.store", f"store[{n_words}w]", "dma.store",
            offset=offset, words=n_words, coherent=coherent)
        if self.fault_injector is not None:
            yield from self._maybe_stall()
        yield self.env.timeout(self.tlb.translate(offset, n_words))
        sends = []
        cursor = offset
        position = 0
        while position < n_words:
            burst = min(n_words - position, self.max_burst_words)
            for tile, local, words in self.memory_map.split_range(cursor,
                                                                  burst):
                chunk = data[position:position + words]
                request = DmaRequest(op="store", offset=local, words=words,
                                     word_bits=self.word_bits,
                                     reply_to=self.coord,
                                     tag=self._new_tag(), data=chunk,
                                     coherent=coherent)
                packet = Packet(
                    src=self.coord, dst=tile.coord,
                    plane=DMA_REQUEST_PLANE, kind=MessageKind.DMA_REQ,
                    payload_flits=self._flits(words, DMA_REQUEST_PLANE),
                    payload=request, tag=request.tag)
                # Posted-store tracking for memory quiescence: counted
                # here, retired when the memory tile applies the write
                # (or immediately if the NoC loses the packet).
                self.memory_map.store_posted()
                packet.on_lost = self.memory_map.store_retired
                sends.append(self.mesh.send(packet))
                position += words
                cursor += words
        # Stores are posted: completion is the NoC accepting the data
        # (the memory tile serializes writes ahead of subsequent reads
        # because its request queue is FIFO).
        for send in sends:
            yield send
        self.dma_stores += 1
        self.words_stored += n_words
        metrics = self.env.metrics
        if metrics is not None:
            self._record_transaction(metrics, "dma_store", n_words)
        if sid is not None:
            tracer.end(sid)
        return None

    # -- p2p -------------------------------------------------------------------

    def _p2p_load(self, n_words: int, p2p: P2PConfig):
        """Receiver side: on-demand request to the next source tile."""
        source = p2p.sources[self._p2p_round_robin % len(p2p.sources)]
        self._p2p_round_robin += 1
        tracer = self.env.tracer
        sid = None if tracer is None else tracer.begin(
            self.owner, "dma.load", f"p2p-load[{n_words}w]",
            "dma.p2p_load", source=str(source), words=n_words)
        tag = self._new_tag()
        request = P2PLoadRequest(words=n_words, word_bits=self.word_bits,
                                 reply_to=self.coord, tag=tag)
        lost = (self.fault_injector is not None
                and self.fault_injector.p2p_req_lost(self.coord,
                                                     self.env.now))
        if not lost:
            # A lost request never reaches the sender: the receiver
            # blocks on a response that will not come and the runtime
            # watchdog recovers the stream.
            self.mesh.send(Packet(
                src=self.coord, dst=source, plane=DMA_REQUEST_PLANE,
                kind=MessageKind.P2P_REQ, payload_flits=0, payload=request,
                tag=tag))
        packet = yield self._response_queue(tag).get()
        del self._responses[tag]
        self.p2p_loads += 1
        self.words_loaded += n_words
        metrics = self.env.metrics
        if metrics is not None:
            self._record_transaction(metrics, "p2p_load", n_words)
        if sid is not None:
            tracer.end(sid)
        return np.asarray(packet.payload)

    def _p2p_store(self, data: np.ndarray):
        """Sender side: park the chunk until a receiver asks for it.

        Blocks when the shallow queue is full — this is the hardware
        backpressure that keeps long packets out of the NoC until the
        downstream accelerator is ready (consumption assumption).
        """
        data = np.asarray(data, dtype=np.float64).reshape(-1)
        tracer = self.env.tracer
        sid = None if tracer is None else tracer.begin(
            self.owner, "dma.store", f"p2p-store[{len(data)}w]",
            "dma.p2p_store", words=len(data))
        yield self._p2p_store_queue.put(data)
        self.p2p_stores += 1
        self.words_stored += len(data)
        metrics = self.env.metrics
        if metrics is not None:
            self._record_transaction(metrics, "p2p_store", len(data))
        if sid is not None:
            tracer.end(sid)
        return None

    def _p2p_server(self):
        """Sender side: answer p2p load requests with parked chunks."""
        inbox = self.mesh.inbox(self.coord, DMA_REQUEST_PLANE)
        while True:
            packet = yield inbox.get()
            request = packet.payload
            if not isinstance(request, P2PLoadRequest):
                raise TypeError(
                    f"accelerator tile {self.coord} received unexpected "
                    f"request {request!r} on the DMA request plane")
            tracer = self.env.tracer
            sid = None if tracer is None else tracer.begin(
                self.owner, "p2p-server", f"serve[{request.words}w]",
                "dma.p2p_serve", reply_to=str(request.reply_to),
                words=request.words)
            chunk = yield self._p2p_store_queue.get()
            if len(chunk) != request.words:
                raise ValueError(
                    f"p2p size mismatch at {self.coord}: receiver asked "
                    f"for {request.words} words, producer parked "
                    f"{len(chunk)}")
            self.mesh.send(Packet(
                src=self.coord, dst=request.reply_to,
                plane=DMA_RESPONSE_PLANE, kind=MessageKind.P2P_RSP,
                payload_flits=self._flits(request.words,
                                          DMA_RESPONSE_PLANE),
                payload=chunk, tag=request.tag))
            if sid is not None:
                tracer.end(sid)

    # -- public API (what the wrapper calls) -------------------------------------

    def reset_p2p_rotation(self) -> None:
        """Restart the round-robin source pointer (new invocation)."""
        self._p2p_round_robin = 0

    def load(self, offset: int, n_words: int,
             p2p: Optional[P2PConfig] = None, coherent: bool = False):
        """Load ``n_words`` into the PLM; DMA or p2p per configuration.

        ``coherent`` selects LLC-coherent DMA (served through the
        memory tile's last-level cache when one exists). A generator to
        be driven with ``yield from``; returns the data.
        """
        if n_words < 1:
            raise ValueError(f"n_words must be >= 1, got {n_words}")
        if p2p is not None and p2p.load_enabled:
            return (yield from self._p2p_load(n_words, p2p))
        return (yield from self._dma_load(offset, n_words,
                                          coherent=coherent))

    def store(self, offset: int, data: np.ndarray,
              p2p: Optional[P2PConfig] = None, coherent: bool = False):
        """Store a PLM buffer; DMA or p2p per configuration."""
        if p2p is not None and p2p.store_enabled:
            return (yield from self._p2p_store(data))
        return (yield from self._dma_store(offset, data,
                                           coherent=coherent))
