"""Accelerator-tile DMA engine with the ESP4ML p2p extension.

Regular DMA (paper Sec. II): load/store transactions travel to the
memory tile on the dma-req plane; load data returns on the dma-rsp
plane. The two planes are decoupled to prevent deadlock.

The p2p service (paper Sec. IV) remaps those transactions onto
tile-to-tile transfers *reusing the same two planes* and the queues
that are otherwise idle during regular DMA:

- all p2p transactions are **on-demand**: the receiver sends a p2p load
  request (dma-req plane) to the source tile; the sender holds produced
  data in an otherwise-unused shallow queue and only forwards it
  (dma-rsp plane) when a request arrives;
- the receiver "will only request data when it has enough space to
  store it locally", which guarantees the consumption assumption: long
  packets never stall in the NoC waiting for a busy consumer;
- a receiver may gather from 1 to 4 source tiles (``P2P_REG``); loads
  round-robin across them.

This is all transparent to the accelerator kernel: the wrapper calls
``load``/``store`` the same way in both modes.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..fixed import words_to_flits
from ..noc import (
    COH_FORWARD_PLANE,
    COH_REQUEST_PLANE,
    COH_RESPONSE_PLANE,
    DMA_REQUEST_PLANE,
    DMA_RESPONSE_PLANE,
    Mesh2D,
    MessageKind,
    Packet,
)
from ..sim import Environment, Fifo
from .coherence import (
    CoherenceMode,
    CoherenceReply,
    CoherenceRequest,
    CoherenceWriteback,
    DEFAULT_PRIVATE_CACHE_WORDS,
    EXCLUSIVE,
    InvalidateAck,
    InvalidateRequest,
    MODIFIED,
    PrivateCache,
    SHARED,
    line_list_flits,
    resolve_coherence,
)
from .memory import DmaRequest, MemoryMap, MemoryTile
from .registers import P2PConfig
from .tlb import Tlb

Coord = Tuple[int, int]

#: Depth of the reused p2p store queue (shallow, per the paper: "we
#: carefully reused available queues in the ESP accelerator tile").
P2P_QUEUE_DEPTH = 2


@dataclass
class P2PLoadRequest:
    """Payload of a P2P_REQ packet (receiver -> sender tile)."""

    words: int
    word_bits: int
    reply_to: Coord
    tag: str


class DmaEngine:
    """The DMA controller inside one accelerator socket."""

    def __init__(self, env: Environment, mesh: Mesh2D, coord: Coord,
                 memory_map: MemoryMap, tlb: Optional[Tlb] = None,
                 word_bits: int = 16, max_burst_words: int = 1024,
                 private_cache_words: Optional[int] = None) -> None:
        if max_burst_words < 1:
            raise ValueError("max_burst_words must be >= 1")
        self.env = env
        self.mesh = mesh
        self.coord = coord
        self.memory_map = memory_map
        self.tlb = tlb or Tlb()
        self.word_bits = word_bits
        self.max_burst_words = max_burst_words

        self._tag_counter = itertools.count()
        self._responses: Dict[str, Fifo] = {}
        self._p2p_round_robin = 0

        # p2p sender side: produced chunks wait here, on demand.
        self._p2p_store_queue = Fifo(env, capacity=P2P_QUEUE_DEPTH,
                                     name=f"p2p-store{coord}")

        # Fully-coherent machinery, created lazily on the first
        # fully-coherent transaction (never at SoC build: the pinned
        # seed event counts require a mode nobody uses to cost zero
        # processes). ``private_cache_words`` sizes the tile's private
        # cache (None = DEFAULT_PRIVATE_CACHE_WORDS).
        self.private_cache_words = private_cache_words
        self.cache: Optional[PrivateCache] = None
        self.coherence_downgrades = 0

        # Statistics.
        self.dma_loads = 0
        self.dma_stores = 0
        self.p2p_loads = 0
        self.p2p_stores = 0
        self.words_loaded = 0
        self.words_stored = 0

        # Fault hook (None = fault-free, zero overhead).
        self.fault_injector = None

        # Trace label: the owning tile overwrites this with its device
        # name so spans group under the tile in the trace viewer.
        self.owner = f"tile{coord}"

        env.process(self._response_dispatcher(),
                    name=f"dma-rsp-dispatch{coord}")
        env.process(self._p2p_server(), name=f"p2p-server{coord}")

    # -- plumbing ----------------------------------------------------------

    def _new_tag(self) -> str:
        return f"{self.coord[0]}.{self.coord[1]}:{next(self._tag_counter)}"

    def _response_queue(self, tag: str) -> Fifo:
        queue = self._responses.get(tag)
        if queue is None:
            queue = Fifo(self.env, name=f"rsp:{tag}")
            self._responses[tag] = queue
        return queue

    def _response_dispatcher(self):
        """Demultiplex dma-rsp packets (DMA and p2p data) by tag."""
        inbox = self.mesh.inbox(self.coord, DMA_RESPONSE_PLANE)
        while True:
            packet = yield inbox.get()
            yield self._response_queue(packet.tag).put(packet)

    def _flits(self, words: int, plane: str) -> int:
        return words_to_flits(words, self.word_bits,
                              self.mesh.flit_bits(plane))

    def _record_transaction(self, metrics, op: str, words: int) -> None:
        """One completed transaction into the live metrics registry.

        Also refreshes the owner's last-progress heartbeat gauge — the
        signal the accelerator-stall health rule watches: a hung kernel
        or wedged DMA engine stops completing transactions, so the
        heartbeat goes quiet while ``STATUS_REG`` still reads RUNNING.
        """
        owner = self.owner
        metrics.dma_transactions.labels(owner, op).inc()
        metrics.dma_words.labels(owner, op).inc(words)
        metrics.acc_last_progress.labels(owner).set(self.env.now)

    def _maybe_stall(self):
        """Injected engine stall before a transaction (generator).

        A finite stall delays the transaction; an infinite one wedges
        the engine on an event that never triggers — exactly how a dead
        DMA controller looks to software, recovered by the runtime
        watchdog.
        """
        stall = self.fault_injector.dma_stall(self.coord, self.env.now)
        if stall is None:
            return
        if self.env.metrics is not None:
            self.env.metrics.dma_stalls.labels(self.owner).inc()
        if stall < 0:   # FaultInjector.HANG
            forever = self.env.event()
            forever.wait_reason = (f"injected dma hang at tile "
                                   f"{self.coord}")
            yield forever
        else:
            yield self.env.timeout(stall)

    def reset(self) -> int:
        """Hardware reset of the engine's queues (socket CMD_RESET).

        Discards parked p2p chunks, abandoned putters and stale
        response queues so a recovered tile starts its next invocation
        from a clean slate. Returns the number of discarded items.
        """
        dropped = self._p2p_store_queue.flush()
        for queue in self._responses.values():
            dropped += queue.flush()
        self._responses.clear()
        self._p2p_round_robin = 0
        if self.cache is not None:
            # A hardware reset drops the private cache; the functional
            # data lives in the backing store, so nothing is lost —
            # stale directory state resolves as empty-handed
            # invalidation acks later.
            self.cache.flush()
        return dropped

    # -- regular DMA ---------------------------------------------------------

    def _dma_load(self, offset: int, n_words: int,
                  coherent: bool = False):
        tracer = self.env.tracer
        sid = None if tracer is None else tracer.begin(
            self.owner, "dma.load", f"load[{n_words}w]", "dma.load",
            offset=offset, words=n_words, coherent=coherent)
        if self.fault_injector is not None:
            yield from self._maybe_stall()
        yield self.env.timeout(self.tlb.translate(offset, n_words))
        pending = []
        cursor = offset
        remaining = n_words
        while remaining > 0:
            burst = min(remaining, self.max_burst_words)
            for tile, local, words in self.memory_map.split_range(cursor,
                                                                  burst):
                tag = self._new_tag()
                request = DmaRequest(op="load", offset=local, words=words,
                                     word_bits=self.word_bits,
                                     reply_to=self.coord, tag=tag,
                                     coherent=coherent)
                self.mesh.send(Packet(
                    src=self.coord, dst=tile.coord,
                    plane=DMA_REQUEST_PLANE, kind=MessageKind.DMA_REQ,
                    payload_flits=0, payload=request, tag=tag))
                pending.append(tag)
            cursor += burst
            remaining -= burst
        parts = []
        for tag in pending:
            packet = yield self._response_queue(tag).get()
            parts.append(np.asarray(packet.payload))
            del self._responses[tag]
        self.dma_loads += 1
        self.words_loaded += n_words
        metrics = self.env.metrics
        if metrics is not None:
            self._record_transaction(metrics, "dma_load", n_words)
        if sid is not None:
            tracer.end(sid)
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def _dma_store(self, offset: int, data: np.ndarray,
                   coherent: bool = False):
        data = np.asarray(data, dtype=np.float64).reshape(-1)
        n_words = len(data)
        tracer = self.env.tracer
        sid = None if tracer is None else tracer.begin(
            self.owner, "dma.store", f"store[{n_words}w]", "dma.store",
            offset=offset, words=n_words, coherent=coherent)
        if self.fault_injector is not None:
            yield from self._maybe_stall()
        yield self.env.timeout(self.tlb.translate(offset, n_words))
        sends = []
        cursor = offset
        position = 0
        while position < n_words:
            burst = min(n_words - position, self.max_burst_words)
            for tile, local, words in self.memory_map.split_range(cursor,
                                                                  burst):
                chunk = data[position:position + words]
                request = DmaRequest(op="store", offset=local, words=words,
                                     word_bits=self.word_bits,
                                     reply_to=self.coord,
                                     tag=self._new_tag(), data=chunk,
                                     coherent=coherent)
                packet = Packet(
                    src=self.coord, dst=tile.coord,
                    plane=DMA_REQUEST_PLANE, kind=MessageKind.DMA_REQ,
                    payload_flits=self._flits(words, DMA_REQUEST_PLANE),
                    payload=request, tag=request.tag)
                # Posted-store tracking for memory quiescence: counted
                # here, retired when the memory tile applies the write
                # (or immediately if the NoC loses the packet).
                self.memory_map.store_posted()
                packet.on_lost = self.memory_map.store_retired
                sends.append(self.mesh.send(packet))
                position += words
                cursor += words
        # Stores are posted: completion is the NoC accepting the data
        # (the memory tile serializes writes ahead of subsequent reads
        # because its request queue is FIFO).
        for send in sends:
            yield send
        self.dma_stores += 1
        self.words_stored += n_words
        metrics = self.env.metrics
        if metrics is not None:
            self._record_transaction(metrics, "dma_store", n_words)
        if sid is not None:
            tracer.end(sid)
        return None

    # -- fully-coherent (private cache + MESI-style protocol) ------------------

    def _fc_supported(self, offset: int, n_words: int) -> bool:
        """Every memory tile owning the range hosts an LLC (the
        directory point); without one the fabric downgrades the
        request to non-coherent DMA, as ESP does for coherence models
        a tile was not built with."""
        return all(tile.llc is not None for tile, _, _ in
                   self.memory_map.split_range(offset, n_words))

    def _ensure_fc(self) -> PrivateCache:
        """First fully-coherent transaction: build the private cache
        and spawn the tile's two protocol servers (lazily, so unused
        coherence machinery costs zero events)."""
        if self.cache is None:
            line_words = 16
            for tile in self.memory_map.tiles:
                if tile.llc is not None:
                    line_words = tile.llc.line_words
                    break
            self.cache = PrivateCache(
                capacity_words=self.private_cache_words
                or DEFAULT_PRIVATE_CACHE_WORDS,
                line_words=line_words)
            self.env.process(self._fc_rsp_dispatcher(),
                             name=f"coh-rsp-dispatch{self.coord}")
            self.env.process(self._fc_inv_server(),
                             name=f"coh-inv-server{self.coord}")
        return self.cache

    def _fc_rsp_dispatcher(self):
        """Demultiplex coh-rsp grants by transaction tag."""
        inbox = self.mesh.inbox(self.coord, COH_RESPONSE_PLANE)
        while True:
            packet = yield inbox.get()
            if not isinstance(packet.payload, CoherenceReply):
                raise TypeError(
                    f"accelerator tile {self.coord} got unexpected "
                    f"coh-rsp payload {packet.payload!r}")
            yield self._response_queue(packet.tag).put(packet)

    def _fc_inv_server(self):
        """Answer directory invalidations / recalls on coh-fwd.

        Runs independently of any in-flight transaction of this tile,
        so two tiles' transactions can invalidate each other without
        deadlock. The ack returns on coh-rsp, carrying the data of
        lines that were locally dirty (a MESI recall)."""
        cache = self.cache
        inbox = self.mesh.inbox(self.coord, COH_FORWARD_PLANE)
        while True:
            packet = yield inbox.get()
            request = packet.payload
            if not isinstance(request, InvalidateRequest):
                raise TypeError(
                    f"accelerator tile {self.coord} got unexpected "
                    f"coh-fwd payload {request!r}")
            yield self.env.timeout(cache.hit_latency)
            dirty = tuple(line for line in request.lines
                          if cache.invalidate(line))
            flits = self._flits(len(dirty) * cache.line_words,
                                COH_RESPONSE_PLANE) if dirty \
                else line_list_flits(len(request.lines))
            self.mesh.send(Packet(
                src=self.coord, dst=request.reply_to,
                plane=COH_RESPONSE_PLANE, kind=MessageKind.COH_ACK,
                payload_flits=flits,
                payload=InvalidateAck(lines=request.lines,
                                      dirty_lines=dirty,
                                      tag=request.tag),
                tag=request.tag))

    def _line_tile(self, line: int) -> MemoryTile:
        return self.memory_map.owner(line * self.cache.line_words)[0]

    def _fc_writebacks(self, victims):
        """Writeback packets for evicted dirty lines.

        No ack is awaited (the directory absorbs them asynchronously),
        but injection is serialized: the victim data leaves through
        the same tile port as every other transfer, so a store stream
        that thrashes the private cache pays for the traffic it
        generates instead of getting eviction bandwidth for free.
        """
        cache = self.cache
        by_tile = {}
        for line in victims:
            by_tile.setdefault(self._line_tile(line), []).append(line)
        for tile, lines in by_tile.items():
            yield self.mesh.send(Packet(
                src=self.coord, dst=tile.coord,
                plane=COH_RESPONSE_PLANE, kind=MessageKind.COH_WB,
                payload_flits=self._flits(
                    len(lines) * cache.line_words, COH_RESPONSE_PLANE),
                payload=CoherenceWriteback(lines=tuple(lines),
                                           word_bits=self.word_bits),
                tag=None))

    def _fc_transaction(self, offset: int, n_words: int, write: bool):
        """One fully-coherent load/store through the private cache.

        The cache hierarchy handles the word-granularity access, so
        (unlike DMA) there is no TLB walk — this is why the mode wins
        on small footprints. Lines hit locally or join a batched
        request per owning memory tile (GETS for reads; GETM with fill
        for partial-line stores; an upgrade — no data — for S-state
        hits and full-line overwrites). Grants install lines S/E/M;
        dirty victims stream back as writeback packets.
        """
        cache = self.cache
        line_words = cache.line_words
        end = offset + n_words
        hit_lines = 0
        per_tile: Dict[MemoryTile, Tuple[list, list, list]] = {}
        for line in cache.lines_of(offset, n_words):
            if cache.touch(line, write=write) is not None:
                hit_lines += 1
                continue
            gets, getm, upgrades = per_tile.setdefault(
                self._line_tile(line), ([], [], []))
            if not write:
                gets.append(line)
            else:
                line_start = line * line_words
                full_cover = (offset <= line_start
                              and line_start + line_words <= end)
                state = cache.state(line)
                # An S-state write needs ownership but no data; so
                # does a store that overwrites the whole line.
                if state == SHARED or full_cover:
                    upgrades.append(line)
                else:
                    getm.append(line)
        if hit_lines:
            yield self.env.timeout(
                cache.hit_latency
                + (hit_lines * line_words + 7) // 8)
        if not per_tile:
            return
        pending = []
        for tile, (gets, getm, upgrades) in per_tile.items():
            tile.ensure_directory()
            tag = self._new_tag()
            request = CoherenceRequest(
                gets_lines=tuple(gets), getm_lines=tuple(getm),
                upgrade_lines=tuple(upgrades), requester=self.coord,
                tag=tag, word_bits=self.word_bits)
            self.mesh.send(Packet(
                src=self.coord, dst=tile.coord,
                plane=COH_REQUEST_PLANE, kind=MessageKind.COH_REQ,
                payload_flits=line_list_flits(len(request.all_lines)),
                payload=request, tag=tag))
            pending.append((tag, request))
        victims = []
        for tag, request in pending:
            packet = yield self._response_queue(tag).get()
            del self._responses[tag]
            reply = packet.payload
            exclusive = set(reply.exclusive_lines)
            for line in request.gets_lines:
                victim = cache.install(
                    line, EXCLUSIVE if line in exclusive else SHARED)
                if victim is not None:
                    victims.append(victim)
            for line in request.getm_lines + request.upgrade_lines:
                victim = cache.install(line, MODIFIED)
                if victim is not None:
                    victims.append(victim)
        if victims:
            yield from self._fc_writebacks(victims)

    def _fc_load(self, offset: int, n_words: int):
        tracer = self.env.tracer
        sid = None if tracer is None else tracer.begin(
            self.owner, "dma.load", f"fc-load[{n_words}w]", "coh.load",
            offset=offset, words=n_words)
        if self.fault_injector is not None:
            yield from self._maybe_stall()
        yield from self._fc_transaction(offset, n_words, write=False)
        data = self.memory_map.read_words(offset, n_words)
        self.dma_loads += 1
        self.words_loaded += n_words
        metrics = self.env.metrics
        if metrics is not None:
            self._record_transaction(metrics, "dma_load", n_words)
        if sid is not None:
            tracer.end(sid)
        return data

    def _fc_store(self, offset: int, data: np.ndarray):
        data = np.asarray(data, dtype=np.float64).reshape(-1)
        n_words = len(data)
        tracer = self.env.tracer
        sid = None if tracer is None else tracer.begin(
            self.owner, "dma.store", f"fc-store[{n_words}w]",
            "coh.store", offset=offset, words=n_words)
        if self.fault_injector is not None:
            yield from self._maybe_stall()
        yield from self._fc_transaction(offset, n_words, write=True)
        # The functional write is out-of-band (zero simulated time):
        # the backing store always holds current data, the dirty
        # private lines only shape timing and writeback traffic. A
        # fully-coherent store is therefore *not* posted — completion
        # means ownership was granted, so no quiesce accounting.
        self.memory_map.write_words(offset, data)
        self.dma_stores += 1
        self.words_stored += n_words
        metrics = self.env.metrics
        if metrics is not None:
            self._record_transaction(metrics, "dma_store", n_words)
        if sid is not None:
            tracer.end(sid)
        return None

    # -- p2p -------------------------------------------------------------------

    def _p2p_load(self, n_words: int, p2p: P2PConfig):
        """Receiver side: on-demand request to the next source tile."""
        source = p2p.sources[self._p2p_round_robin % len(p2p.sources)]
        self._p2p_round_robin += 1
        tracer = self.env.tracer
        sid = None if tracer is None else tracer.begin(
            self.owner, "dma.load", f"p2p-load[{n_words}w]",
            "dma.p2p_load", source=str(source), words=n_words)
        tag = self._new_tag()
        request = P2PLoadRequest(words=n_words, word_bits=self.word_bits,
                                 reply_to=self.coord, tag=tag)
        lost = (self.fault_injector is not None
                and self.fault_injector.p2p_req_lost(self.coord,
                                                     self.env.now))
        if not lost:
            # A lost request never reaches the sender: the receiver
            # blocks on a response that will not come and the runtime
            # watchdog recovers the stream.
            self.mesh.send(Packet(
                src=self.coord, dst=source, plane=DMA_REQUEST_PLANE,
                kind=MessageKind.P2P_REQ, payload_flits=0, payload=request,
                tag=tag))
        packet = yield self._response_queue(tag).get()
        del self._responses[tag]
        self.p2p_loads += 1
        self.words_loaded += n_words
        metrics = self.env.metrics
        if metrics is not None:
            self._record_transaction(metrics, "p2p_load", n_words)
        if sid is not None:
            tracer.end(sid)
        return np.asarray(packet.payload)

    def _p2p_store(self, data: np.ndarray):
        """Sender side: park the chunk until a receiver asks for it.

        Blocks when the shallow queue is full — this is the hardware
        backpressure that keeps long packets out of the NoC until the
        downstream accelerator is ready (consumption assumption).
        """
        data = np.asarray(data, dtype=np.float64).reshape(-1)
        tracer = self.env.tracer
        sid = None if tracer is None else tracer.begin(
            self.owner, "dma.store", f"p2p-store[{len(data)}w]",
            "dma.p2p_store", words=len(data))
        yield self._p2p_store_queue.put(data)
        self.p2p_stores += 1
        self.words_stored += len(data)
        metrics = self.env.metrics
        if metrics is not None:
            self._record_transaction(metrics, "p2p_store", len(data))
        if sid is not None:
            tracer.end(sid)
        return None

    def _p2p_server(self):
        """Sender side: answer p2p load requests with parked chunks."""
        inbox = self.mesh.inbox(self.coord, DMA_REQUEST_PLANE)
        while True:
            packet = yield inbox.get()
            request = packet.payload
            if not isinstance(request, P2PLoadRequest):
                raise TypeError(
                    f"accelerator tile {self.coord} received unexpected "
                    f"request {request!r} on the DMA request plane")
            tracer = self.env.tracer
            sid = None if tracer is None else tracer.begin(
                self.owner, "p2p-server", f"serve[{request.words}w]",
                "dma.p2p_serve", reply_to=str(request.reply_to),
                words=request.words)
            chunk = yield self._p2p_store_queue.get()
            if len(chunk) != request.words:
                raise ValueError(
                    f"p2p size mismatch at {self.coord}: receiver asked "
                    f"for {request.words} words, producer parked "
                    f"{len(chunk)}")
            self.mesh.send(Packet(
                src=self.coord, dst=request.reply_to,
                plane=DMA_RESPONSE_PLANE, kind=MessageKind.P2P_RSP,
                payload_flits=self._flits(request.words,
                                          DMA_RESPONSE_PLANE),
                payload=chunk, tag=request.tag))
            if sid is not None:
                tracer.end(sid)

    # -- public API (what the wrapper calls) -------------------------------------

    def reset_p2p_rotation(self) -> None:
        """Restart the round-robin source pointer (new invocation)."""
        self._p2p_round_robin = 0

    def load(self, offset: int, n_words: int,
             p2p: Optional[P2PConfig] = None,
             coherence=None, coherent=None):
        """Load ``n_words`` into the PLM; DMA or p2p per configuration.

        ``coherence`` selects the cache-coherence model
        (:class:`CoherenceMode` or its string value): non-coherent DMA
        straight to DRAM, LLC-coherent DMA through the memory tile's
        last-level cache, or the fully-coherent private-cache path.
        The boolean ``coherent=`` alias is deprecated (True maps onto
        LLC-coherent). A generator to be driven with ``yield from``;
        returns the data.
        """
        if n_words < 1:
            raise ValueError(f"n_words must be >= 1, got {n_words}")
        mode = resolve_coherence(coherence, coherent)
        if p2p is not None and p2p.load_enabled:
            return (yield from self._p2p_load(n_words, p2p))
        if mode is CoherenceMode.FULLY_COHERENT:
            if self._fc_supported(offset, n_words):
                self._ensure_fc()
                return (yield from self._fc_load(offset, n_words))
            self.coherence_downgrades += 1
            mode = CoherenceMode.NON_COHERENT
        return (yield from self._dma_load(
            offset, n_words,
            coherent=mode is CoherenceMode.LLC_COHERENT))

    def store(self, offset: int, data: np.ndarray,
              p2p: Optional[P2PConfig] = None,
              coherence=None, coherent=None):
        """Store a PLM buffer; DMA or p2p per configuration."""
        mode = resolve_coherence(coherence, coherent)
        if p2p is not None and p2p.store_enabled:
            return (yield from self._p2p_store(data))
        if mode is CoherenceMode.FULLY_COHERENT:
            data = np.asarray(data, dtype=np.float64).reshape(-1)
            if self._fc_supported(offset, max(1, len(data))):
                self._ensure_fc()
                return (yield from self._fc_store(offset, data))
            self.coherence_downgrades += 1
            mode = CoherenceMode.NON_COHERENT
        return (yield from self._dma_store(
            offset, data,
            coherent=mode is CoherenceMode.LLC_COHERENT))
