"""The ESP SoC architecture: tiles, sockets, DMA, p2p and generation."""

from .registers import (
    CMD_REG,
    CMD_START,
    COHERENCE_LLC,
    COHERENCE_NON_COHERENT,
    COHERENCE_REG,
    DVFS_REG,
    DST_OFFSET_REG,
    MAX_DVFS_DIVIDER,
    LOCATION_REG,
    MAX_P2P_SOURCES,
    P2P_REG,
    P2PConfig,
    DST_STRIDE_REG,
    RegisterFile,
    SRC_OFFSET_REG,
    SRC_STRIDE_REG,
    STATUS_DONE,
    STATUS_IDLE,
    STATUS_REG,
    STATUS_RUNNING,
    decode_location,
    encode_location,
)
from .tlb import Tlb
from .llc import LastLevelCache
from .memory import DmaRequest, MemoryMap, MemoryTile
from .dma import DmaEngine, P2PLoadRequest, P2P_QUEUE_DEPTH
from .wrapper import (InvocationConfig, InvocationResult,
                      wrapper_process, wrapper_process_double_buffered)
from .accelerator import (AcceleratorTile, N_FRAMES_REG, RegRead,
                          RegReadReply, RegWrite)
from .processor import AuxTile, ProcessorTile
from .config import SoCConfig, TileConfig, TILE_KINDS
from .soc_builder import SoCInstance, TILE_OVERHEAD, build_soc
from .devtree import DeviceNode, devices_from_config, emit_dts
from .monitors import (
    AcceleratorCounters,
    MemoryCounters,
    MonitorReport,
    read_monitors,
)
from .vcd import emit_vcd

__all__ = [
    "AcceleratorCounters",
    "AcceleratorTile",
    "AuxTile",
    "CMD_REG",
    "CMD_START",
    "COHERENCE_LLC",
    "COHERENCE_NON_COHERENT",
    "COHERENCE_REG",
    "DVFS_REG",
    "DST_OFFSET_REG",
    "DST_STRIDE_REG",
    "DeviceNode",
    "DmaEngine",
    "DmaRequest",
    "InvocationConfig",
    "InvocationResult",
    "LastLevelCache",
    "LOCATION_REG",
    "MAX_DVFS_DIVIDER",
    "MAX_P2P_SOURCES",
    "MemoryCounters",
    "MemoryMap",
    "MemoryTile",
    "MonitorReport",
    "N_FRAMES_REG",
    "P2PConfig",
    "P2PLoadRequest",
    "P2P_QUEUE_DEPTH",
    "P2P_REG",
    "ProcessorTile",
    "RegRead",
    "RegReadReply",
    "RegWrite",
    "RegisterFile",
    "SRC_OFFSET_REG",
    "SRC_STRIDE_REG",
    "STATUS_DONE",
    "STATUS_IDLE",
    "STATUS_REG",
    "STATUS_RUNNING",
    "SoCConfig",
    "SoCInstance",
    "TILE_KINDS",
    "TILE_OVERHEAD",
    "TileConfig",
    "Tlb",
    "build_soc",
    "decode_location",
    "read_monitors",
    "devices_from_config",
    "emit_dts",
    "emit_vcd",
    "encode_location",
    "wrapper_process",
    "wrapper_process_double_buffered",
]
