"""ESP4ML reproduction: platform-based design of SoCs for embedded ML.

A pure-Python reproduction of *ESP4ML: Platform-Based Design of
Systems-on-Chip for Embedded Machine Learning* (Giri et al., DATE
2020). The package provides:

- :mod:`repro.sim` — discrete-event simulation kernel;
- :mod:`repro.fixed` — ``ap_fixed`` fixed-point arithmetic;
- :mod:`repro.nn` — Keras-substitute NN library;
- :mod:`repro.datasets` — synthetic SVHN generator;
- :mod:`repro.hls` / :mod:`repro.hls4ml_flow` — HLS scheduling and the
  HLS4ML-substitute compiler;
- :mod:`repro.noc` / :mod:`repro.soc` — the ESP architecture: NoC,
  tiles, DMA, and the ESP4ML p2p communication service;
- :mod:`repro.accelerators` — the paper's four accelerators;
- :mod:`repro.runtime` — the Linux runtime: driver, dataflow API,
  base/pipe/p2p execution;
- :mod:`repro.flow` — the automated end-to-end design flow (Fig. 3);
- :mod:`repro.platforms` — baseline CPU/GPU models + FPGA power model;
- :mod:`repro.eval` — reproduction of every table and figure.

Quickstart::

    from repro.flow import Esp4mlFlow
    from repro.accelerators import night_vision_spec, classifier_model
    from repro.runtime import replicated_stage

    flow = Esp4mlFlow()
    flow.add_generic_accelerator("nv0", night_vision_spec())
    flow.add_ml_accelerator("cl0", classifier_model())
    bundle = flow.generate("my-soc")
    dataflow = replicated_stage("app", ["nv0"], ["cl0"])
    result = bundle.runtime.esp_run(dataflow, frames, mode="p2p")
"""

__version__ = "1.0.0"

__all__ = [
    "accelerators",
    "datasets",
    "eval",
    "fixed",
    "flow",
    "hls",
    "hls4ml_flow",
    "nn",
    "noc",
    "platforms",
    "runtime",
    "sim",
    "soc",
]
