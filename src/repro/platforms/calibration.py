"""Calibration anchors taken from the paper's Table I.

The Intel i7-8700K and NVIDIA Jetson TX1 baselines cannot be executed
here; per the reproduction methodology (DESIGN.md) they are modelled
from the paper's own measurements. Every constant in this file quotes
the Table I cell it derives from; per-kernel throughputs come from
inverting the serial composition ``1/fps_app = sum(1/fps_kernel)``.

The paper's power assumptions (Sec. VI, Experimental Setup): Intel i7
estimated TDP 78.6 W (nominal 95 W); Jetson TX1 GPU 10 W; ARM core
1.5 W.
"""

from __future__ import annotations

#: Table I, bottom three rows: frames/s per platform per application.
PAPER_FPS = {
    "esp4ml": {"nv_cl": 35_572.0, "de_cl": 5_220.0, "multitile": 28_376.0},
    "i7": {"nv_cl": 1_858.0, "de_cl": 30_435.0, "multitile": 82_476.0},
    "jetson": {"nv_cl": 377.0, "de_cl": 2_798.0, "multitile": 6_750.0},
}

#: Table I, POWER row (Vivado dynamic power for the whole SoC).
PAPER_SOC_POWER_W = {"soc1": 1.70, "soc2": 0.98}

#: Sec. VI power assumptions for the baselines.
I7_POWER_W = 78.6
JETSON_GPU_POWER_W = 10.0
ARM_A57_POWER_W = 1.5

#: Table I, resource rows (fractions of the Ultrascale+ part).
PAPER_UTILIZATION = {
    "soc1": {"luts": 0.48, "ffs": 0.24, "brams": 0.57},
    "soc2": {"luts": 0.19, "ffs": 0.11, "brams": 0.21},
}


def _serial_residual(app_fps: float, other_kernel_fps: float) -> float:
    """Invert 1/app = 1/kernel + 1/other to recover the kernel fps."""
    return 1.0 / (1.0 / app_fps - 1.0 / other_kernel_fps)


def derive_kernel_fps(platform: str) -> dict:
    """Per-kernel software throughput for one baseline platform.

    The multi-tile column runs the plain classifier network in
    software, so it anchors the classifier; the two-stage apps then
    yield the denoiser and night-vision kernels by inversion.
    """
    fps = PAPER_FPS[platform]
    classifier = fps["multitile"]
    return {
        "classifier": classifier,
        "denoiser": _serial_residual(fps["de_cl"], classifier),
        "night_vision": _serial_residual(fps["nv_cl"], classifier),
    }


#: Derived single-kernel throughputs (frames/s), used by the platform
#: models. i7: classifier 82,476; denoiser ~48,225; night-vision ~1,901
#: (the paper notes Night-Vision "is a single-threaded program", hence
#: the low number). Jetson: 6,750 / ~4,779 / ~399.
I7_KERNEL_FPS = derive_kernel_fps("i7")
JETSON_KERNEL_FPS = derive_kernel_fps("jetson")
