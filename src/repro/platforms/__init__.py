"""Baseline platform models and the FPGA power model."""

from .calibration import (
    ARM_A57_POWER_W,
    I7_KERNEL_FPS,
    I7_POWER_W,
    JETSON_GPU_POWER_W,
    JETSON_KERNEL_FPS,
    PAPER_FPS,
    PAPER_SOC_POWER_W,
    PAPER_UTILIZATION,
    derive_kernel_fps,
)
from .software import (
    ANALYTIC_I7,
    ANALYTIC_JETSON,
    ARM_A57_WATTS,
    AnalyticSoftwareModel,
    INTEL_I7_8700K,
    JETSON_TX1,
    KERNEL_FLOPS,
    SoftwarePlatform,
)
from .power import (
    DEFAULT_POWER_MODEL,
    PowerModel,
    REFERENCE_CLOCK_MHZ,
    soc_power_watts,
    soc_power_watts_dvfs,
)

__all__ = [
    "ANALYTIC_I7",
    "ANALYTIC_JETSON",
    "ARM_A57_POWER_W",
    "ARM_A57_WATTS",
    "AnalyticSoftwareModel",
    "DEFAULT_POWER_MODEL",
    "INTEL_I7_8700K",
    "I7_KERNEL_FPS",
    "I7_POWER_W",
    "JETSON_GPU_POWER_W",
    "JETSON_KERNEL_FPS",
    "JETSON_TX1",
    "KERNEL_FLOPS",
    "PAPER_FPS",
    "PAPER_SOC_POWER_W",
    "PAPER_UTILIZATION",
    "PowerModel",
    "REFERENCE_CLOCK_MHZ",
    "SoftwarePlatform",
    "derive_kernel_fps",
    "soc_power_watts",
    "soc_power_watts_dvfs",
]
