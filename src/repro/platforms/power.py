"""FPGA power model (the Vivado power-report substitute).

The paper reports "the average dynamic power consumption for the two
ESP4ML SoCs as estimated by Xilinx Vivado for the whole SoC (i.e. not
just for the accelerators active in a specific test)" — a deliberately
conservative whole-design figure (Sec. VI). We reproduce that
methodology with an activity-based linear model over the SoC's
resource usage, calibrated against the paper's two design points
(1.70 W for SoC-1, 0.98 W for SoC-2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hls import ResourceEstimate

#: Reference clock for the calibrated coefficients.
REFERENCE_CLOCK_MHZ = 78.0


@dataclass(frozen=True)
class PowerModel:
    """Linear dynamic-power model: P = base + sum(coeff * usage).

    Coefficients are in watts per resource unit at the reference clock;
    dynamic power scales linearly with clock frequency.
    """

    base_watts: float = 0.584           # NoC, clock tree, CPU activity
    watts_per_lut: float = 0.8975e-6
    watts_per_ff: float = 0.0           # folded into the LUT coefficient
    watts_per_bram: float = 0.35e-3
    watts_per_dsp: float = 0.15e-3

    def dynamic_watts(self, resources: ResourceEstimate,
                      clock_mhz: float = REFERENCE_CLOCK_MHZ) -> float:
        if clock_mhz <= 0:
            raise ValueError(f"clock_mhz must be > 0, got {clock_mhz}")
        power = (self.base_watts
                 + self.watts_per_lut * resources.luts
                 + self.watts_per_ff * resources.ffs
                 + self.watts_per_bram * resources.brams
                 + self.watts_per_dsp * resources.dsps)
        return power * (clock_mhz / REFERENCE_CLOCK_MHZ)


#: The calibrated default model.
DEFAULT_POWER_MODEL = PowerModel()


def soc_power_watts(soc, model: PowerModel = DEFAULT_POWER_MODEL) -> float:
    """Whole-SoC average dynamic power (the Fig. 7 divisor)."""
    return model.dynamic_watts(soc.resources(), soc.clock_mhz)


def _tile_contribution(model: PowerModel, resources) -> float:
    """Dynamic power of one tile's logic (excludes the global base)."""
    return (model.watts_per_lut * resources.luts
            + model.watts_per_ff * resources.ffs
            + model.watts_per_bram * resources.brams
            + model.watts_per_dsp * resources.dsps)


def soc_power_watts_dvfs(soc, dividers,
                         model: PowerModel = DEFAULT_POWER_MODEL) -> float:
    """Whole-SoC power with per-tile DVFS dividers applied.

    ``dividers`` maps accelerator device names to clock dividers; a
    tile running at f/k burns ~1/k of its dynamic power (ESP pairs
    each tile with a DVFS controller — Mantovani et al. [21], cited by
    the paper). Tiles not mentioned run at full clock.
    """
    from ..soc.soc_builder import TILE_OVERHEAD

    total = model.base_watts
    counted = 0
    for _, tile in soc.config.tiles.items():
        resources = TILE_OVERHEAD[tile.kind]
        if tile.kind == "acc" and tile.spec is not None:
            resources = resources + tile.spec.resources
        contribution = _tile_contribution(model, resources)
        if tile.kind == "acc" and tile.name in dividers:
            divider = dividers[tile.name]
            if divider < 1:
                raise ValueError(
                    f"divider for {tile.name!r} must be >= 1")
            contribution /= divider
        total += contribution
        counted += 1
    unassigned = soc.config.cols * soc.config.rows - counted
    total += unassigned * _tile_contribution(model,
                                             TILE_OVERHEAD["empty"])
    return total * (soc.clock_mhz / REFERENCE_CLOCK_MHZ)
