"""Software baseline platforms (Intel i7-8700K, NVIDIA Jetson TX1).

Two model families:

- :class:`SoftwarePlatform`: throughput per kernel anchored to the
  paper's Table I measurements (see ``calibration.py``); applications
  compose serially. Used to reproduce Table I and the Fig. 7 baseline
  lines.
- :class:`AnalyticSoftwareModel`: first-principles op-count model
  (sustained GFLOP/s x efficiency), used for configurations the paper
  does not report (ablation benches) and to sanity-check the anchors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from .calibration import (
    ARM_A57_POWER_W,
    I7_KERNEL_FPS,
    I7_POWER_W,
    JETSON_GPU_POWER_W,
    JETSON_KERNEL_FPS,
)

#: Inference op counts (multiply + add per MAC) for the paper's models.
KERNEL_FLOPS = {
    # 1024x256 + 256x128 + 128x64 + 64x32 + 32x10 MACs, x2 ops
    "classifier": 2 * (1024 * 256 + 256 * 128 + 128 * 64 + 64 * 32
                       + 32 * 10),
    # 1024x256 + 256x128 + 128x1024 MACs, x2 ops
    "denoiser": 2 * (1024 * 256 + 256 * 128 + 128 * 1024),
    # 3x3 median (sorting-network ~30 ops/px) + histogram + equalization
    "night_vision": 1024 * (30 + 2 + 3),
}


@dataclass(frozen=True)
class SoftwarePlatform:
    """A baseline platform with measured per-kernel throughput."""

    name: str
    power_watts: float
    kernel_fps: Dict[str, float]

    def fps_for(self, kernel: str) -> float:
        if kernel not in self.kernel_fps:
            raise KeyError(
                f"{self.name} has no measurement for kernel {kernel!r}; "
                f"known: {sorted(self.kernel_fps)}")
        return self.kernel_fps[kernel]

    def app_fps(self, kernels: Sequence[str]) -> float:
        """Serial composition: the software runs stages back to back."""
        if not kernels:
            raise ValueError("at least one kernel required")
        return 1.0 / sum(1.0 / self.fps_for(k) for k in kernels)

    def app_frames_per_joule(self, kernels: Sequence[str]) -> float:
        return self.app_fps(kernels) / self.power_watts


#: The paper's two comparison platforms, anchored to Table I.
INTEL_I7_8700K = SoftwarePlatform(
    name="i7-8700k", power_watts=I7_POWER_W, kernel_fps=I7_KERNEL_FPS)

JETSON_TX1 = SoftwarePlatform(
    name="jetson-tx1", power_watts=JETSON_GPU_POWER_W,
    kernel_fps=JETSON_KERNEL_FPS)


@dataclass(frozen=True)
class AnalyticSoftwareModel:
    """Op-count throughput model for unmeasured configurations."""

    name: str
    power_watts: float
    sustained_gflops: float
    kernel_efficiency: Dict[str, float] = field(default_factory=dict)

    def fps_for(self, kernel: str, flops: float = None) -> float:
        flops = flops if flops is not None else KERNEL_FLOPS[kernel]
        eff = self.kernel_efficiency.get(kernel, 1.0)
        return self.sustained_gflops * 1e9 * eff / flops

    def app_fps(self, kernels: Sequence[str]) -> float:
        return 1.0 / sum(1.0 / self.fps_for(k) for k in kernels)


#: Analytic i7: ~50 GFLOP/s sustained on small dense layers (AVX2,
#: single core boost) reproduces the classifier anchor within 2%; the
#: night-vision efficiency is tiny because the paper's kernel is
#: scalar single-threaded code.
ANALYTIC_I7 = AnalyticSoftwareModel(
    name="i7-8700k-analytic", power_watts=I7_POWER_W,
    sustained_gflops=50.4,
    kernel_efficiency={"denoiser": 0.82, "night_vision": 0.0014},
)

#: Analytic Jetson: batch-1 inference on the Maxwell GPU is launch
#: latency bound, giving a low effective rate for these small MLPs.
ANALYTIC_JETSON = AnalyticSoftwareModel(
    name="jetson-tx1-analytic", power_watts=JETSON_GPU_POWER_W,
    sustained_gflops=4.12,
    kernel_efficiency={"denoiser": 0.98, "night_vision": 0.0035},
)

#: The ARM Cortex-A57 power figure the paper quotes (1.5 W); used by
#: energy ablations that pin the Jetson's CPU instead of its GPU.
ARM_A57_WATTS = ARM_A57_POWER_W
