#!/usr/bin/env python
"""The multi-tile (5-way partitioned) Classifier on SoC-2.

The paper distributes the MLP's five dense layers over five
accelerator tiles chained on the NoC ("1Cl split", the rightmost
cluster of Fig. 7). This example verifies the partitioned pipeline
computes exactly the monolithic classifier's function and shows how
the chain benefits from pipelining and p2p.

Run:  python examples/multi_tile_classifier.py [n_frames]
"""

import sys

import numpy as np

from repro.accelerators import classifier_spec
from repro.accelerators.classifier import classifier_hls
from repro.accelerators.multitile import partition_classifier
from repro.datasets import flatten_frames, generate
from repro.eval import build_soc2, dataflow_multitile
from repro.platforms import soc_power_watts
from repro.runtime import EspRuntime


def main(n_frames: int = 32):
    soc = build_soc2()
    runtime = EspRuntime(soc)
    print(f"SoC-2: {soc.config.cols}x{soc.config.rows} mesh, "
          f"{len(soc.accelerators)} partitions, "
          f"{soc_power_watts(soc):.2f} W")
    for name in sorted(soc.accelerators):
        spec = soc.accelerator(name).spec
        print(f"  {name}: {spec.input_words:>5} -> {spec.output_words:>5}"
              f"   latency {spec.latency_cycles:>5} cycles")

    frames_img, labels = generate(n_frames, seed=4)
    frames = flatten_frames(frames_img)
    dataflow = dataflow_multitile()

    print(f"\n{'mode':<7}{'frames/s':>12}{'DRAM words':>12}{'ioctls':>8}")
    outputs = {}
    for mode in ("base", "pipe", "p2p"):
        result = runtime.esp_run(dataflow, frames, mode=mode)
        outputs[mode] = result.outputs
        print(f"{mode:<7}{result.frames_per_second:>12,.0f}"
              f"{result.dram_accesses:>12,}{result.ioctl_calls:>8}")
        runtime.esp_cleanup()

    # Functional check: the split pipeline == the monolithic kernel.
    mono = classifier_spec()
    reference = np.stack([mono.run(f) for f in frames])
    match = np.allclose(outputs["p2p"], reference, atol=1e-9)
    print(f"\npartitioned == monolithic classifier: {match}")

    # A 5-deep chain amplifies the p2p DRAM saving (paper Fig. 8:
    # ~1.9x for this app because the deeper stages carry tiny frames).
    print("note: each ioctl in 'p2p' mode starts one streaming "
          "invocation per tile; 'pipe' pays one per frame per tile.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 32)
