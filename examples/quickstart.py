#!/usr/bin/env python
"""Quickstart: design an SoC with the ESP4ML flow and run a pipeline.

This walks the whole Fig. 3 flow in ~40 lines:

1. train a small Keras-substitute classifier on synthetic SVHN;
2. compile it with the HLS4ML-substitute compiler (ML branch);
3. add a generic Night-Vision accelerator (SystemC/Stratus branch);
4. generate the SoC ("bitstream" = runnable simulation + Linux
   runtime);
5. express the application as a dataflow of device names and run it
   with p2p communication.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.accelerators import night_vision_spec
from repro.datasets import darken, flatten_frames, generate
from repro.flow import Esp4mlFlow
from repro.nn import Dense, Dropout, ReLU, Sequential, Softmax, accuracy, fit
from repro.runtime import replicated_stage


def main():
    # -- 1. train a (small, fast) digit classifier ---------------------
    print("training a small classifier on synthetic SVHN ...")
    frames, labels = generate(600, seed=0)
    x = flatten_frames(frames)
    model = Sequential(
        [Dense(64), ReLU(), Dropout(0.2), Dense(10), Softmax()],
        name="quick_classifier").build(1024, seed=1)
    fit(model, x, labels, epochs=8, batch_size=64)
    print(f"  software accuracy: {accuracy(model.predict(x), labels):.1%}")

    # -- 2./3./4. build the SoC through the flow -----------------------
    flow = Esp4mlFlow(clock_mhz=78.0)
    flow.add_generic_accelerator("nv0", night_vision_spec())
    flow.add_ml_accelerator("cl0", model, reuse_factor=256)
    bundle = flow.generate("quickstart-soc")
    print("\ngenerated SoC floorplan:")
    print(bundle.config.floorplan_text())

    # -- 5. run the application dataflow -------------------------------
    dataflow = replicated_stage("nv_cl", ["nv0"], ["cl0"])
    test_frames, test_labels = generate(32, seed=9)
    dark = flatten_frames(darken(test_frames, factor=0.25))

    for mode in ("base", "pipe", "p2p"):
        result = bundle.runtime.esp_run(dataflow, dark, mode=mode)
        acc = accuracy(result.outputs, test_labels)
        print(f"mode={mode:<5} {result.frames_per_second:>10,.0f} frames/s"
              f"   DRAM words: {result.dram_accesses:>7,}"
              f"   ioctls: {result.ioctl_calls:>3}"
              f"   accuracy: {acc:.1%}")

    print("\nnote: base < pipe < p2p in throughput; p2p also cuts DRAM "
          "traffic ~3x (the paper's Fig. 7 and Fig. 8 effects).")


if __name__ == "__main__":
    main()
