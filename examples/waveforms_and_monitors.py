#!/usr/bin/env python
"""Hardware-engineer views of a run: monitors, Gantt and VCD.

Runs the 4NV+4Cl pipeline and produces the three observability
artifacts the repository offers:

- the SoC monitor report (every hardware counter),
- an ASCII Gantt chart of accelerator activity,
- a VCD waveform (viewable in GTKWave) with accelerator-busy and
  NoC-link-occupancy signals.

Run:  python examples/waveforms_and_monitors.py [out.vcd]
"""

import sys

from repro.eval import APP_CONFIGS, render_gantt
from repro.runtime import EspRuntime
from repro.eval.apps import build_soc1
from repro.soc import emit_vcd, read_monitors


def main(vcd_path: str = "artifacts/run.vcd"):
    config = APP_CONFIGS["4nv_4cl"]
    # Build SoC-1's floorplan, then instantiate it with link tracing
    # enabled so the VCD gets NoC occupancy signals.
    from repro.soc import build_soc
    soc = build_soc(build_soc1().config, trace_links=True)
    runtime = EspRuntime(soc)
    frames, _ = config.make_inputs(12)
    result = runtime.esp_run(config.build_dataflow(), frames, mode="p2p")
    print(f"4nv_4cl p2p: {result.frames_per_second:,.0f} frames/s\n")

    print(read_monitors(soc).to_text())
    print()
    print(render_gantt(soc))

    vcd = emit_vcd(soc)
    from pathlib import Path
    path = Path(vcd_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(vcd)
    print(f"\nwrote {len(vcd.splitlines()):,}-line VCD to {path} "
          f"(open with GTKWave)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "artifacts/run.vcd")
