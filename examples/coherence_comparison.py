#!/usr/bin/env python
"""Cache-coherence models vs the p2p service.

The paper positions its p2p communication against inter-accelerator
data exchange "that use[s] off-chip memory ... normally the most
efficient accelerator cache-coherence model" (Sec. I, citing the
authors' coherence work). This example runs the same two-stage
pipeline under three data-movement regimes:

- non-coherent DMA: every transaction goes to DRAM;
- LLC-coherent DMA: transactions allocate in a last-level cache at
  the memory tile (COHERENCE_REG selects this per invocation);
- p2p: intermediate frames travel tile-to-tile over the NoC.

Run:  python examples/coherence_comparison.py
"""

import numpy as np

from repro.accelerators import classifier_spec, night_vision_spec
from repro.datasets import darken, flatten_frames, generate
from repro.runtime import EspRuntime, replicated_stage
from repro.soc import SoCConfig, build_soc, read_monitors


def build_runtime():
    config = SoCConfig(cols=3, rows=2, name="coherence-demo")
    config.add_cpu((0, 0))
    # 64K-word LLC at the memory tile for the coherent runs.
    config.add_memory((1, 0), llc_words=1 << 16)
    config.add_aux((2, 0))
    config.add_accelerator((0, 1), "nv0", night_vision_spec())
    config.add_accelerator((1, 1), "cl0", classifier_spec())
    return EspRuntime(build_soc(config))


def main(n_frames: int = 24):
    frames_img, _ = generate(n_frames, seed=0)
    frames = flatten_frames(darken(frames_img))
    dataflow = replicated_stage("nv_cl", ["nv0"], ["cl0"])

    print(f"{'model':<16}{'frames/s':>12}{'DRAM words':>12}"
          f"{'LLC hit rate':>14}")
    for label, mode, coherent in (
            ("non-coherent", "pipe", False),
            ("llc-coherent", "pipe", True),
            ("p2p", "p2p", False)):
        runtime = build_runtime()
        result = runtime.esp_run(dataflow, frames, mode=mode,
                                 coherent=coherent)
        llc = runtime.soc.memory_map.tiles[0].llc
        hit_rate = f"{llc.hit_rate:.0%}" if coherent else "-"
        print(f"{label:<16}{result.frames_per_second:>12,.0f}"
              f"{result.dram_accesses:>12,}{hit_rate:>14}")

    print("\ntakeaway: the LLC absorbs the intermediate frames (so does "
          "p2p), but p2p also removes the memory-tile round trip and "
          "the per-frame ioctl/sync software cost — which is why the "
          "paper built it.")


if __name__ == "__main__":
    main()
