#!/usr/bin/env python
"""The paper's Night-Vision + Classifier application on SoC-1.

Reproduces the first cluster of Fig. 7: three pipeline shapes
(1NV+1Cl, 4NV+1Cl, 4NV+4Cl) x three execution modes (base, pipe, p2p),
reporting frames/s, frames/J and DRAM traffic. Night-Vision is the
slow stage, so replicating it raises throughput — the load-balancing
story of Sec. V.

Run:  python examples/night_vision_pipeline.py [n_frames]
"""

import sys

from repro.eval import APP_CONFIGS, fresh_runtime
from repro.platforms import INTEL_I7_8700K, JETSON_TX1, soc_power_watts


def main(n_frames: int = 32):
    kernels = ("night_vision", "classifier")
    i7_fpj = INTEL_I7_8700K.app_frames_per_joule(kernels)
    gpu_fpj = JETSON_TX1.app_frames_per_joule(kernels)
    print(f"baselines (frames/J): i7-8700k {i7_fpj:.1f}   "
          f"jetson-tx1 {gpu_fpj:.1f}\n")

    header = (f"{'config':<10}{'mode':<7}{'frames/s':>12}"
              f"{'frames/J':>12}{'DRAM words':>12}{'vs i7':>9}")
    print(header)
    print("-" * len(header))
    for key in ("1nv_1cl", "4nv_1cl", "4nv_4cl"):
        config = APP_CONFIGS[key]
        frames, _ = config.make_inputs(n_frames)
        for mode in ("base", "pipe", "p2p"):
            runtime = fresh_runtime(config)
            result = runtime.esp_run(config.build_dataflow(), frames,
                                     mode=mode)
            watts = soc_power_watts(runtime.soc)
            fpj = result.frames_per_joule(watts)
            print(f"{key:<10}{mode:<7}"
                  f"{result.frames_per_second:>12,.0f}"
                  f"{fpj:>12,.0f}"
                  f"{result.dram_accesses:>12,}"
                  f"{fpj / i7_fpj:>8,.0f}x")
        print()

    print("observations (matching the paper):")
    print(" - pipelining (pipe) beats serial invocation (base);")
    print(" - replicating the slow NV stage scales throughput;")
    print(" - p2p adds a modest speedup but cuts DRAM traffic ~3x;")
    print(" - energy efficiency beats the CPU/GPU baselines by >100x.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 32)
