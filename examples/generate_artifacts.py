#!/usr/bin/env python
"""Generate every flow artifact of Fig. 3 into a directory.

Shows the "files on disk" face of the ESP4ML flow: the HLS4ML firmware
(compute.cpp, weights.h, parameters.h, directives.tcl), the ESP
integration XML per accelerator, the device tree, the floorplan, and
the generated user application (Fig. 5) with its dflow header.

Run:  python examples/generate_artifacts.py [output_dir]
"""

import sys
from pathlib import Path

from repro.accelerators import night_vision_spec
from repro.flow import Esp4mlFlow
from repro.nn import Dense, ReLU, Sequential, Softmax
from repro.runtime import replicated_stage


def main(output_dir: str = "artifacts/flow-demo"):
    model = Sequential([Dense(64), ReLU(), Dense(10), Softmax()],
                       name="classifier").build(1024, seed=0)

    flow = Esp4mlFlow()
    flow.add_generic_accelerator("nv0", night_vision_spec())
    flow.add_ml_accelerator("cl0", model, reuse_factor=256)
    bundle = flow.generate("demo-soc")

    dataflow = replicated_stage("nv_cl", ["nv0"], ["cl0"])
    flow.emit_application(bundle, dataflow, n_frames=64, mode="p2p")

    written = bundle.write_artifacts(output_dir)
    print(f"wrote {len(written)} artifacts under {output_dir}/:")
    for path in written:
        print(f"  {Path(path).relative_to(output_dir)}")

    print("\n--- generated user application (Fig. 5) ---")
    print(bundle.artifacts["nv_cl-app.c"])
    print("--- dataflow configuration header ---")
    print(bundle.artifacts["dflow_nv_cl.h"])


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "artifacts/flow-demo")
