#!/usr/bin/env python
"""Design-space exploration over the HLS4ML reuse factor.

The reuse factor is ESP4ML's single parallelization knob (Sec. II):
"the number of times a multiplier is used in the computation of a
layer of neurons". Sweeping it trades DSPs/LUTs against latency. This
example compiles the paper's classifier at several reuse factors and
reports kernel-level and system-level effects.

Run:  python examples/design_space_exploration.py
"""

from repro.accelerators import classifier_spec, night_vision_spec
from repro.datasets import darken, flatten_frames, generate
from repro.hls import XCVU9P
from repro.runtime import EspRuntime, replicated_stage
from repro.soc import SoCConfig, build_soc


def system_fps(classifier, n_frames=16):
    """Throughput of a 1NV+1Cl p2p pipeline using this classifier."""
    config = SoCConfig(cols=3, rows=2, name="dse")
    config.add_cpu((0, 0))
    config.add_memory((1, 0))
    config.add_aux((2, 0))
    config.add_accelerator((0, 1), "nv0", night_vision_spec())
    config.add_accelerator((1, 1), "cl0", classifier)
    runtime = EspRuntime(build_soc(config))
    frames_img, _ = generate(n_frames, seed=0)
    frames = flatten_frames(darken(frames_img))
    dataflow = replicated_stage("nv_cl", ["nv0"], ["cl0"])
    return runtime.esp_run(dataflow, frames, mode="p2p").frames_per_second


def main():
    header = (f"{'reuse':>6}{'latency(cyc)':>14}{'II(cyc)':>9}"
              f"{'DSPs':>7}{'BRAM':>6}{'DSP util':>10}"
              f"{'kernel fps':>12}{'system fps':>12}")
    print(header)
    print("-" * len(header))
    for reuse in (128, 256, 512, 1024, 2048, 4096):
        spec = classifier_spec(reuse_factor=reuse)
        util = XCVU9P.utilization(spec.resources)
        kernel_fps = 78e6 / spec.interval_cycles
        fps = system_fps(spec)
        print(f"{reuse:>6}{spec.latency_cycles:>14,}"
              f"{spec.interval_cycles:>9,}{spec.resources.dsps:>7,}"
              f"{spec.resources.brams:>6,}{util['dsps']:>10.1%}"
              f"{kernel_fps:>12,.0f}{fps:>12,.0f}")

    print("\nsmall reuse = parallel & DSP-hungry; large reuse = compact "
          "& slow. The system-level fps saturates once the classifier "
          "is faster than the Night-Vision stage feeding it — buying "
          "more DSPs past that point is wasted (the pipeline argument "
          "of Sec. V).")


if __name__ == "__main__":
    main()
