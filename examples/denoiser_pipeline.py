#!/usr/bin/env python
"""The Denoiser + Classifier application (Fig. 6, second dataflow).

Trains the paper's two models (fast preset by default), compiles both
through the HLS4ML branch of the flow, builds an SoC hosting them and
runs noisy SVHN frames through Denoiser -> Classifier, reporting the
reconstruction error, classification accuracy and pipeline throughput
in the three execution modes.

Run:  python examples/denoiser_pipeline.py [fast|full]
"""

import sys

import numpy as np

from repro.accelerators import denoiser_spec, classifier_spec
from repro.datasets import add_gaussian_noise, flatten_frames, generate
from repro.flow import train_classifier, train_denoiser
from repro.nn import accuracy, reconstruction_error
from repro.runtime import EspRuntime, replicated_stage
from repro.soc import SoCConfig, build_soc


def main(preset: str = "fast"):
    print(f"training models (preset={preset}; cached after first run)...")
    classifier, clf_accuracy = train_classifier(preset=preset)
    denoiser, rec_error = train_denoiser(preset=preset)
    print(f"  classifier accuracy:   {clf_accuracy:.1%} (paper: 92%)")
    print(f"  reconstruction error:  {rec_error:.1%} (paper: 3.1%)")

    # Build an SoC hosting both accelerators.
    config = SoCConfig(cols=3, rows=2, name="denoise-soc")
    config.add_cpu((0, 0))
    config.add_memory((1, 0))
    config.add_aux((2, 0))
    config.add_accelerator((0, 1), "de0", denoiser_spec(denoiser))
    config.add_accelerator((1, 1), "cl0", classifier_spec(classifier))
    runtime = EspRuntime(build_soc(config))

    # Noisy inputs, as in Sec. VI.
    frames, labels = generate(32, seed=11)
    clean = flatten_frames(frames)
    noisy = add_gaussian_noise(clean, stddev=0.15, seed=12)

    dataflow = replicated_stage("de_cl", ["de0"], ["cl0"])
    print(f"\n{'mode':<7}{'frames/s':>12}{'DRAM words':>12}"
          f"{'accuracy':>10}")
    for mode in ("base", "pipe", "p2p"):
        result = runtime.esp_run(dataflow, noisy, mode=mode)
        acc = accuracy(result.outputs, labels)
        print(f"{mode:<7}{result.frames_per_second:>12,.0f}"
              f"{result.dram_accesses:>12,}{acc:>10.1%}")
        runtime.esp_cleanup()

    # How much did denoising help the classifier?
    hls_cl = classifier_spec(classifier)
    noisy_direct = np.stack([hls_cl.run(f) for f in noisy])
    print(f"\naccuracy without denoising: "
          f"{accuracy(noisy_direct, labels):.1%}  "
          f"(the denoiser recovers the rest)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "fast")
