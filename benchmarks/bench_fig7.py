"""Fig. 7 reproduction benchmark: energy efficiency per mode.

Regenerates all 15 bars of the figure (5 configurations x base/pipe/
p2p) plus the i7 and Jetson reference lines, and checks the claims the
figure supports: monotone mode ordering, the benefit of replicating
the slow stage, and ">100x energy-efficiency gain in some cases".

Run:  pytest benchmarks/bench_fig7.py --benchmark-only -s
"""

from repro.eval import generate_fig7, render_fig7

from .conftest import BENCH_FRAMES


def test_fig7(once):
    data = once(generate_fig7, n_frames=BENCH_FRAMES)
    print("\n" + render_fig7(data))

    for cluster in data.clusters:
        fpj = cluster.frames_per_joule
        assert fpj["base"] < fpj["pipe"], cluster.app_key
        assert fpj["pipe"] <= fpj["p2p"] * 1.02, cluster.app_key
        assert fpj["p2p"] > cluster.i7_frames_per_joule
        assert fpj["p2p"] > cluster.jetson_frames_per_joule
    assert data.max_gain() > 100.0

    # The NV cluster's three configurations rise left to right.
    nv = [data.cluster(k).frames_per_joule["p2p"]
          for k in ("1nv_1cl", "4nv_1cl", "4nv_4cl")]
    assert nv[0] < nv[1] < nv[2]


def test_fig7_pipeline_balancing(once):
    """The Sec. V load-balancing ablation in isolation: replicating
    the slow NV stage should scale pipe-mode throughput ~linearly
    until the classifier saturates."""
    from repro.eval import measure

    def sweep():
        return {key: measure(key, "pipe", n_frames=BENCH_FRAMES).fps
                for key in ("1nv_1cl", "4nv_1cl", "4nv_4cl")}

    fps = once(sweep)
    print(f"\npipe-mode fps: {fps}")
    assert fps["4nv_1cl"] > 1.4 * fps["1nv_1cl"]
    assert fps["4nv_4cl"] > 1.8 * fps["4nv_1cl"]
