"""Shared configuration for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and
prints the reproduced rows next to the paper's values. Simulations are
deterministic, so each experiment runs once per benchmark round.
"""

import pytest

#: Frames per measured run. Larger values amortize pipeline fill and
#: tighten the throughput estimates at the cost of wall time.
BENCH_FRAMES = 32


@pytest.fixture
def once(benchmark):
    """Run a deterministic experiment exactly once under timing."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
