"""Fleet benchmark: load-balancing policies on a sharded SoC cluster.

A homogeneous fleet of SoC-1 instances serves the three concurrent
applications of ``bench_serve`` behind a :class:`repro.fleet.FleetRouter`,
driven into overload by a seeded Poisson arrival trace with diurnal and
bursty envelopes and a deliberately skewed tenant mix (see
``repro.eval.fleet``). The same trace runs once per policy —
round-robin, least-loaded, latency-aware — and the benchmark reports
fleet-wide p50/p99 latency (per-instance samples pooled through
``LatencySummary.merge``), goodput and the rejection breakdown.

Checked contracts:

- the fleet is actually overloaded: every policy rejects some requests
  (bounded queues push back) yet completes most of the offered frames;
- load-aware balancing pays: least-loaded or latency-aware strictly
  beats round-robin on fleet-wide p99 under the skewed workload;
- a single-instance fleet is a faithful wrapper: driving the
  ``bench_serve`` trace through the fleet layer lands on the *pinned*
  seed cycle count of ``bench_perf`` (65324 full / 17066 smoke) —
  the lockstep coordinator adds zero simulated-time overhead;
- fleet runs are deterministic: two runs from the same workload seed
  produce identical routing decisions and identical latency tails.

Run:  pytest benchmarks/bench_fleet.py --benchmark-only -s
or:   PYTHONPATH=src python benchmarks/bench_fleet.py [--smoke]
"""

import argparse
import json
import sys
from pathlib import Path

from repro.eval import build_soc1
from repro.eval.fleet import (
    CAMPAIGN_POLICIES,
    run_fleet_campaign,
    standard_inputs,
    standard_tenants,
)
from repro.fleet import Arrival, Fleet, FleetInstance, FleetRouter
from repro.serve import ServerConfig

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_perf import SEED_CYCLES, SMOKE_CYCLES  # noqa: E402

#: Fleet size and workload seed of the graded campaign.
FLEET_INSTANCES = 4
WORKLOAD_SEED = 0


def single_instance_pin(smoke=False):
    """Drive the ``bench_serve`` trace through a 1-instance fleet.

    Same tenants, same frames, same submission order as the ``serve``
    workload of ``bench_perf`` — if the fleet layer is a faithful
    wrapper, the makespan must equal the pinned seed cycle count
    exactly (the instance executes the identical event sequence it
    would standalone).
    """
    n_requests, frames_per_request = (1, 1) if smoke else (2, 2)
    instance = FleetInstance.build(
        "i0", build_soc1, standard_tenants(),
        server_config=ServerConfig())
    fleet = Fleet([instance], FleetRouter([instance]))
    inputs = standard_inputs(n_frames=n_requests * frames_per_request)
    arrivals = [Arrival(0, tenant, frames_per_request)
                for tenant in inputs
                for _ in range(n_requests)]
    report = fleet.run(arrivals, inputs)
    assert not report.rejections and report.failed == 0
    return report.makespan_cycles


def run_fleet_benchmark(smoke=False, seed=WORKLOAD_SEED):
    """The graded campaign plus the pin and determinism probes."""
    reports = run_fleet_campaign(
        policies=CAMPAIGN_POLICIES, n_instances=FLEET_INSTANCES,
        seed=seed, smoke=smoke)
    # Determinism probe: a second run of one load-aware policy from
    # the same seed must reproduce routing decisions and the latency
    # tail bit-for-bit. (request_ids come from a process-global
    # counter, so compare (at, tenant, instance), not ids.)
    repeat = run_fleet_campaign(
        policies=("least-loaded",), n_instances=FLEET_INSTANCES,
        seed=seed, smoke=smoke)["least-loaded"]
    first = reports["least-loaded"]
    deterministic = (
        [(d.at, d.tenant, d.instance) for d in first.decisions]
        == [(d.at, d.tenant, d.instance) for d in repeat.decisions]
        and first.latency.p99 == repeat.latency.p99
        and first.makespan_cycles == repeat.makespan_cycles
        and len(first.rejections) == len(repeat.rejections))
    return {
        "reports": reports,
        "deterministic": deterministic,
        "pin_cycles": single_instance_pin(smoke=smoke),
        "pin_expected": (SMOKE_CYCLES if smoke else SEED_CYCLES)["serve"],
    }


def check(results):
    reports = results["reports"]
    assert len(reports) >= 3
    for policy, report in reports.items():
        assert len(report.per_instance) >= 4, policy
        # Overload regime: bounded queues reject, yet the fleet still
        # completes work (goodput is meaningful, not zero).
        assert report.rejections, policy
        assert report.completed_frames > 0, policy
        assert report.failed == 0, policy
        assert report.latency is not None, policy
        # Conservation: every offered request was routed, and is
        # accounted admitted or rejected.
        assert len(report.decisions) == report.offered_requests, policy
        assert (report.admitted + len(report.rejections)
                == report.offered_requests), policy
    rr = reports["round-robin"].latency.p99
    best_aware = min(reports["least-loaded"].latency.p99,
                     reports["latency-aware"].latency.p99)
    assert best_aware < rr, (
        f"load-aware balancing must strictly beat round-robin on "
        f"fleet p99: best aware {best_aware:.0f} vs rr {rr:.0f}")
    assert results["deterministic"], "fleet runs must be seed-deterministic"
    assert results["pin_cycles"] == results["pin_expected"], (
        f"single-instance fleet drifted: {results['pin_cycles']} vs "
        f"pinned {results['pin_expected']}")


def render(results):
    lines = []
    for policy, report in results["reports"].items():
        lines.append(report.render())
        lines.append("")
    lines.append(
        f"single-instance pin: {results['pin_cycles']} cycles "
        f"(expected {results['pin_expected']}); "
        f"deterministic: {results['deterministic']}")
    return "\n".join(lines)


def build_payload(results, smoke=False):
    """The ``BENCH_fleet.json`` payload (``BENCH_perf.json`` schema:
    benchmark / variant / workloads, one entry per policy)."""
    policies = {}
    for policy, report in results["reports"].items():
        latency = report.latency
        policies[policy] = {
            "instances": len(report.per_instance),
            "offered_requests": report.offered_requests,
            "offered_frames": report.offered_frames,
            "admitted": report.admitted,
            "completed_requests": report.completed_requests,
            "completed_frames": report.completed_frames,
            "rejected": len(report.rejections),
            "rejection_rate": round(report.rejection_rate, 4),
            "rejections_by_reason": report.rejections_by_reason(),
            "requests_by_instance": report.requests_by_instance(),
            "makespan_cycles": report.makespan_cycles,
            "goodput_fps": round(report.goodput_fps, 1),
            "latency": {
                "count": latency.count,
                "p50_cycles": round(latency.p50, 1),
                "p95_cycles": round(latency.p95, 1),
                "p99_cycles": round(latency.p99, 1),
                "max_cycles": round(latency.max, 1),
            },
        }
    return {
        "benchmark": "bench_fleet",
        "variant": "smoke" if smoke else "full",
        "fleet_instances": FLEET_INSTANCES,
        "workload_seed": WORKLOAD_SEED,
        "policies": policies,
        "deterministic": results["deterministic"],
        "single_instance_pin_cycles": results["pin_cycles"],
    }


def write_report(payload):
    out = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


# -- pytest entry point -----------------------------------------------------

def test_fleet_policies(once):
    results = once(run_fleet_benchmark, smoke=True)
    print("\n" + render(results))
    check(results)
    path = write_report(build_payload(results, smoke=True))
    print(f"report: {path}")


# -- standalone -------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short horizon for CI")
    args = parser.parse_args(argv)
    results = run_fleet_benchmark(smoke=args.smoke)
    print(render(results))
    check(results)
    path = write_report(build_payload(results, smoke=args.smoke))
    print(f"report: {path}")
    print("fleet benchmark: all assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
