"""Serving benchmark: concurrent multi-tenant inference on SoC-1.

Three applications share one SoC — the Night-Vision pipeline
(nv0 -> cl0), a standalone classifier (cl1) and the denoiser (de0) —
the explicit version of the paper's Sec. V claim that multiple
applications invoke different accelerator pipelines concurrently on
the same chip. The benchmark reports per-tenant p50/p99 latency plus
aggregate throughput, and checks the serving layer's contract:

- single-request serving is bit-exact with the seed executor path;
- no request is rejected at the benchmark's offered load;
- batched, concurrent serving beats running the same requests
  sequentially through ``Executor.execute`` (strictly), and beats
  single-request serving (monotone non-decreasing).

Run:  pytest benchmarks/bench_serve.py --benchmark-only -s
or:   PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]
"""

import argparse
import json
from pathlib import Path

import numpy as np

from repro.eval import build_soc1
from repro.eval.apps import (
    classifier_inputs,
    dataflow_nv_cl,
    de_cl_inputs,
    nv_cl_inputs,
)
from repro.runtime import Dataflow, EspRuntime, chain
from repro.serve import (
    InferenceServer,
    ServerConfig,
    TenantConfig,
    TracedRequest,
)

#: Requests per tenant / frames per request of the full benchmark.
BENCH_REQUESTS = 3
BENCH_FRAMES = 2
#: The smoke variant (CI) trims the trace to keep the job short.
SMOKE_REQUESTS = 2
SMOKE_FRAMES = 1


def tenant_dataflows():
    """The three concurrent applications and their pipelines."""
    return {
        "night-vision": dataflow_nv_cl(1, 1),      # nv0 -> cl0
        "classifier": chain("1cl-serve", ["cl1"]),
        "denoiser": chain("1de-serve", ["de0"]),
    }


def tenant_modes():
    return {"night-vision": "p2p", "classifier": "pipe",
            "denoiser": "pipe"}


def tenant_inputs(n_frames, seed=0):
    nv, _ = nv_cl_inputs(n_frames, seed=seed)
    cl, _ = classifier_inputs(n_frames, seed=seed + 1)
    de, _ = de_cl_inputs(n_frames, seed=seed + 2)
    return {"night-vision": nv, "classifier": cl, "denoiser": de}


def build_server():
    runtime = EspRuntime(build_soc1())
    server = InferenceServer(runtime, ServerConfig())
    modes = tenant_modes()
    for name, dataflow in tenant_dataflows().items():
        server.register(TenantConfig(name=name, dataflow=dataflow,
                                     mode=modes[name]))
    return runtime, server


def build_trace(n_requests, frames_per_request):
    """All tenants submit ``n_requests`` back-to-back at cycle 0."""
    inputs = tenant_inputs(n_requests * frames_per_request)
    trace = []
    for tenant, frames in inputs.items():
        for index in range(n_requests):
            lo = index * frames_per_request
            trace.append(TracedRequest(
                0, tenant, frames[lo:lo + frames_per_request]))
    return trace


def sequential_fps(trace):
    """The same requests, one at a time through ``Executor.execute``."""
    runtime = EspRuntime(build_soc1())
    dataflows = tenant_dataflows()
    modes = tenant_modes()
    env = runtime.soc.env
    start = env.now
    total_frames = 0
    for entry in trace:
        runtime.esp_run(dataflows[entry.tenant], entry.frames,
                        mode=modes[entry.tenant])
        total_frames += np.atleast_2d(entry.frames).shape[0]
    elapsed = env.now - start
    return total_frames / (elapsed / (runtime.soc.clock_mhz * 1e6))


def run_serve_benchmark(n_requests=BENCH_REQUESTS,
                        frames_per_request=BENCH_FRAMES):
    """The three serving measurements plus the bit-exactness probe."""
    # Single-request serving: one request per tenant.
    _, single_server = build_server()
    single_report = single_server.run_trace(
        build_trace(1, frames_per_request))

    # Batched serving: the full trace, coalesced per tenant.
    _, server = build_server()
    report = server.run_trace(build_trace(n_requests,
                                          frames_per_request))

    # Bit-exactness: the served single requests against esp_run.
    reference = EspRuntime(build_soc1())
    modes = tenant_modes()
    exact = {}
    for tenant, dataflow in tenant_dataflows().items():
        completion = next(c for c in single_report.completions
                          if c.tenant == tenant)
        frames = tenant_inputs(frames_per_request)[tenant]
        golden = reference.esp_run(dataflow, frames,
                                   mode=modes[tenant])
        exact[tenant] = bool(
            (completion.outputs == golden.outputs).all())

    return {
        "sequential_fps": sequential_fps(
            build_trace(n_requests, frames_per_request)),
        "single_report": single_report,
        "report": report,
        "bit_exact": exact,
    }


def check(results):
    report = results["report"]
    single = results["single_report"]
    assert all(results["bit_exact"].values()), results["bit_exact"]
    assert report.rejections == [] and report.failures == []
    assert single.rejections == [] and single.failures == []
    # Strict win over the sequential executor path (concurrency +
    # batching), and no regression against single-request serving.
    assert report.throughput_fps > results["sequential_fps"]
    assert report.throughput_fps >= single.throughput_fps


def render(results):
    report = results["report"]
    lines = [report.render(), ""]
    us = 1.0 / report.clock_mhz
    lines.append(f"{'tenant':<14}{'p50 us':>10}{'p99 us':>10}")
    for tenant, summary in sorted(report.latency_by_tenant.items()):
        scaled = summary.scaled(us)
        lines.append(f"{tenant:<14}{scaled.p50:>10.1f}"
                     f"{scaled.p99:>10.1f}")
    lines.append("")
    lines.append(
        f"throughput: sequential executor "
        f"{results['sequential_fps']:.1f} fps, single-request serving "
        f"{results['single_report'].throughput_fps:.1f} fps, batched "
        f"serving {report.throughput_fps:.1f} fps")
    lines.append(f"bit-exact vs seed executor: {results['bit_exact']}")
    return "\n".join(lines)


def build_payload(results, smoke=False):
    """The ``BENCH_serve.json`` payload (``BENCH_perf.json`` schema:
    benchmark / variant / workloads, one entry per measurement)."""
    report = results["report"]
    single = results["single_report"]

    def summaries(r):
        return {tenant: {"count": s.count,
                         "p50_cycles": round(s.p50, 1),
                         "p95_cycles": round(s.p95, 1),
                         "p99_cycles": round(s.p99, 1),
                         "max_cycles": round(s.max, 1)}
                for tenant, s in sorted(r.latency_by_tenant.items())}

    return {
        "benchmark": "bench_serve",
        "variant": "smoke" if smoke else "full",
        "workloads": {
            "sequential": {
                "throughput_fps": round(results["sequential_fps"], 2),
            },
            "single_request": {
                "throughput_fps": round(single.throughput_fps, 2),
                "makespan_cycles": single.makespan_cycles,
                "latency_by_tenant": summaries(single),
            },
            "batched": {
                "throughput_fps": round(report.throughput_fps, 2),
                "makespan_cycles": report.makespan_cycles,
                "admitted": report.admitted,
                "peak_queue_depth": report.peak_queue_depth,
                "rejected": len(report.rejections),
                "failed": len(report.failures),
                "latency_by_tenant": summaries(report),
            },
        },
        "bit_exact": results["bit_exact"],
    }


def write_report(payload):
    out = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


def test_concurrent_serving(once):
    results = once(run_serve_benchmark)
    print("\n" + render(results))
    check(results)
    path = write_report(build_payload(results))
    print(f"report: {path}")
    report = results["report"]
    # Coalescing actually happened: fewer batches than requests.
    total_batches = sum(report.batches_by_tenant.values())
    assert total_batches < len(report.completions)
    # Every tenant's hardware activity is attributed exclusively.
    nv = report.activity_by_tenant["night-vision"]
    assert set(nv) == {"nv0", "cl0"}
    assert set(report.activity_by_tenant["denoiser"]) == {"de0"}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small trace + assertions only (CI)")
    args = parser.parse_args()
    if args.smoke:
        results = run_serve_benchmark(
            n_requests=SMOKE_REQUESTS,
            frames_per_request=SMOKE_FRAMES)
    else:
        results = run_serve_benchmark()
    print(render(results))
    check(results)
    path = write_report(build_payload(results, smoke=args.smoke))
    print(f"report: {path}")
    print("serving benchmark: all assertions passed")


if __name__ == "__main__":
    main()
