"""Ablation: NoC load-latency curve under uniform random traffic.

The classic interconnect study: inject packets at increasing per-tile
rates and watch average latency hockey-stick at the saturation point
the bisection analysis predicts. Validates that the simulated mesh
behaves like the textbook wormhole network the ESP platform builds on.

Run:  pytest benchmarks/bench_noc_saturation.py --benchmark-only -s
"""

import numpy as np

from repro.noc import (
    DMA_REQUEST_PLANE,
    Mesh2D,
    MessageKind,
    Packet,
    saturation_injection_rate,
    zero_load_latency,
)
from repro.sim import Environment

COLS = ROWS = 4
PAYLOAD_FLITS = 7
WINDOW_CYCLES = 4000


def run_uniform_traffic(rate_flits_per_cycle: float, seed: int = 0):
    """Inject uniform random traffic; returns mean packet latency."""
    env = Environment()
    mesh = Mesh2D(env, COLS, ROWS)
    rng = np.random.default_rng(seed)
    size = PAYLOAD_FLITS + 1
    period = size / rate_flits_per_cycle
    packets = []

    def injector(src):
        # Bernoulli-ish injection: geometric gaps around the period.
        while env.now < WINDOW_CYCLES:
            gap = max(1, int(rng.exponential(period)))
            yield env.timeout(gap)
            dst = src
            while dst == src:
                dst = (int(rng.integers(COLS)), int(rng.integers(ROWS)))
            packet = Packet(src=src, dst=dst, plane=DMA_REQUEST_PLANE,
                            kind=MessageKind.DMA_REQ,
                            payload_flits=PAYLOAD_FLITS)
            packets.append(packet)
            mesh.send(packet)

    for x in range(COLS):
        for y in range(ROWS):
            env.process(injector((x, y)))
    env.run()
    latencies = [p.latency for p in packets if p.latency is not None]
    return float(np.mean(latencies)), len(latencies)


def test_load_latency_curve(once):
    saturation = saturation_injection_rate(COLS, ROWS)

    def sweep():
        rates = [0.05, 0.15, 0.3, 0.5, 0.8, 1.1]
        return {rate: run_uniform_traffic(rate) for rate in rates}

    results = once(sweep)
    zero_load = np.mean([
        zero_load_latency((0, 0), (x, y), PAYLOAD_FLITS)
        for x in range(COLS) for y in range(ROWS) if (x, y) != (0, 0)])
    print(f"\nanalytic saturation rate: {saturation:.2f} "
          f"flits/cycle/tile; zero-load mean ~{zero_load:.0f} cycles")
    print(f"{'rate':>6}{'mean latency':>14}{'packets':>9}")
    for rate, (latency, count) in results.items():
        marker = "  <-- past saturation" if rate > saturation else ""
        print(f"{rate:>6.2f}{latency:>14.1f}{count:>9}{marker}")

    rates = sorted(results)
    latencies = [results[r][0] for r in rates]
    # Latency grows monotonically with load...
    assert all(a <= b * 1.05 for a, b in zip(latencies, latencies[1:]))
    # ...stays near zero-load at light load...
    assert latencies[0] < 2.0 * zero_load
    # ...and blows up beyond the analytic saturation point.
    past = [results[r][0] for r in rates if r > saturation]
    below = [results[r][0] for r in rates if r <= 0.31]
    assert min(past) > 3.0 * max(below)
