"""Sec. VI model-quality benchmark: accuracy and reconstruction error.

The paper quotes two model-quality numbers: "The trained model
accuracy is 92%" (classifier) and "trained the model with a 3.1%
reconstruction error" (denoiser). This benchmark trains both models on
the synthetic SVHN stream (fast preset by default; see EXPERIMENTS.md
for full-preset results) and reports the achieved figures, plus the
fixed-point accuracy after HLS4ML compilation.

Run:  pytest benchmarks/bench_training.py --benchmark-only -s
"""

import numpy as np

from repro.accelerators import classifier_spec
from repro.datasets import flatten_frames, generate
from repro.flow import train_classifier, train_denoiser
from repro.nn import accuracy


def test_classifier_training(once):
    model, acc = once(train_classifier, preset="fast")
    print(f"\nclassifier accuracy (fast preset): {acc:.1%} "
          f"(paper, full training: 92%)")
    assert acc > 0.60   # fast preset band; full preset reaches ~0.9


def test_denoiser_training(once):
    model, err = once(train_denoiser, preset="fast")
    print(f"\ndenoiser reconstruction error/MSE (fast preset): {err:.1%} "
          f"(paper, full training: 3.1%)")
    assert err < 0.05


def test_fixed_point_preserves_accuracy(once):
    """HLS4ML's 16-bit fixed point should not change accuracy much."""
    model, float_acc = train_classifier(preset="fast")

    def quantized_accuracy():
        spec = classifier_spec(model)
        frames, labels = generate(256, seed=123)
        x = flatten_frames(frames)
        outputs = np.stack([spec.run(f) for f in x])
        return accuracy(outputs, labels)

    fixed_acc = once(quantized_accuracy)
    print(f"\nfloat accuracy {float_acc:.1%} -> "
          f"ap_fixed<16,6> accuracy {fixed_acc:.1%}")
    assert fixed_acc > float_acc - 0.05
