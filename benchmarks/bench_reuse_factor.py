"""Ablation: the HLS4ML reuse factor (Sec. II's parallelization knob).

Sweeps the classifier's reuse factor and verifies the first-order HLS
trade-offs the paper's flow exposes: II scales ~linearly with reuse,
DSPs inversely, and the system-level throughput of a balanced pipeline
saturates once the ML stage outruns its producer.

Run:  pytest benchmarks/bench_reuse_factor.py --benchmark-only -s
"""

from repro.accelerators import classifier_spec

REUSE_SWEEP = (128, 256, 512, 1024, 2048)


def test_reuse_factor_kernel_tradeoff(once):
    def sweep():
        return {reuse: classifier_spec(reuse_factor=reuse)
                for reuse in REUSE_SWEEP}

    specs = once(sweep)
    print(f"\n{'reuse':>6}{'II':>8}{'latency':>9}{'DSPs':>7}{'BRAM':>6}")
    for reuse, spec in specs.items():
        print(f"{reuse:>6}{spec.interval_cycles:>8,}"
              f"{spec.latency_cycles:>9,}{spec.resources.dsps:>7,}"
              f"{spec.resources.brams:>6,}")

    intervals = [specs[r].interval_cycles for r in REUSE_SWEEP]
    dsps = [specs[r].resources.dsps for r in REUSE_SWEEP]
    assert intervals == sorted(intervals)
    assert dsps == sorted(dsps, reverse=True)
    # Doubling reuse halves the multipliers for the dominant layer.
    assert specs[128].resources.dsps > 3 * specs[512].resources.dsps


def test_reuse_factor_system_saturation(once):
    """System fps stops improving once the classifier beats the NV
    stage that feeds it — the Sec. V balancing argument."""
    from repro.accelerators import night_vision_spec
    from repro.datasets import darken, flatten_frames, generate
    from repro.runtime import EspRuntime, replicated_stage
    from repro.soc import SoCConfig, build_soc

    def run_at(reuse):
        config = SoCConfig(cols=3, rows=2, name=f"dse-{reuse}")
        config.add_cpu((0, 0))
        config.add_memory((1, 0))
        config.add_aux((2, 0))
        config.add_accelerator((0, 1), "nv0", night_vision_spec())
        config.add_accelerator((1, 1), "cl0",
                               classifier_spec(reuse_factor=reuse))
        runtime = EspRuntime(build_soc(config))
        frames_img, _ = generate(16, seed=0)
        frames = flatten_frames(darken(frames_img))
        dataflow = replicated_stage("nv_cl", ["nv0"], ["cl0"])
        return runtime.esp_run(dataflow, frames,
                               mode="p2p").frames_per_second

    def sweep():
        return {reuse: run_at(reuse) for reuse in (256, 1024, 4096)}

    fps = once(sweep)
    print(f"\nsystem fps by reuse factor: "
          f"{ {k: round(v) for k, v in fps.items()} }")
    # 256 vs 1024: both faster than NV -> nearly identical system fps.
    assert abs(fps[256] - fps[1024]) / fps[256] < 0.1
    # 4096 makes the classifier the bottleneck -> visible drop.
    assert fps[4096] < 0.8 * fps[1024]
