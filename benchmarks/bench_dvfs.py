"""Ablation: per-tile DVFS on the paper's pipelines.

ESP pairs every tile with a DVFS controller (Mantovani et al. [21],
cited by the paper); the ESP4ML runtime can therefore slow any
accelerator whose pipeline stage has slack. This bench sweeps the
classifier's clock divider inside the 1NV+1Cl pipeline — the
classifier is ~2x faster than the Night-Vision stage feeding it, so
divider 1 wastes power and large dividers stall the pipeline.

Run:  pytest benchmarks/bench_dvfs.py --benchmark-only -s
"""

from repro.eval import APP_CONFIGS, fresh_runtime
from repro.platforms import soc_power_watts_dvfs

FRAMES = 32


def test_dvfs_divider_sweep(once):
    def sweep():
        config = APP_CONFIGS["1nv_1cl"]
        out = {}
        for divider in (1, 2, 4, 8):
            runtime = fresh_runtime(config)
            frames, _ = config.make_inputs(FRAMES)
            dvfs = {"cl0": divider} if divider > 1 else None
            result = runtime.esp_run(config.build_dataflow(), frames,
                                     mode="p2p", dvfs=dvfs)
            watts = soc_power_watts_dvfs(runtime.soc, dvfs or {})
            out[divider] = (result.frames_per_second, watts)
        return out

    results = once(sweep)
    print(f"\n{'divider':>8}{'frames/s':>12}{'watts':>8}{'frames/J':>11}")
    for divider, (fps, watts) in results.items():
        print(f"{divider:>8}{fps:>12,.0f}{watts:>8.3f}"
              f"{fps / watts:>11,.0f}")

    fps = {d: v[0] for d, v in results.items()}
    watts = {d: v[1] for d, v in results.items()}
    # Power decreases monotonically with the divider...
    assert watts[1] > watts[2] > watts[4] > watts[8]
    # ...but past the slack the pipeline stalls on the slowed stage:
    # at divider 8 the classifier (~5k cycles) far exceeds the NV
    # stage (~9k cycles), halving throughput or worse.
    assert fps[8] < 0.6 * fps[1]
    # Divider 2 sits near the slack boundary: small fps cost.
    assert fps[2] > 0.85 * fps[1]
