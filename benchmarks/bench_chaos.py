"""Chaos campaign: closed-loop self-healing vs. local recovery alone.

Runs :func:`repro.eval.chaos.run_chaos_campaign` — every fault class
(accelerator hang / crash / slow, DMA stall, NoC drop) injected into
the live three-tenant serving stack under open-loop traffic, each
scenario graded with the control plane on and off — and writes
``BENCH_chaos.json`` (``BENCH_faults.json`` schema family) with
per-class time-to-detect / MTTR against the declared recovery SLOs.

The pass bar is the self-healing claim itself: the controller-on arm
must recover **every** scenario within its fault class's SLO, and the
controller-off arm (which still has the full local watchdog / retry /
software-fallback machinery) must recover strictly fewer.

The second half is the safety claim: a *fault-free* run with the
whole observe-decide-act stack attached (sampler + health monitor +
control plane with a quarantined reserve pool) must stay bit-exact on
the pinned seed cycle counts of ``bench_perf`` — the control plane is
pay-for-what-you-use, costing zero cycles until an alert fires.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.control import ControlConfig, ControlPlane
from repro.eval.apps import APP_CONFIGS, fresh_runtime
from repro.eval.chaos import run_chaos_campaign
from repro.metrics import (
    HealthMonitor,
    MetricsSampler,
    default_rules,
    instrument_server,
)
from repro.serve import InferenceServer, ServerConfig

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_perf import (  # noqa: E402
    PIPE_FRAMES,
    SEED_CYCLES,
    SMOKE_CYCLES,
    SMOKE_PIPE_FRAMES,
)
from bench_serve import build_server, build_trace  # noqa: E402

#: Sampler tick for the zero-fault pin runs (same as bench_metrics).
SAMPLE_INTERVAL = 5_000

#: Reserve pool quarantined by the attached controller in the pin
#: runs. The pipeline workloads stream through every nv/cl tile, so
#: holding tiles back there would *rightly* change behaviour — the
#: serve pin uses the chaos pool to prove quarantine itself is free
#: on tiles the workload does not claim.
SERVE_RESERVE_POOL = ("cl2", "cl3", "nv1", "nv2")


def _observe_stack(server, controller_on, reserve_pool):
    """Attach sampler + monitor (+ controller) to a server; return
    (monitor, controller-or-None, sampler)."""
    registry = instrument_server(server)
    monitor = HealthMonitor(registry, default_rules(server))
    controller = None
    if controller_on:
        controller = ControlPlane(server, monitor, ControlConfig(
            reserve_pool=reserve_pool)).attach()
    sampler = MetricsSampler(registry, interval=SAMPLE_INTERVAL,
                             callbacks=[lambda _reg: monitor.evaluate()])
    return monitor, controller, sampler


def zero_fault_serve(controller_on, smoke=False):
    """The bench_serve trace with the full stack attached; must land
    exactly on the pinned seed cycle count with zero actions taken."""
    runtime, server = build_server()
    monitor, controller, sampler = _observe_stack(
        server, controller_on, SERVE_RESERVE_POOL)
    sampler.start()
    n_requests, frames = (1, 1) if smoke else (2, 2)
    server.run_trace(build_trace(n_requests, frames))
    env = runtime.soc.env
    return {
        "cycles": env.now,
        "actions": len(controller.actions) if controller else 0,
        "alerts": len(monitor.history),
        "health": monitor.status(),
    }


def zero_fault_pipeline(name, controller_on, smoke=False):
    """One 4nv_4cl pipeline run with the stack attached to an (idle)
    server over the same SoC. ``esp_run`` drains the event loop dry,
    so the sampler is bounded to stop before the pinned end cycle."""
    expected = (SMOKE_CYCLES if smoke else SEED_CYCLES)[name]
    config = APP_CONFIGS["4nv_4cl"]
    n_frames = SMOKE_PIPE_FRAMES if smoke else PIPE_FRAMES
    frames, _ = config.make_inputs(n_frames, seed=0)
    runtime = fresh_runtime(config)
    server = InferenceServer(runtime, ServerConfig())
    monitor, controller, sampler = _observe_stack(
        server, controller_on, reserve_pool=())
    sampler.max_samples = max(1, expected // SAMPLE_INTERVAL)
    sampler.start()
    runtime.esp_run(config.build_dataflow(), frames,
                    mode="p2p" if name == "p2p" else "pipe")
    env = runtime.soc.env
    return {
        "cycles": env.now,
        "actions": len(controller.actions) if controller else 0,
        "alerts": len(monitor.history),
        "health": monitor.status(),
    }


def run_zero_fault_pins(smoke=False):
    """Both arms of every pinned workload; raises on any drift."""
    expected = SMOKE_CYCLES if smoke else SEED_CYCLES
    pins = {}
    for name in ("p2p", "dma", "serve"):
        run = zero_fault_serve if name == "serve" else (
            lambda on, s, _n=name: zero_fault_pipeline(_n, on, s))
        rows = {}
        for arm in ("on", "off"):
            row = run(arm == "on", smoke)
            rows[arm] = row
            if row["cycles"] != expected[name]:
                raise AssertionError(
                    f"zero-fault {name!r} (controller {arm}) drifted: "
                    f"{row['cycles']} cycles != pinned "
                    f"{expected[name]} — the control plane must cost "
                    f"zero cycles while healthy")
            if row["actions"] or row["alerts"]:
                raise AssertionError(
                    f"zero-fault {name!r} (controller {arm}) was not "
                    f"quiet: {row['actions']} actions, "
                    f"{row['alerts']} alerts")
        pins[name] = {"expected_cycles": expected[name], **rows}
    return pins


def check_campaign(report):
    """The self-healing pass bar; raises with the report on failure."""
    on, off = report.arm("on"), report.arm("off")
    assert on and off, "campaign produced no scenario arms"
    fired = [r for r in report.results if not r.faults_fired]
    assert not fired, f"faults never fired: {[r.scenario for r in fired]}"
    if report.recovered_count("on") != len(on):
        raise AssertionError(
            "controller-on arm missed its recovery SLO:\n"
            + report.render())
    if not report.controller_strictly_better:
        raise AssertionError(
            "controller-off arm recovered as much as controller-on — "
            "the control plane added nothing:\n" + report.render())
    for result in on:
        assert result.ttd_cycles is not None, result.scenario
        assert result.ttr_cycles is not None, result.scenario
        assert result.ttr_cycles <= result.recovery_slo_cycles, \
            result.scenario


def build_payload(report, pins, wall_s, smoke=False):
    return {
        "benchmark": "chaos",
        "variant": "smoke" if smoke else "full",
        "wall_s": round(wall_s, 3),
        "zero_fault_pins": pins,
        **report.to_dict(),
    }


def write_report(payload):
    out = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


def run_bench(smoke=False):
    start = time.perf_counter()
    report = run_chaos_campaign(smoke=smoke)
    check_campaign(report)
    pins = run_zero_fault_pins(smoke=smoke)
    return report, pins, time.perf_counter() - start


# -- pytest entry points ----------------------------------------------------

def test_chaos_campaign(once):
    report, pins, wall = once(run_bench, smoke=True)
    print("\n" + report.render())
    path = write_report(build_payload(report, pins, wall, smoke=True))
    print(f"report: {path}")


# -- standalone -------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="two-scenario short-horizon campaign for CI")
    args = parser.parse_args(argv)
    report, pins, wall = run_bench(smoke=args.smoke)
    print(report.render())
    for name, row in pins.items():
        print(f"zero-fault pin {name:6s} {row['expected_cycles']:>6d} "
              f"cycles: controller-on {row['on']['cycles']}, "
              f"controller-off {row['off']['cycles']} — held")
    path = write_report(build_payload(report, pins, wall,
                                      smoke=args.smoke))
    print(f"report: {path} ({wall:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
