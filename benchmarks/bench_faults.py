"""Fault-campaign benchmark: recovery rate and cycle overhead.

Sweeps every fault kind x rate x execution mode over the three-stage
Denoiser -> Night-Vision -> Classifier pipeline on SoC-1 and checks
the robustness claims: the recovery stack (watchdog + bounded retry +
software fallback + graceful degradation + application retry) delivers
bit-exact outputs for at least 95% of fault runs, and arming the
recovery machinery without faults costs nothing — cycle counts stay
identical to the unguarded runtime.

Run:  pytest benchmarks/bench_faults.py --benchmark-only -s
or:   PYTHONPATH=src python benchmarks/bench_faults.py [--smoke]
"""

import argparse
import json
from pathlib import Path

from repro.eval import run_fault_campaign
from repro.eval.faults import (
    campaign_policy,
    chain3_dataflow,
    golden_run,
    smoke_campaign,
)
from repro.eval import build_soc1, de_cl_inputs
from repro.faults import FaultInjector, zero_fault_plan
from repro.runtime import EspRuntime

#: Frames per campaign run: small enough that the full sweep stays in
#: benchmark territory, large enough that every pipeline stage overlaps.
CAMPAIGN_FRAMES = 4


def build_payload(report, smoke=False):
    """The ``BENCH_faults.json`` payload (``BENCH_perf.json`` schema:
    benchmark / variant / workloads, one entry per fault kind)."""
    workloads = {}
    for record in report.records:
        entry = workloads.setdefault(record.kind, {
            "runs": 0, "recovered": 0, "faults_fired": 0,
            "retries": 0, "watchdog_timeouts": 0, "degraded_runs": 0,
        })
        entry["runs"] += 1
        entry["recovered"] += int(record.recovered)
        entry["faults_fired"] += record.faults_fired
        entry["retries"] += record.retries
        entry["watchdog_timeouts"] += record.watchdog_timeouts
        entry["degraded_runs"] += int(record.degraded)
    for kind, summary in report.overhead_by_kind().items():
        workloads[kind]["overhead_pct"] = {
            "mean": round(summary.mean, 1),
            "p95": round(summary.p95, 1),
            "max": round(summary.max, 1),
        }
    return {
        "benchmark": "bench_faults",
        "variant": "smoke" if smoke else "full",
        "recovery_rate": round(report.recovery_rate, 4),
        "faults_fired": report.faults_fired,
        "workloads": workloads,
    }


def write_report(payload):
    out = Path(__file__).resolve().parent.parent / "BENCH_faults.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


def test_fault_campaign(once):
    report = once(run_fault_campaign, n_frames=CAMPAIGN_FRAMES)
    print("\n" + report.render())
    path = write_report(build_payload(report))
    print(f"report: {path}")
    print("\ncycle overhead (%) over firing runs, by fault kind:")
    for kind, summary in report.overhead_by_kind().items():
        print(f"  {kind:<14} mean={summary.mean:8.1f}%  "
              f"p95={summary.p95:8.1f}%  max={summary.max:8.1f}%")

    assert report.recovery_rate >= 0.95, report.render()
    assert report.faults_fired > 0
    # Every fault kind demonstrably strikes at the top swept rate.
    fired_kinds = {r.kind for r in report.records if r.faults_fired}
    assert fired_kinds == {r.kind for r in report.records}
    # Overhead is reported for every kind that fired.
    assert set(report.overhead_by_kind()) == fired_kinds


def test_zero_fault_plan_costs_nothing(once):
    """Pay-for-what-you-use: an armed recovery policy plus an attached
    (empty) fault plan must not change a single cycle of a fault-free
    run relative to the seed runtime."""

    def compare():
        frames, _ = de_cl_inputs(CAMPAIGN_FRAMES, seed=0)
        out = {}
        for mode in ("pipe", "p2p"):
            golden, baseline = golden_run(frames, mode)

            soc = build_soc1()
            FaultInjector(zero_fault_plan()).attach(soc)
            bare = EspRuntime(soc).esp_run(
                chain3_dataflow(), frames, mode=mode)

            soc = build_soc1()
            FaultInjector(zero_fault_plan()).attach(soc)
            armed = EspRuntime(
                soc, recovery=campaign_policy(baseline)).esp_run(
                chain3_dataflow(), frames, mode=mode)
            out[mode] = (baseline, bare.cycles, armed.cycles,
                         (bare.outputs == golden).all(),
                         (armed.outputs == golden).all())
        return out

    results = once(compare)
    for mode, (baseline, bare, armed, bare_ok, armed_ok) in \
            results.items():
        print(f"\n{mode}: seed={baseline} zero-fault-plan={bare} "
              f"armed={armed}")
        assert bare == baseline, mode      # injector alone is free
        assert bare_ok and armed_ok, mode  # outputs stay bit-exact


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="trimmed campaign for CI")
    args = parser.parse_args()
    if args.smoke:
        report = smoke_campaign()
    else:
        report = run_fault_campaign(n_frames=CAMPAIGN_FRAMES)
    print(report.render())
    assert report.faults_fired > 0, "campaign injected nothing"
    assert report.recovery_rate >= 0.95, (
        f"recovery rate {report.recovery_rate:.0%} below bar")
    path = write_report(build_payload(report, smoke=args.smoke))
    print(f"report: {path}")


if __name__ == "__main__":
    main()
