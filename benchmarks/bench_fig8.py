"""Fig. 8 reproduction benchmark: DRAM accesses with/without p2p.

Regenerates the three bars of the figure (relative DRAM accesses for
the best-case configuration of each application) and checks the
paper's quantitative claim: "this reduction varies between 2x and 3x
for the target applications".

Run:  pytest benchmarks/bench_fig8.py --benchmark-only -s
"""

from repro.eval import generate_fig8, render_fig8

from .conftest import BENCH_FRAMES


def test_fig8(once):
    bars = once(generate_fig8, n_frames=BENCH_FRAMES)
    print("\n" + render_fig8(bars))
    for bar in bars:
        assert 1.8 <= bar.reduction <= 3.2, (bar.app_key, bar.reduction)


def test_fig8_traffic_stays_on_dma_planes(once):
    """Contribution 1: p2p reuses the two DMA planes — no other plane
    carries accelerator data, and no plane was added."""
    from repro.eval import APP_CONFIGS, fresh_runtime
    from repro.noc import DMA_REQUEST_PLANE, DMA_RESPONSE_PLANE, IO_PLANE

    def run():
        config = APP_CONFIGS["4nv_4cl"]
        runtime = fresh_runtime(config)
        frames, _ = config.make_inputs(BENCH_FRAMES)
        runtime.esp_run(config.build_dataflow(), frames, mode="p2p")
        return runtime.soc.mesh.plane_flits()

    flits = once(run)
    print(f"\nflit-hops per plane: {flits}")
    busy = {plane for plane, count in flits.items() if count > 0}
    # Data on the DMA planes, register writes / IRQs on the IO plane,
    # coherence planes untouched by accelerator traffic.
    assert busy <= {DMA_REQUEST_PLANE, DMA_RESPONSE_PLANE, IO_PLANE}
    assert flits[DMA_RESPONSE_PLANE] > 0
    assert flits[DMA_REQUEST_PLANE] > 0
