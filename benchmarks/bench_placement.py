"""Ablation: accelerator placement (floorplanning) on the tile grid.

Paper Sec. IV: the designer picks each accelerator's location in the
ESP GUI. This bench quantifies how much placement matters for a
NoC-heavy pipeline: the same 6-stage chain placed (a) adversarially
(stages scattered corner to corner), (b) naively (row-major in
declaration order) and (c) by the optimizer
(:mod:`repro.flow.placement`). The figure of merit is flit-hops — the
link-energy proxy — plus end-to-end cycles.

Run:  pytest benchmarks/bench_placement.py --benchmark-only -s
"""

import numpy as np

from repro.flow import placed_soc_config
from repro.runtime import EspRuntime, chain
from repro.soc import SoCConfig, build_soc
from tests.conftest import make_spec

N_STAGES = 6
WORDS = 512
FRAMES = 16


def stage_devices():
    return [(f"s{i}", make_spec(name=f"s{i}", input_words=WORDS,
                                output_words=WORDS, latency=40))
            for i in range(N_STAGES)]


def manual_config(order):
    """Row-major placement of the devices in the given order."""
    config = SoCConfig(cols=3, rows=3, name="manual")
    config.add_cpu(config.next_free())
    config.add_memory(config.next_free())
    config.add_aux(config.next_free())
    specs = dict(stage_devices())
    for name in order:
        config.add_accelerator(config.next_free(), name, specs[name])
    return config


def run(config, dataflow):
    runtime = EspRuntime(build_soc(config))
    frames = np.random.default_rng(0).uniform(0, 1, (FRAMES, WORDS))
    result = runtime.esp_run(dataflow, frames, mode="p2p")
    return result, runtime.soc.mesh.flit_hops


def test_placement_quality(once):
    dataflow = chain("c", [f"s{i}" for i in range(N_STAGES)])

    def sweep():
        adversarial = manual_config(
            ["s0", "s3", "s1", "s4", "s2", "s5"])
        naive = manual_config([f"s{i}" for i in range(N_STAGES)])
        optimized = placed_soc_config(3, 3, "opt", stage_devices(),
                                      dataflow)
        return {label: run(config, dataflow)
                for label, config in (("adversarial", adversarial),
                                      ("naive", naive),
                                      ("optimized", optimized))}

    results = once(sweep)
    print(f"\n{'placement':<13}{'cycles':>9}{'flit-hops':>11}")
    for label, (result, hops) in results.items():
        print(f"{label:<13}{result.cycles:>9,}{hops:>11,}")

    hops = {label: h for label, (_, h) in results.items()}
    cycles = {label: r.cycles for label, (r, _) in results.items()}
    # Link energy (flit-hops) strictly improves with better placement.
    assert hops["optimized"] <= hops["naive"] < hops["adversarial"]
    # End-to-end time also improves vs the adversarial floorplan.
    assert cycles["optimized"] <= cycles["adversarial"]
