"""Metrics-overhead benchmark: recording is cheap and timing-neutral.

Re-runs the three ``bench_perf`` workloads with the metrics registry
attached and enforces the subsystem's two contracts:

1. **Timing neutrality** (hard): metrics-enabled runs land on the
   exact pinned simulated-cycle and event counts of the seed — passive
   recording cannot move simulated time by a single cycle. A sampled
   run (periodic scrape process) keeps the cycle pin while adding only
   its own timeout events.
2. **Low wall-clock overhead** (soft floor): events/second with
   recording on stays within ``OVERHEAD_FLOOR`` of the metrics-off
   rate measured in the same process (best-of-``ROUNDS`` on both
   sides, so machine noise largely cancels). The smoke variant used in
   CI relaxes the floor — shared runners are noisy.

The scraped exposition is validated end-to-end (``to_prometheus`` ->
``parse_exposition`` round-trip) and the final registry snapshot lands
in ``artifacts/metrics.json`` together with the overhead table — the
artifact the ``metrics-smoke`` CI job uploads.

Run:  pytest benchmarks/bench_metrics.py -s
or:   PYTHONPATH=src python benchmarks/bench_metrics.py [--smoke]
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.eval.apps import APP_CONFIGS, fresh_runtime
from repro.metrics import (
    HealthMonitor,
    MetricsSampler,
    attach_metrics,
    default_rules,
    instrument_server,
    parse_exposition,
    to_prometheus,
)

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_perf import (  # noqa: E402
    PIPE_FRAMES,
    ROUNDS,
    SEED_CYCLES,
    SEED_EVENTS,
    SMOKE_CYCLES,
    SMOKE_EVENTS,
    SMOKE_PIPE_FRAMES,
)
from bench_serve import build_server, build_trace  # noqa: E402

#: Minimum acceptable (metrics-on events/s) / (metrics-off events/s).
#: Full runs hold the 10%-overhead bar; the CI smoke variant only
#: guards against pathological regressions.
OVERHEAD_FLOOR = 0.90
SMOKE_OVERHEAD_FLOOR = 0.50

#: Scrape interval of the sampled run, in cycles.
SAMPLE_INTERVAL = 5_000


def run_pipeline(mode, n_frames, instrument):
    config = APP_CONFIGS["4nv_4cl"]
    frames, _ = config.make_inputs(n_frames, seed=0)
    runtime = fresh_runtime(config)
    if instrument:
        attach_metrics(runtime.soc.env)
    dataflow = config.build_dataflow()
    start = time.perf_counter()
    runtime.esp_run(dataflow, frames, mode=mode)
    wall = time.perf_counter() - start
    env = runtime.soc.env
    return wall, env.now, env.events_processed


def run_serve(n_requests, frames_per_request, instrument):
    runtime, server = build_server()
    if instrument:
        instrument_server(server)
    trace = build_trace(n_requests, frames_per_request)
    start = time.perf_counter()
    server.run_trace(trace)
    wall = time.perf_counter() - start
    env = runtime.soc.env
    return wall, env.now, env.events_processed


def workload_runner(name, smoke):
    if name == "serve":
        n_requests, frames = (1, 1) if smoke else (2, 2)
        return lambda instrument: run_serve(n_requests, frames,
                                            instrument)
    mode = "p2p" if name == "p2p" else "pipe"
    n_frames = SMOKE_PIPE_FRAMES if smoke else PIPE_FRAMES
    return lambda instrument: run_pipeline(mode, n_frames, instrument)


def measure_workload(name, smoke=False):
    """Off/on best-of-``ROUNDS`` pair, pins enforced on both."""
    run = workload_runner(name, smoke)
    expected_cycles = (SMOKE_CYCLES if smoke else SEED_CYCLES)[name]
    expected_events = (SMOKE_EVENTS if smoke else SEED_EVENTS)[name]
    best = {}
    for label, instrument in (("off", False), ("on", True)):
        for _ in range(ROUNDS):
            wall, cycles, events = run(instrument)
            if cycles != expected_cycles:
                raise AssertionError(
                    f"cycle drift on {name!r} (metrics {label}): "
                    f"{cycles} != pinned {expected_cycles} — recording "
                    f"must be timing-neutral")
            if events != expected_events:
                raise AssertionError(
                    f"event drift on {name!r} (metrics {label}): "
                    f"{events} != pinned {expected_events}")
            best[label] = min(best.get(label, wall), wall)
    ratio = best["off"] / best["on"]
    return {
        "cycles": expected_cycles,
        "events": expected_events,
        "wall_off_s": round(best["off"], 6),
        "wall_on_s": round(best["on"], 6),
        "events_per_sec_off": round(expected_events / best["off"]),
        "events_per_sec_on": round(expected_events / best["on"]),
        "throughput_ratio": round(ratio, 3),
    }


def run_sampled_serve(smoke=False):
    """The scraping run: sampler + health rules + live exposition.

    Returns (registry snapshot, scrape stats). Cycles must stay on the
    pin; the sampler's own timeout events are the only event-count
    delta allowed.
    """
    runtime, server = build_server()
    registry = instrument_server(server)
    monitor = HealthMonitor(registry, default_rules(server))
    scrapes = []

    def scrape(reg):
        monitor.evaluate()
        samples = parse_exposition(to_prometheus(reg))
        scrapes.append(len(samples))

    MetricsSampler(registry, interval=SAMPLE_INTERVAL,
                   callbacks=[scrape]).start()
    n_requests, frames = (1, 1) if smoke else (2, 2)
    server.run_trace(build_trace(n_requests, frames))
    monitor.evaluate()

    env = runtime.soc.env
    expected_cycles = (SMOKE_CYCLES if smoke else SEED_CYCLES)["serve"]
    expected_events = (SMOKE_EVENTS if smoke else SEED_EVENTS)["serve"]
    if env.now != expected_cycles:
        raise AssertionError(
            f"sampled serve run drifted: {env.now} cycles != pinned "
            f"{expected_cycles} — scraping must cost zero cycles")
    extra = env.events_processed - expected_events
    if not 0 < extra <= expected_cycles // SAMPLE_INTERVAL + 1:
        raise AssertionError(
            f"sampled run dispatched {extra} extra events; expected "
            f"only the sampler's own ticks")
    if not scrapes or min(scrapes) == 0:
        raise AssertionError("exposition scrape came back empty")
    final = parse_exposition(to_prometheus(registry))
    if monitor.status() != "healthy":
        raise AssertionError(f"healthy run reported "
                             f"{monitor.status()}: {monitor.render()}")
    stats = {
        "scrapes": len(scrapes),
        "final_exposition_samples": len(final),
        "sampler_extra_events": extra,
        "health": monitor.status(),
        "health_incidents": len(monitor.history),
    }
    return registry.snapshot(), stats


def run_bench(smoke=False):
    floor = SMOKE_OVERHEAD_FLOOR if smoke else OVERHEAD_FLOOR
    workloads = {}
    for name in ("p2p", "dma", "serve"):
        workloads[name] = measure_workload(name, smoke=smoke)
    snapshot, scrape_stats = run_sampled_serve(smoke=smoke)
    payload = {
        "benchmark": "bench_metrics",
        "variant": "smoke" if smoke else "full",
        "rounds": ROUNDS,
        "overhead_floor": floor,
        "workloads": workloads,
        "sampled_serve": scrape_stats,
        "snapshot": snapshot,
    }
    for name, row in workloads.items():
        if row["throughput_ratio"] < floor:
            raise AssertionError(
                f"metrics overhead on {name!r} too high: "
                f"{row['events_per_sec_on']} ev/s on vs "
                f"{row['events_per_sec_off']} ev/s off "
                f"(ratio {row['throughput_ratio']} < floor {floor})")
    return payload


def write_report(payload):
    out_dir = Path(__file__).resolve().parent.parent / "artifacts"
    out_dir.mkdir(exist_ok=True)
    out = out_dir / "metrics.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


def print_report(payload):
    print(f"\nmetrics overhead ({payload['variant']}, best of "
          f"{payload['rounds']} rounds, floor "
          f"{payload['overhead_floor']}):")
    for name, row in payload["workloads"].items():
        print(f"  {name:6s} {row['cycles']:>7d} cycles  "
              f"off {row['events_per_sec_off']:>8d} ev/s  "
              f"on {row['events_per_sec_on']:>8d} ev/s  "
              f"ratio {row['throughput_ratio']:.3f}")
    stats = payload["sampled_serve"]
    print(f"  sampled serve: {stats['scrapes']} scrapes, "
          f"{stats['final_exposition_samples']} exposition samples, "
          f"+{stats['sampler_extra_events']} sampler events, "
          f"health {stats['health']}")


# -- pytest entry points ----------------------------------------------------

def test_metrics_overhead():
    payload = run_bench(smoke=False)
    path = write_report(payload)
    print_report(payload)
    print(f"  report: {path}")


# -- standalone -------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="trimmed workloads + relaxed floor for CI")
    args = parser.parse_args(argv)
    payload = run_bench(smoke=args.smoke)
    path = write_report(payload)
    print_report(payload)
    print(f"  report: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
