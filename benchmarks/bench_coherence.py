"""Ablation: cache-coherence models vs the p2p service.

The paper's introduction positions p2p against "the corresponding
versions that use off-chip memory for inter-accelerator communication,
which is normally the most efficient accelerator cache-coherence model
for non-trivial workloads with regular memory access pattern" (citing
Giri et al. [12]). This bench makes that comparison explicit on one
SoC: non-coherent DMA vs LLC-coherent DMA vs p2p for the same
two-stage pipeline.

Run:  pytest benchmarks/bench_coherence.py --benchmark-only -s
"""

import numpy as np

from repro.runtime import EspRuntime, chain
from repro.soc import SoCConfig, build_soc
from tests.conftest import make_spec

FRAMES = 24


def build_runtime(llc_words=1 << 15):
    config = SoCConfig(cols=4, rows=2, name="coherence")
    config.add_cpu((0, 0))
    config.add_memory((1, 0), size_words=1 << 17, llc_words=llc_words)
    config.add_aux((2, 0))
    spec = make_spec(input_words=1024, output_words=1024, latency=800)
    config.add_accelerator((3, 0), "a0", spec)
    config.add_accelerator((0, 1), "b0", spec)
    return EspRuntime(build_soc(config))


def test_coherence_models(once):
    def sweep():
        frames = np.random.default_rng(0).uniform(0, 1, (FRAMES, 1024))
        results = {}
        for key, mode, coherent in (
                ("non-coherent", "pipe", False),
                ("llc-coherent", "pipe", True),
                ("p2p", "p2p", False)):
            rt = build_runtime()
            results[key] = rt.esp_run(chain("ab", ["a0", "b0"]), frames,
                                      mode=mode, coherent=coherent)
        return results

    results = once(sweep)
    print(f"\n{'model':<14}{'frames/s':>12}{'DRAM words':>12}")
    for key, result in results.items():
        print(f"{key:<14}{result.frames_per_second:>12,.0f}"
              f"{result.dram_accesses:>12,}")

    dram = {k: r.dram_accesses for k, r in results.items()}
    fps = {k: r.frames_per_second for k, r in results.items()}
    # The LLC absorbs the intermediate frames (its job: [12] calls it
    # the most efficient DMA model), matching p2p's DRAM reduction...
    assert dram["llc-coherent"] < dram["non-coherent"]
    assert dram["p2p"] <= dram["llc-coherent"]
    assert fps["llc-coherent"] > fps["non-coherent"]
    # ...but p2p also removes the memory-tile round trip and the
    # per-frame software synchronization, winning on throughput — the
    # paper's argument for the new service.
    assert fps["p2p"] > 1.2 * fps["llc-coherent"]


def test_llc_capacity_sweep(once):
    """DRAM traffic vs LLC size: thrash -> fit transition."""
    def sweep():
        frames = np.random.default_rng(0).uniform(0, 1, (FRAMES, 1024))
        out = {}
        for llc_words in (2048, 8192, 1 << 15):
            rt = build_runtime(llc_words=llc_words)
            out[llc_words] = rt.esp_run(
                chain("ab", ["a0", "b0"]), frames, mode="pipe",
                coherent=True).dram_accesses
        return out

    dram = once(sweep)
    print(f"\nDRAM words by LLC capacity: { {k: f'{v:,}' for k, v in dram.items()} }")
    sizes = sorted(dram)
    assert dram[sizes[-1]] < dram[sizes[0]]
