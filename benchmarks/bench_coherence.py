"""Ablation: cache-coherence models vs the p2p service, plus the tuner.

The paper's introduction positions p2p against "the corresponding
versions that use off-chip memory for inter-accelerator communication,
which is normally the most efficient accelerator cache-coherence model
for non-trivial workloads with regular memory access pattern" (citing
Giri et al. [12]). This bench makes that comparison explicit on one
SoC — non-coherent DMA vs LLC-coherent DMA vs fully-coherent private
caches vs p2p for the same two-stage pipeline — and then sweeps the
:mod:`repro.tune` ablation workloads through the auto-tuner, gating
its contract: the tuned assignment is **never worse than the best
uniform coherence mode** on any workload. The sweep's numbers land in
``BENCH_coherence.json`` at the repo root (uploaded as a CI artifact
by the ``coherence-smoke`` job).

Run:  pytest benchmarks/bench_coherence.py --benchmark-only -s
or:   PYTHONPATH=src python benchmarks/bench_coherence.py [--smoke]
"""

import argparse
import json
from pathlib import Path

import numpy as np

from repro.runtime import EspRuntime, chain
from repro.soc import SoCConfig, build_soc
from repro.tune import UNIFORM_MODES, ablation_workloads, autotune

FRAMES = 24
#: Frames per workload in the CI smoke variant of the tuner sweep.
SMOKE_FRAMES = 6


def build_runtime(llc_words=1 << 15):
    # Lazy: ``tests`` is importable under pytest (rootdir on sys.path)
    # but not when CI runs this file directly for the tuner smoke.
    from tests.conftest import make_spec
    config = SoCConfig(cols=4, rows=2, name="coherence")
    config.add_cpu((0, 0))
    config.add_memory((1, 0), size_words=1 << 17, llc_words=llc_words)
    config.add_aux((2, 0))
    spec = make_spec(input_words=1024, output_words=1024, latency=800)
    config.add_accelerator((3, 0), "a0", spec)
    config.add_accelerator((0, 1), "b0", spec)
    return EspRuntime(build_soc(config))


def test_coherence_models(once):
    def sweep():
        frames = np.random.default_rng(0).uniform(0, 1, (FRAMES, 1024))
        results = {}
        for key, mode, coherence in (
                ("non-coherent", "pipe", None),
                ("llc-coherent", "pipe", "llc-coherent"),
                ("fully-coherent", "pipe", "fully-coherent"),
                ("p2p", "p2p", None)):
            rt = build_runtime()
            results[key] = rt.esp_run(chain("ab", ["a0", "b0"]), frames,
                                      mode=mode, coherence=coherence)
        return results

    results = once(sweep)
    print(f"\n{'model':<16}{'frames/s':>12}{'DRAM words':>12}")
    for key, result in results.items():
        print(f"{key:<16}{result.frames_per_second:>12,.0f}"
              f"{result.dram_accesses:>12,}")

    dram = {k: r.dram_accesses for k, r in results.items()}
    fps = {k: r.frames_per_second for k, r in results.items()}
    # The LLC absorbs the intermediate frames (its job: [12] calls it
    # the most efficient DMA model), matching p2p's DRAM reduction...
    assert dram["llc-coherent"] < dram["non-coherent"]
    assert dram["p2p"] <= dram["llc-coherent"]
    assert fps["llc-coherent"] > fps["non-coherent"]
    # Private caches also keep the intermediate frames on chip; the
    # outputs stay bit-identical because caches only shape timing.
    assert dram["fully-coherent"] < dram["non-coherent"]
    assert (results["fully-coherent"].outputs ==
            results["non-coherent"].outputs).all()
    # ...but p2p also removes the memory-tile round trip and the
    # per-frame software synchronization, winning on throughput — the
    # paper's argument for the new service.
    assert fps["p2p"] > 1.2 * fps["llc-coherent"]


def test_llc_capacity_sweep(once):
    """DRAM traffic vs LLC size: thrash -> fit transition."""
    def sweep():
        frames = np.random.default_rng(0).uniform(0, 1, (FRAMES, 1024))
        out = {}
        for llc_words in (2048, 8192, 1 << 15):
            rt = build_runtime(llc_words=llc_words)
            out[llc_words] = rt.esp_run(
                chain("ab", ["a0", "b0"]), frames, mode="pipe",
                coherence="llc-coherent").dram_accesses
        return out

    dram = once(sweep)
    print(f"\nDRAM words by LLC capacity: { {k: f'{v:,}' for k, v in dram.items()} }")
    sizes = sorted(dram)
    assert dram[sizes[-1]] < dram[sizes[0]]


def run_tuner_sweep(smoke=False):
    """Autotune every ablation workload; returns name -> TuneResult."""
    results = {}
    for wl in ablation_workloads():
        frames = wl.frames[:SMOKE_FRAMES] if smoke else wl.frames
        results[wl.name] = autotune(wl.build, wl.dataflow, frames,
                                    mode=wl.mode)
    return results


def check_tuner(results):
    """The gated contract: tuned never worse than the best uniform."""
    for name, result in results.items():
        assert result.cycles <= result.best_uniform_cycles, (
            f"{name}: tuned assignment ({result.cycles} cycles) lost "
            f"to the best uniform mode "
            f"({result.best_uniform_cycles} cycles)")


def render_tuner(results):
    lines = [f"{'workload':<16}" +
             "".join(f"{m.value:>16}" for m in UNIFORM_MODES) +
             f"{'tuned':>12}  chosen"]
    for name, result in results.items():
        row = f"{name:<16}"
        for mode in UNIFORM_MODES:
            row += f"{result.measured[mode.value]:>16,}"
        row += f"{result.measured['tuned']:>12,}  {result.chosen}"
        lines.append(row)
    return "\n".join(lines)


def build_payload(results, smoke=False):
    """``BENCH_coherence.json`` (``BENCH_perf.json`` schema: benchmark
    / variant / workloads, one entry per ablation point)."""
    return {
        "benchmark": "bench_coherence",
        "variant": "smoke" if smoke else "full",
        "workloads": {
            name: {
                "measured_cycles": dict(result.measured),
                "chosen": result.chosen,
                "assignment": {dev: mode.value for dev, mode
                               in sorted(result.assignment.items())},
                "cycles": result.cycles,
                "best_uniform_cycles": result.best_uniform_cycles,
                "dma_fraction": round(result.profile.dma_fraction, 4),
            }
            for name, result in results.items()
        },
        "never_worse": all(r.cycles <= r.best_uniform_cycles
                           for r in results.values()),
    }


def write_report(payload):
    out = (Path(__file__).resolve().parent.parent /
           "BENCH_coherence.json")
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


def test_autotuned_coherence(once):
    results = once(run_tuner_sweep)
    print("\n" + render_tuner(results))
    check_tuner(results)
    path = write_report(build_payload(results))
    print(f"report: {path}")
    # The ablation suite is a real ablation: all three winners differ.
    winners = set()
    for result in results.values():
        best = min(UNIFORM_MODES,
                   key=lambda m: result.measured[m.value])
        winners.add(best.value)
    assert len(winners) == 3, f"expected 3 distinct winners: {winners}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="short frames + assertions only (CI)")
    args = parser.parse_args()
    results = run_tuner_sweep(smoke=args.smoke)
    print(render_tuner(results))
    check_tuner(results)
    path = write_report(build_payload(results, smoke=args.smoke))
    print(f"report: {path}")
    print("coherence benchmark: tuned never worse than best uniform")


if __name__ == "__main__":
    main()
