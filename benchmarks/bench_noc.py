"""Ablation: NoC behaviour under the accelerator traffic patterns.

Exercises the architectural properties the paper's p2p design relies
on: decoupled DMA request/response planes, wormhole latency scaling
with distance, contention on shared memory-tile links, and the effect
of memory-tile placement.

Run:  pytest benchmarks/bench_noc.py --benchmark-only -s
"""

import numpy as np

from repro.noc import DMA_REQUEST_PLANE, Mesh2D, MessageKind, Packet
from repro.sim import Environment
from repro.runtime import EspRuntime, chain
from repro.soc import SoCConfig, build_soc

from tests.conftest import make_spec


def test_noc_saturation_under_fan_in(once):
    """All tiles DMA-ing to one corner congest its ingress links."""

    def run():
        env = Environment()
        mesh = Mesh2D(env, 4, 4)
        packets = []
        for x in range(4):
            for y in range(4):
                if (x, y) == (3, 3):
                    continue
                for _ in range(4):
                    packets.append(Packet(
                        src=(x, y), dst=(3, 3), plane=DMA_REQUEST_PLANE,
                        kind=MessageKind.DMA_REQ, payload_flits=255))
        for p in packets:
            mesh.send(p)
        env.run()
        return packets, mesh

    packets, mesh = once(run)
    latencies = np.array([p.latency for p in packets])
    uncontended = 6 * 2 + 256
    print(f"\nfan-in latency: min {latencies.min()} "
          f"mean {latencies.mean():.0f} max {latencies.max()} "
          f"(uncontended bound {uncontended})")
    assert latencies.min() >= 2 + 256       # at least one hop
    assert latencies.max() > 3 * uncontended  # congestion visible
    busiest = mesh.busiest_links(top=1)[0]
    assert busiest.dst == (3, 3)


def test_memory_tile_placement(once):
    """A centrally placed memory tile shortens DMA routes and speeds
    up a memory-bound pipeline — the floorplanning concern the ESP GUI
    exposes."""

    def run_with_memory_at(mem_coord):
        # Accelerators pinned on the middle row of a 3x3 mesh; the
        # memory tile sits either between them (1 hop to each) or at
        # the far corner (3 hops from a0).
        config = SoCConfig(cols=3, rows=3, name="placement")
        config.add_cpu((0, 0))
        config.add_memory(mem_coord)
        config.add_aux((1, 0))
        spec = make_spec(input_words=256, output_words=256, latency=10)
        config.add_accelerator((0, 1), "a0", spec)
        config.add_accelerator((2, 1), "b0", spec)
        runtime = EspRuntime(build_soc(config))
        frames = np.random.default_rng(0).uniform(0, 1, (16, 256))
        df = chain("ab", ["a0", "b0"])
        return runtime.esp_run(df, frames, mode="pipe").cycles

    def sweep():
        return {"corner": run_with_memory_at((2, 2)),
                "center": run_with_memory_at((1, 1))}

    cycles = once(sweep)
    print(f"\npipeline cycles by memory placement: {cycles}")
    assert cycles["center"] < cycles["corner"]


def test_p2p_shortens_distance_effect(once):
    """Adjacent p2p neighbours beat the DRAM round trip regardless of
    where the memory tile sits."""

    def run(mode):
        config = SoCConfig(cols=4, rows=1, name="dist")
        config.add_cpu((0, 0))
        config.add_memory((3, 0))
        spec = make_spec(input_words=256, output_words=256, latency=10)
        config.add_accelerator((1, 0), "a0", spec)
        config.add_accelerator((2, 0), "b0", spec)
        runtime = EspRuntime(build_soc(config))
        frames = np.random.default_rng(0).uniform(0, 1, (16, 256))
        return runtime.esp_run(chain("ab", ["a0", "b0"]), frames,
                               mode=mode)

    def sweep():
        return {mode: run(mode) for mode in ("pipe", "p2p")}

    results = once(sweep)
    print(f"\ncycles: pipe {results['pipe'].cycles:,} "
          f"p2p {results['p2p'].cycles:,}; "
          f"dram words: pipe {results['pipe'].dram_accesses:,} "
          f"p2p {results['p2p'].dram_accesses:,}")
    assert results["p2p"].cycles < results["pipe"].cycles
    assert results["p2p"].dram_accesses == \
        results["pipe"].dram_accesses // 2
