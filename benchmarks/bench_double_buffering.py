"""Ablation: sequential (Fig. 4) wrapper vs ping-pong double buffering.

The paper's generated wrapper iterates LOAD -> COMPUTE -> STORE
sequentially (Fig. 4); production ESP accelerators ping-pong their PLM
banks to overlap the three phases. This bench quantifies what that
buys on the paper's own classifier at several reuse factors: with
overlap the tile sustains the kernel's initiation interval, so small
reuse factors (deeply pipelined kernels) gain the most.

Run:  pytest benchmarks/bench_double_buffering.py --benchmark-only -s
"""

import dataclasses

import numpy as np

from repro.accelerators import classifier_spec
from repro.datasets import flatten_frames, generate
from repro.runtime import Dataflow, EspRuntime
from repro.soc import SoCConfig, build_soc

FRAMES = 24


def run_classifier(spec):
    config = SoCConfig(cols=2, rows=2, name="db")
    config.add_cpu((0, 0))
    config.add_memory((1, 0))
    config.add_accelerator((0, 1), "cl0", spec)
    runtime = EspRuntime(build_soc(config))
    frames, _ = generate(FRAMES, seed=0)
    return runtime.esp_run(Dataflow(name="cl", devices=["cl0"]),
                           flatten_frames(frames), mode="p2p")


def test_double_buffering_vs_sequential(once):
    def sweep():
        out = {}
        for reuse in (256, 1024, 4096):
            seq = classifier_spec(reuse_factor=reuse)
            db = dataclasses.replace(seq, double_buffered=True)
            out[reuse] = (run_classifier(seq).frames_per_second,
                          run_classifier(db).frames_per_second)
        return out

    results = once(sweep)
    print(f"\n{'reuse':>6}{'sequential fps':>16}{'ping-pong fps':>15}"
          f"{'speedup':>9}")
    for reuse, (seq_fps, db_fps) in results.items():
        print(f"{reuse:>6}{seq_fps:>16,.0f}{db_fps:>15,.0f}"
              f"{db_fps / seq_fps:>8.1f}x")

    for reuse, (seq_fps, db_fps) in results.items():
        assert db_fps > 2.5 * seq_fps
    # Kernels whose latency far exceeds their II gain the most; at the
    # smallest reuse the overlapped tile is already DMA-bound, which
    # caps its gain (the 1024-word frame load becomes the cadence).
    speedups = {reuse: db / seq for reuse, (seq, db) in results.items()}
    assert speedups[1024] > speedups[4096]


def test_outputs_identical(once):
    def run():
        seq = classifier_spec(reuse_factor=1024)
        db = dataclasses.replace(seq, double_buffered=True)
        return (run_classifier(seq).outputs, run_classifier(db).outputs)

    seq_out, db_out = once(run)
    np.testing.assert_array_equal(seq_out, db_out)
