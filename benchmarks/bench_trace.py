"""Tracing benchmark: profile the Night-Vision p2p pipeline on SoC-1.

Runs the paper's flagship application (nv0 -> cl0, p2p streaming) with
the tracer attached and exercises the whole observability stack:

- exports the run as Chrome trace-event JSON (``artifacts/trace.json``
  by default — load it in Perfetto or ``chrome://tracing``) and checks
  it against the schema validator;
- prints the flame summary and the critical-path attribution of the
  ``esp_run`` window, asserting the attribution covers >= 95% of the
  end-to-end latency;
- re-runs the identical workload on a fresh untraced runtime and
  asserts cycle counts and outputs are bit-identical — the tracer's
  zero-timing-impact contract.

Run:  pytest benchmarks/bench_trace.py --benchmark-only -s
or:   PYTHONPATH=src python benchmarks/bench_trace.py [--smoke]
"""

import argparse
import os

import numpy as np

from repro.eval import build_soc1
from repro.eval.apps import dataflow_nv_cl, nv_cl_inputs
from repro.runtime import EspRuntime
from repro.trace import (
    analyze_run,
    attach_tracer,
    flame_summary,
    validate_chrome_trace,
    write_chrome_trace,
)

#: Frames through the pipeline; the smoke variant (CI) trims the run.
BENCH_FRAMES = 16
SMOKE_FRAMES = 4

#: Minimum fraction of the esp_run window the critical-path analyzer
#: must attribute to a named group (the ISSUE acceptance bar).
COVERAGE_BAR = 0.95


def run_app(n_frames, tracing):
    """One nv->cl p2p run; returns (runtime, result, tracer|None)."""
    runtime = EspRuntime(build_soc1())
    tracer = attach_tracer(runtime.soc) if tracing else None
    frames, _ = nv_cl_inputs(n_frames, seed=0)
    result = runtime.esp_run(dataflow_nv_cl(1, 1), frames, mode="p2p")
    return runtime, result, tracer


def run_trace_benchmark(n_frames=BENCH_FRAMES,
                        trace_path="artifacts/trace.json"):
    """Traced + untraced runs, export, validation and attribution."""
    runtime, traced, tracer = run_app(n_frames, tracing=True)
    _, untraced, _ = run_app(n_frames, tracing=False)

    os.makedirs(os.path.dirname(trace_path) or ".", exist_ok=True)
    trace = write_chrome_trace(tracer, trace_path,
                               clock_mhz=runtime.soc.clock_mhz)
    return {
        "traced": traced,
        "untraced": untraced,
        "tracer": tracer,
        "trace": trace,
        "trace_path": trace_path,
        "problems": validate_chrome_trace(trace),
        "report": analyze_run(tracer),
        "clock_mhz": runtime.soc.clock_mhz,
    }


def check(results):
    assert results["problems"] == [], results["problems"]
    report = results["report"]
    assert report.coverage >= COVERAGE_BAR, (
        f"critical path attributes only {report.coverage:.1%} "
        f"of the run (bar: {COVERAGE_BAR:.0%})\n" + report.render())
    traced, untraced = results["traced"], results["untraced"]
    assert traced.cycles == untraced.cycles, (
        f"tracing perturbed the run: {traced.cycles} != "
        f"{untraced.cycles} cycles")
    assert traced.ioctl_calls == untraced.ioctl_calls
    assert (np.asarray(traced.outputs) ==
            np.asarray(untraced.outputs)).all()


def render(results):
    tracer = results["tracer"]
    lines = [flame_summary(tracer, top=12), "",
             results["report"].render(), ""]
    lines.append(
        f"exported {len(results['trace']['traceEvents'])} events "
        f"({len(tracer.spans)} spans, {len(tracer.instants)} instants, "
        f"{len(tracer.counters)} counter samples) to "
        f"{results['trace_path']}")
    lines.append(
        f"traced run: {results['traced'].cycles:,} cycles @ "
        f"{results['clock_mhz']:.0f} MHz; untraced run identical: "
        f"{results['traced'].cycles == results['untraced'].cycles}")
    return "\n".join(lines)


def test_traced_pipeline(once, tmp_path):
    results = once(run_trace_benchmark, BENCH_FRAMES,
                   str(tmp_path / "trace.json"))
    print("\n" + render(results))
    check(results)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="short run + assertions only (CI)")
    parser.add_argument("--out", default="artifacts/trace.json",
                        help="where to write the Chrome trace JSON")
    args = parser.parse_args()
    n_frames = SMOKE_FRAMES if args.smoke else BENCH_FRAMES
    results = run_trace_benchmark(n_frames, trace_path=args.out)
    print(render(results))
    check(results)
    print("tracing benchmark: all assertions passed")


if __name__ == "__main__":
    main()
