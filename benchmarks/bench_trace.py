"""Tracing benchmark: profiling, pinned overhead arms and the fleet
flight-recorder scenario.

Three sections, all deterministic where CI gates:

1. **Pipeline profiling** — the paper's flagship application (nv0 ->
   cl0, p2p streaming) with the tracer attached: Chrome trace export
   (``artifacts/trace.json`` — load it in Perfetto), schema
   validation, flame summary, and the critical-path attribution of the
   ``esp_run`` window (>= 95% coverage bar). An untraced re-run must
   be bit-identical — the zero-timing-impact contract.

2. **Pinned overhead arms** — the three ``bench_perf`` workloads
   re-run with (a) an unbounded tracer, (b) a bounded
   flight-recorder ring (``RING_CAPACITY`` records), and — for the
   serve workload — (c) ring + metrics + health monitor + an armed
   :class:`~repro.trace.FlightRecorder`. Every arm must land on the
   exact pinned seed cycle *and* event counts: recording, ring
   eviction and an armed recorder cannot move simulated time by one
   cycle. The ring arm also gates the memory bound (held records
   <= 2x capacity; eviction accounting exact). Wall-clock overhead
   percentages are reported but informational — only the pins and
   bounds gate.

3. **Fleet scenario** — the deterministic traced mini-fleet of
   :func:`repro.eval.fleet.run_traced_fleet_scenario`: per-instance
   ring tracers merged into one fleet trace
   (``artifacts/fleet_trace.json``) with router-decision instants,
   a full request waterfall reconstructed from a single router-minted
   trace ID, and a forced alert producing a postmortem artifact under
   ``artifacts/postmortems/``.

Results land in ``BENCH_trace.json`` at the repository root.

Run:  pytest benchmarks/bench_trace.py -s
or:   PYTHONPATH=src python benchmarks/bench_trace.py [--smoke]
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.eval import build_soc1
from repro.eval.apps import (
    APP_CONFIGS,
    dataflow_nv_cl,
    fresh_runtime,
    nv_cl_inputs,
)
from repro.eval.fleet import run_traced_fleet_scenario
from repro.metrics import (
    HealthMonitor,
    default_rules,
    instrument_server,
)
from repro.runtime import EspRuntime
from repro.trace import (
    FlightRecorder,
    analyze_run,
    attach_tracer,
    flame_summary,
    query_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_perf import (  # noqa: E402
    PIPE_FRAMES,
    ROUNDS,
    SEED_CYCLES,
    SEED_EVENTS,
    SMOKE_CYCLES,
    SMOKE_EVENTS,
    SMOKE_PIPE_FRAMES,
)
from bench_serve import build_server, build_trace  # noqa: E402

#: Frames through the profiling pipeline; smoke (CI) trims the run.
BENCH_FRAMES = 16
SMOKE_FRAMES = 4

#: Minimum fraction of the esp_run window the critical-path analyzer
#: must attribute to a named group (the ISSUE acceptance bar).
COVERAGE_BAR = 0.95

#: Ring capacity of the bounded arms — small enough that every
#: workload actually evicts (the bound being exercised, not vacuous).
RING_CAPACITY = 256

#: Waterfall categories one fleet trace ID must reconstruct: the
#: router decision, the serve layer, driver software, DMA, the
#: accelerator phases and the NoC.
WATERFALL_CATS = ("fleet.route", "serve.request", "serve.dispatch",
                  "runtime.irq_wait", "dma.load", "acc.compute",
                  "noc.packet")

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_trace.json"


# -- section 1: pipeline profiling ------------------------------------------

def run_app(n_frames, tracing):
    """One nv->cl p2p run; returns (runtime, result, tracer|None)."""
    runtime = EspRuntime(build_soc1())
    tracer = attach_tracer(runtime.soc) if tracing else None
    frames, _ = nv_cl_inputs(n_frames, seed=0)
    result = runtime.esp_run(dataflow_nv_cl(1, 1), frames, mode="p2p")
    return runtime, result, tracer


def run_trace_benchmark(n_frames=BENCH_FRAMES,
                        trace_path="artifacts/trace.json"):
    """Traced + untraced runs, export, validation and attribution."""
    runtime, traced, tracer = run_app(n_frames, tracing=True)
    _, untraced, _ = run_app(n_frames, tracing=False)

    os.makedirs(os.path.dirname(trace_path) or ".", exist_ok=True)
    trace = write_chrome_trace(tracer, trace_path,
                               clock_mhz=runtime.soc.clock_mhz)
    return {
        "traced": traced,
        "untraced": untraced,
        "tracer": tracer,
        "trace": trace,
        "trace_path": trace_path,
        "problems": validate_chrome_trace(trace),
        "report": analyze_run(tracer),
        "clock_mhz": runtime.soc.clock_mhz,
    }


def check(results):
    assert results["problems"] == [], results["problems"]
    report = results["report"]
    assert report.coverage >= COVERAGE_BAR, (
        f"critical path attributes only {report.coverage:.1%} "
        f"of the run (bar: {COVERAGE_BAR:.0%})\n" + report.render())
    traced, untraced = results["traced"], results["untraced"]
    assert traced.cycles == untraced.cycles, (
        f"tracing perturbed the run: {traced.cycles} != "
        f"{untraced.cycles} cycles")
    assert traced.ioctl_calls == untraced.ioctl_calls
    assert (np.asarray(traced.outputs) ==
            np.asarray(untraced.outputs)).all()


def render(results):
    tracer = results["tracer"]
    lines = [flame_summary(tracer, top=12), "",
             results["report"].render(), ""]
    lines.append(
        f"exported {len(results['trace']['traceEvents'])} events "
        f"({len(tracer.spans)} spans, {len(tracer.instants)} instants, "
        f"{len(tracer.counters)} counter samples) to "
        f"{results['trace_path']}")
    lines.append(
        f"traced run: {results['traced'].cycles:,} cycles @ "
        f"{results['clock_mhz']:.0f} MHz; untraced run identical: "
        f"{results['traced'].cycles == results['untraced'].cycles}")
    return "\n".join(lines)


# -- section 2: pinned overhead arms ----------------------------------------

def _run_pipeline(mode, n_frames, arm):
    config = APP_CONFIGS["4nv_4cl"]
    frames, _ = config.make_inputs(n_frames, seed=0)
    runtime = fresh_runtime(config)
    tracer = None
    if arm == "traced":
        tracer = attach_tracer(runtime.soc.env)
    elif arm == "ring":
        tracer = attach_tracer(runtime.soc.env, capacity=RING_CAPACITY)
    dataflow = config.build_dataflow()
    start = time.perf_counter()
    runtime.esp_run(dataflow, frames, mode=mode)
    wall = time.perf_counter() - start
    env = runtime.soc.env
    return wall, env.now, env.events_processed, tracer


def _run_serve(n_requests, frames_per_request, arm):
    runtime, server = build_server()
    tracer = None
    if arm == "traced":
        tracer = attach_tracer(runtime.soc.env)
    elif arm in ("ring", "armed"):
        tracer = attach_tracer(runtime.soc.env, capacity=RING_CAPACITY)
    monitor = None
    if arm == "armed":
        registry = instrument_server(server)
        monitor = HealthMonitor(registry, default_rules(server))
        FlightRecorder("artifacts/postmortems", tracer,
                       clock_mhz=runtime.soc.clock_mhz).arm(monitor)
    trace = build_trace(n_requests, frames_per_request)
    start = time.perf_counter()
    server.run_trace(trace)
    wall = time.perf_counter() - start
    if monitor is not None:
        monitor.evaluate()
    env = runtime.soc.env
    return wall, env.now, env.events_processed, tracer


def _arm_runner(name, smoke):
    if name == "serve":
        n_requests, frames = (1, 1) if smoke else (2, 2)
        return lambda arm: _run_serve(n_requests, frames, arm)
    mode = "p2p" if name == "p2p" else "pipe"
    n_frames = SMOKE_PIPE_FRAMES if smoke else PIPE_FRAMES
    return lambda arm: _run_pipeline(mode, n_frames, arm)


def _records_of(tracer):
    return (len(tracer.spans) + len(tracer.instants)
            + len(tracer.counters))


def measure_arms(name, smoke=False):
    """Every arm of one workload, best-of-``ROUNDS``, pins enforced."""
    run = _arm_runner(name, smoke)
    expected_cycles = (SMOKE_CYCLES if smoke else SEED_CYCLES)[name]
    expected_events = (SMOKE_EVENTS if smoke else SEED_EVENTS)[name]
    arms = ("off", "traced", "ring") + (
        ("armed",) if name == "serve" else ())
    best = {}
    tracers = {}
    for arm in arms:
        for _ in range(ROUNDS):
            wall, cycles, events, tracer = run(arm)
            if cycles != expected_cycles:
                raise AssertionError(
                    f"cycle drift on {name!r} (arm {arm!r}): {cycles} "
                    f"!= pinned {expected_cycles} — tracing, ring "
                    f"eviction and armed recorders must be "
                    f"timing-neutral")
            if events != expected_events:
                raise AssertionError(
                    f"event drift on {name!r} (arm {arm!r}): {events} "
                    f"!= pinned {expected_events}")
            best[arm] = min(best.get(arm, wall), wall)
            tracers[arm] = tracer

    unbounded = tracers["traced"]
    ring = tracers["ring"]
    records_unbounded = _records_of(unbounded)
    records_ring = _records_of(ring)
    # The memory contract of the ring: at most 2x capacity held per
    # record list, and eviction accounting exact (held + dropped ==
    # what the unbounded run recorded).
    for label, held in (("spans", len(ring.spans)),
                        ("instants", len(ring.instants)),
                        ("counters", len(ring.counters))):
        if held > 2 * RING_CAPACITY:
            raise AssertionError(
                f"ring bound violated on {name!r}: {held} {label} "
                f"held > 2x capacity {RING_CAPACITY}")
    if records_ring + ring.dropped != records_unbounded:
        raise AssertionError(
            f"ring accounting drift on {name!r}: {records_ring} held "
            f"+ {ring.dropped} dropped != {records_unbounded} "
            f"unbounded records")

    def overhead(arm):
        return round(100.0 * (best[arm] / best["off"] - 1.0), 1)

    row = {
        "cycles": expected_cycles,
        "events": expected_events,
        "wall_off_s": round(best["off"], 6),
        "wall_traced_s": round(best["traced"], 6),
        "wall_ring_s": round(best["ring"], 6),
        "overhead_traced_pct": overhead("traced"),
        "overhead_ring_pct": overhead("ring"),
        "records_unbounded": records_unbounded,
        "records_ring": records_ring,
        "dropped_ring": ring.dropped,
        "ring_memory_ratio": round(
            records_ring / records_unbounded, 3),
    }
    if "armed" in best:
        row["wall_armed_s"] = round(best["armed"], 6)
        row["overhead_armed_pct"] = overhead("armed")
    return row


# -- section 3: the fleet flight-recorder scenario --------------------------

def run_fleet_scenario(out_dir="artifacts",
                       postmortem_dir="artifacts/postmortems"):
    """Traced mini-fleet: merged trace, waterfall, forced postmortem."""
    scenario = run_traced_fleet_scenario(out_dir=postmortem_dir)
    trace = scenario["trace"]
    problems = validate_chrome_trace(trace)
    if problems:
        raise AssertionError(f"merged fleet trace invalid: {problems}")

    trace_ids = scenario["trace_ids"]
    if len(trace_ids) != len(scenario["report"].decisions):
        raise AssertionError(
            f"{len(trace_ids)} trace IDs in the merged trace != "
            f"{len(scenario['report'].decisions)} router decisions")
    # The waterfall check uses the *last* routed request: with bounded
    # rings the oldest spans are evicted by design, but the most
    # recent request must reconstruct end to end from its ID alone.
    waterfall_id = f"f-{len(trace_ids) - 1}"
    timeline = query_trace(trace, waterfall_id)
    cats = {event.cat for event in timeline.events}
    missing = [cat for cat in WATERFALL_CATS if cat not in cats]
    if missing:
        raise AssertionError(
            f"waterfall of {waterfall_id} is missing {missing}; "
            f"got {sorted(cats)}")
    if timeline.routed_to is None or timeline.latency_cycles is None:
        raise AssertionError(
            f"waterfall of {waterfall_id} lost its routing or "
            f"request span: {timeline.render(limit=10)}")
    if not any(timeline.busy_cycles.get(g) for g in
               ("dma", "compute", "noc")):
        raise AssertionError(
            f"waterfall attribution empty: {timeline.busy_cycles}")

    os.makedirs(out_dir, exist_ok=True)
    fleet_trace_path = str(Path(out_dir) / "fleet_trace.json")
    with open(fleet_trace_path, "w") as handle:
        json.dump(trace, handle)

    postmortem_path = scenario["postmortem"]
    artifact = json.loads(postmortem_path.read_text())
    if artifact["schema"] != "repro.postmortem/v1":
        raise AssertionError(f"unexpected postmortem schema: "
                             f"{artifact['schema']}")
    if artifact["alert"]["rule"] != "forced-postmortem":
        raise AssertionError(f"postmortem captured the wrong alert: "
                             f"{artifact['alert']}")
    window_spans = sum(len(spans) for spans
                       in artifact["spans"].values())
    if window_spans == 0:
        raise AssertionError("postmortem window contains no spans")

    return {
        "instances": len(scenario["fleet"].instances),
        "arrivals": len(scenario["report"].decisions),
        "trace_ids": len(trace_ids),
        "merged_events": len(trace["traceEvents"]),
        "fleet_trace": fleet_trace_path,
        "waterfall_id": waterfall_id,
        "waterfall_events": len(timeline.events),
        "waterfall_routed_to": timeline.routed_to,
        "waterfall_latency_cycles": timeline.latency_cycles,
        "waterfall_queue_cycles": timeline.queue_cycles,
        "waterfall_busy_cycles": timeline.busy_cycles,
        "postmortem": str(postmortem_path),
        "postmortem_spans": window_spans,
        "postmortem_trace_ids": len(artifact["trace_ids"]),
        "timeline": timeline,
    }


# -- report -----------------------------------------------------------------

def run_bench(smoke=False, trace_path="artifacts/trace.json"):
    n_frames = SMOKE_FRAMES if smoke else BENCH_FRAMES
    profile = run_trace_benchmark(n_frames, trace_path=trace_path)
    check(profile)
    arms = {}
    for name in ("p2p", "dma", "serve"):
        arms[name] = measure_arms(name, smoke=smoke)
    fleet = run_fleet_scenario()
    payload = {
        "benchmark": "bench_trace",
        "variant": "smoke" if smoke else "full",
        "rounds": ROUNDS,
        "ring_capacity": RING_CAPACITY,
        "pipeline": {
            "frames": n_frames,
            "cycles": profile["traced"].cycles,
            "coverage": round(profile["report"].coverage, 4),
            "trace_events": len(profile["trace"]["traceEvents"]),
            "trace_path": profile["trace_path"],
        },
        "workloads": arms,
        "fleet": {key: value for key, value in fleet.items()
                  if key != "timeline"},
    }
    return payload, profile, fleet


def write_report(payload):
    REPORT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return REPORT_PATH


def print_report(payload, profile, fleet):
    print(render(profile))
    print(f"\npinned arms ({payload['variant']}, best of "
          f"{payload['rounds']} rounds, ring={RING_CAPACITY}):")
    for name, row in payload["workloads"].items():
        armed = (f"  armed {row['overhead_armed_pct']:+.1f}%"
                 if "overhead_armed_pct" in row else "")
        print(f"  {name:6s} {row['cycles']:>7d} cycles  "
              f"traced {row['overhead_traced_pct']:+.1f}%  "
              f"ring {row['overhead_ring_pct']:+.1f}%{armed}  "
              f"ring holds {row['records_ring']}/"
              f"{row['records_unbounded']} records "
              f"({row['ring_memory_ratio']:.0%})")
    print(f"\nfleet scenario: {fleet['instances']} instances, "
          f"{fleet['arrivals']} arrivals, {fleet['trace_ids']} trace "
          f"IDs, {fleet['merged_events']} merged events -> "
          f"{fleet['fleet_trace']}")
    print(fleet["timeline"].render(limit=12))
    print(f"postmortem: {fleet['postmortem']} "
          f"({fleet['postmortem_spans']} spans, "
          f"{fleet['postmortem_trace_ids']} trace IDs in window)")


# -- pytest entry points ----------------------------------------------------

def test_traced_pipeline(once, tmp_path):
    results = once(run_trace_benchmark, BENCH_FRAMES,
                   str(tmp_path / "trace.json"))
    print("\n" + render(results))
    check(results)


# -- standalone -------------------------------------------------------------

def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short runs + assertions only (CI)")
    parser.add_argument("--out", default="artifacts/trace.json",
                        help="where to write the Chrome trace JSON")
    args = parser.parse_args()
    payload, profile, fleet = run_bench(smoke=args.smoke,
                                        trace_path=args.out)
    path = write_report(payload)
    print_report(payload, profile, fleet)
    print(f"\nreport: {path}")
    print("tracing benchmark: all assertions passed")


if __name__ == "__main__":
    main()
