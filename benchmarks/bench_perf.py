"""Simulator performance baseline: wall-clock speed at pinned cycle counts.

Unlike the other benchmarks, this one does not reproduce a paper
number — it measures the *simulator itself*: how many kernel events per
wall-clock second the discrete-event engine dispatches on three
representative workloads, while asserting that every optimization of
the hot path stays **cycle-count bit-identical** to the pinned seed
behaviour (see ``docs/performance.md`` for the performance model and
why the fast paths cannot change simulated time).

Workloads
---------

``p2p``
    The 4nv_4cl Night-Vision pipeline in point-to-point mode, 32 SVHN
    frames (seed 0) — accelerator-to-accelerator NoC traffic.
``dma``
    The same pipeline in memory-backed (``pipe``) mode — DMA-heavy,
    ~4x the event count of p2p for the same work (every hop goes
    through a memory tile).
``serve``
    The multi-tenant serving trace of ``bench_serve``: three tenants,
    two requests each, two frames per request, on one shared SoC.

Any cycle drift is a hard failure (exit code 1 / test failure): an
"optimization" that changes simulated time is a model change, not an
optimization. Event counts are reported (and pinned too — the current
fast paths dispatch exactly one ``step()`` per event, same as the
seed) so throughput is comparable across machines as events/second.

Results land in ``BENCH_perf.json`` at the repository root, an
old-vs-new comparison against the previously recorded report in
``BENCH_perf_delta.json`` next to it. Events/sec absolutes are
machine-specific; every speedup this file asserts is a *ratio of two
measurements taken on the same machine*:

- ``speedup_vs_pre_pr4`` divides by ``PRE_PR4_BASELINE_EVENTS_PER_SEC``,
  the unoptimized seed engine re-measured on the machine that recorded
  the committed report (method documented at the constant).
- ``speedup_vs_reference`` divides by the historical dev-machine row
  (``REFERENCE_EVENTS_PER_SEC``), kept for continuity with old reports.

CI gates on the *recorded* report (``--check``), not on a live run:
runner speed varies run to run, but the committed numbers — measured
once, on one machine, against a baseline measured on that same
machine — are deterministic. The live smoke run still hard-asserts
the cycle and event pins on every round.

Run:  pytest benchmarks/bench_perf.py -s
or:   PYTHONPATH=src python benchmarks/bench_perf.py [--smoke] [--check]
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.eval.apps import APP_CONFIGS, fresh_runtime

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_serve import build_server, build_trace  # noqa: E402

#: Pinned simulated-cycle counts per workload. These are the seed
#: values: the optimized kernel must land on them exactly.
SEED_CYCLES = {"p2p": 77460, "dma": 90139, "serve": 65324}
#: The same pins for the trimmed CI smoke variant.
SMOKE_CYCLES = {"p2p": 24270, "dma": 28073, "serve": 17066}
#: Kernel events dispatched per workload (one ``step()`` each).
SEED_EVENTS = {"p2p": 2762, "dma": 10274, "serve": 2015}
SMOKE_EVENTS = {"p2p": 1478, "dma": 2618, "serve": 764}

#: Frames through the 4nv_4cl pipeline (full / smoke).
PIPE_FRAMES = 32
SMOKE_PIPE_FRAMES = 8

#: events/second of the *unoptimized* seed on the development machine
#: (best of 7) — historical row, kept so speedups in old reports stay
#: interpretable. Not used for gating: it was measured on a different
#: machine than the current report.
REFERENCE_EVENTS_PER_SEC = {"p2p": 35_593, "dma": 99_651, "serve": 54_459}

#: The pre-PR-4 baseline (the seed engine, before the first hot-path
#: optimization pass) re-measured on the machine that recorded the
#: committed BENCH_perf.json: ``git worktree add <tmp> <pre-PR-4
#: commit>`` and best-of-5 runs of these exact pinned workloads (cycle
#: pins verified to hold on the old tree). Because baseline and
#: current numbers come from the same machine, ``speedup_vs_pre_pr4``
#: is a machine-consistent ratio — re-measure this row with the same
#: procedure whenever the report is regenerated on a new machine.
PRE_PR4_BASELINE_EVENTS_PER_SEC = {
    "p2p": 30_022,     # 92.0 ms for 2762 events
    "dma": 82_721,     # 124.2 ms for 10274 events
    "serve": 57_082,   # 35.3 ms for 2015 events
}

#: Regression floors for ``speedup_vs_pre_pr4`` in the recorded
#: report, enforced by ``--check`` (and CI). p2p — the workload the
#: engine rewrite targets most directly (NoC-driven, event-dominated)
#: — carries the 3x target; dma and serve recorded 2.4-2.5x, so their
#: floors sit just below that to catch any future engine regression
#: without asserting a multiple that was never reached (the remaining
#: gap there is functional numpy compute, not event cost — see the
#: cost model in docs/performance.md).
SPEEDUP_FLOORS = {"p2p": 3.0, "dma": 2.25, "serve": 2.3}

#: Timing repetitions; the minimum is reported (least-noise estimator
#: for a deterministic computation).
ROUNDS = 5

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
DELTA_PATH = REPORT_PATH.with_name("BENCH_perf_delta.json")


def run_pipeline(mode, n_frames):
    """One 4nv_4cl run; returns (wall seconds, cycles, events)."""
    config = APP_CONFIGS["4nv_4cl"]
    frames, _ = config.make_inputs(n_frames, seed=0)
    runtime = fresh_runtime(config)
    dataflow = config.build_dataflow()
    start = time.perf_counter()
    runtime.esp_run(dataflow, frames, mode=mode)
    wall = time.perf_counter() - start
    env = runtime.soc.env
    return wall, env.now, env.events_processed


def run_serve(n_requests, frames_per_request):
    """One serving trace; returns (wall seconds, cycles, events)."""
    runtime, server = build_server()
    trace = build_trace(n_requests, frames_per_request)
    start = time.perf_counter()
    server.run_trace(trace)
    wall = time.perf_counter() - start
    env = runtime.soc.env
    return wall, env.now, env.events_processed


def measure_workload(name, smoke=False):
    """Best-of-``ROUNDS`` timing of one workload, cycle-checked."""
    if name == "serve":
        run = (lambda: run_serve(1, 1)) if smoke else (
            lambda: run_serve(2, 2))
    else:
        mode = "p2p" if name == "p2p" else "pipe"
        n_frames = SMOKE_PIPE_FRAMES if smoke else PIPE_FRAMES
        run = lambda: run_pipeline(mode, n_frames)  # noqa: E731

    expected_cycles = (SMOKE_CYCLES if smoke else SEED_CYCLES)[name]
    expected_events = (SMOKE_EVENTS if smoke else SEED_EVENTS)[name]
    best = None
    for _ in range(ROUNDS):
        wall, cycles, events = run()
        if cycles != expected_cycles:
            raise AssertionError(
                f"cycle drift on workload {name!r}: simulated {cycles} "
                f"cycles, seed pinned {expected_cycles} — the hot-path "
                f"fast paths must be bit-identical in simulated time")
        if events != expected_events:
            raise AssertionError(
                f"event-count drift on workload {name!r}: dispatched "
                f"{events} events, seed pinned {expected_events}")
        best = wall if best is None else min(best, wall)
    return {
        "cycles": expected_cycles,
        "events": expected_events,
        "wall_s": round(best, 6),
        "events_per_sec": round(expected_events / best),
    }


def run_bench(smoke=False):
    """All three workloads; returns the BENCH_perf.json payload."""
    results = {}
    for name in ("p2p", "dma", "serve"):
        results[name] = measure_workload(name, smoke=smoke)
        if not smoke:
            row = results[name]
            row["speedup_vs_reference"] = round(
                row["events_per_sec"] / REFERENCE_EVENTS_PER_SEC[name], 2)
            row["speedup_vs_pre_pr4"] = round(
                row["events_per_sec"]
                / PRE_PR4_BASELINE_EVENTS_PER_SEC[name], 2)
    return {
        "benchmark": "bench_perf",
        "variant": "smoke" if smoke else "full",
        "rounds": ROUNDS,
        "reference_events_per_sec": REFERENCE_EVENTS_PER_SEC,
        "pre_pr4_baseline_events_per_sec": PRE_PR4_BASELINE_EVENTS_PER_SEC,
        "speedup_floors": SPEEDUP_FLOORS,
        "workloads": results,
    }


def load_recorded():
    """The currently recorded BENCH_perf.json, or None."""
    if not REPORT_PATH.exists():
        return None
    try:
        return json.loads(REPORT_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def build_delta(previous, payload):
    """Old-vs-new comparison of ``payload`` against ``previous``.

    Raw events/sec and wall-clock are machine- and variant-specific, so
    the row to compare across reports is the ``speedup_vs_pre_pr4``
    ratio; ``comparable`` flags whether old and new even ran the same
    workload sizes.
    """
    if previous is None:
        return {"comparable": False, "reason": "no previous report"}
    delta = {
        "comparable": previous.get("variant") == payload["variant"],
        "previous_variant": previous.get("variant"),
        "variant": payload["variant"],
        "note": ("events/sec absolutes are machine-specific; compare "
                 "the speedup ratios"),
        "workloads": {},
    }
    for name, row in payload["workloads"].items():
        old = previous.get("workloads", {}).get(name)
        if not old:
            continue
        entry = {
            "events_per_sec": {"old": old.get("events_per_sec"),
                               "new": row["events_per_sec"]},
            "wall_ms": {"old": round(old.get("wall_s", 0.0) * 1e3, 2),
                        "new": round(row["wall_s"] * 1e3, 2)},
        }
        for key in ("speedup_vs_reference", "speedup_vs_pre_pr4"):
            if key in old or key in row:
                entry[key] = {"old": old.get(key), "new": row.get(key)}
        delta["workloads"][name] = entry
    return delta


def check_recorded(payload, floors=None):
    """Failure strings for recorded speedups below their floors."""
    floors = SPEEDUP_FLOORS if floors is None else floors
    if payload is None:
        return ["no recorded BENCH_perf.json to check"]
    if payload.get("variant") != "full":
        return [f"recorded report is variant "
                f"{payload.get('variant')!r}; the speedup gate needs a "
                f"full-workload report"]
    failures = []
    for name, floor in floors.items():
        row = payload.get("workloads", {}).get(name)
        speed = None if row is None else row.get("speedup_vs_pre_pr4")
        if speed is None:
            failures.append(
                f"{name}: no recorded speedup_vs_pre_pr4")
        elif speed < floor:
            failures.append(
                f"{name}: recorded {speed}x vs pre-PR-4 baseline is "
                f"below the {floor}x floor")
    return failures


def write_report(payload):
    delta = build_delta(load_recorded(), payload)
    REPORT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    DELTA_PATH.write_text(json.dumps(delta, indent=2) + "\n")
    return REPORT_PATH


def print_report(payload):
    print(f"\nsimulator performance ({payload['variant']}, best of "
          f"{payload['rounds']} rounds):")
    for name, row in payload["workloads"].items():
        speed = row.get("speedup_vs_pre_pr4")
        extra = f"  ({speed:.2f}x vs pre-PR-4)" if speed else ""
        print(f"  {name:6s} {row['cycles']:>7d} cycles  "
              f"{row['events']:>6d} events  {row['wall_s'] * 1e3:8.1f} ms  "
              f"{row['events_per_sec']:>8d} ev/s{extra}")


# -- pytest entry points ----------------------------------------------------

def test_perf_baseline():
    """Cycle pins hold and the report is written (full workloads)."""
    payload = run_bench(smoke=False)
    path = write_report(payload)
    print_report(payload)
    print(f"  report: {path}")
    for row in payload["workloads"].values():
        assert row["events_per_sec"] > 0


# -- standalone -------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="trimmed workloads for CI")
    parser.add_argument("--check", action="store_true",
                        help="gate the *recorded* BENCH_perf.json "
                             "against the speedup floors (no "
                             "measurement; deterministic for CI)")
    args = parser.parse_args(argv)
    if args.check:
        failures = check_recorded(load_recorded())
        if failures:
            for failure in failures:
                print(f"FAIL {failure}")
            return 1
        print("recorded speedups clear every floor: " + "  ".join(
            f"{name} >= {floor}x" for name, floor
            in SPEEDUP_FLOORS.items()))
        return 0
    payload = run_bench(smoke=args.smoke)
    path = write_report(payload)
    print_report(payload)
    print(f"  report: {path}")
    print(f"  delta:  {DELTA_PATH}")
    if not args.smoke:
        for failure in check_recorded(payload):
            print(f"WARNING {failure}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
