"""Simulator performance baseline: wall-clock speed at pinned cycle counts.

Unlike the other benchmarks, this one does not reproduce a paper
number — it measures the *simulator itself*: how many kernel events per
wall-clock second the discrete-event engine dispatches on three
representative workloads, while asserting that every optimization of
the hot path stays **cycle-count bit-identical** to the pinned seed
behaviour (see ``docs/performance.md`` for the performance model and
why the fast paths cannot change simulated time).

Workloads
---------

``p2p``
    The 4nv_4cl Night-Vision pipeline in point-to-point mode, 32 SVHN
    frames (seed 0) — accelerator-to-accelerator NoC traffic.
``dma``
    The same pipeline in memory-backed (``pipe``) mode — DMA-heavy,
    ~4x the event count of p2p for the same work (every hop goes
    through a memory tile).
``serve``
    The multi-tenant serving trace of ``bench_serve``: three tenants,
    two requests each, two frames per request, on one shared SoC.

Any cycle drift is a hard failure (exit code 1 / test failure): an
"optimization" that changes simulated time is a model change, not an
optimization. Event counts are reported (and pinned too — the current
fast paths dispatch exactly one ``step()`` per event, same as the
seed) so throughput is comparable across machines as events/second.

Results land in ``BENCH_perf.json`` at the repository root. The
recorded reference numbers come from the development machine at the
time the optimization pass was made; compare ratios, not absolutes.

Run:  pytest benchmarks/bench_perf.py -s
or:   PYTHONPATH=src python benchmarks/bench_perf.py [--smoke]
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.eval.apps import APP_CONFIGS, fresh_runtime

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_serve import build_server, build_trace  # noqa: E402

#: Pinned simulated-cycle counts per workload. These are the seed
#: values: the optimized kernel must land on them exactly.
SEED_CYCLES = {"p2p": 77460, "dma": 90139, "serve": 65324}
#: The same pins for the trimmed CI smoke variant.
SMOKE_CYCLES = {"p2p": 24270, "dma": 28073, "serve": 17066}
#: Kernel events dispatched per workload (one ``step()`` each).
SEED_EVENTS = {"p2p": 2762, "dma": 10274, "serve": 2015}
SMOKE_EVENTS = {"p2p": 1478, "dma": 2618, "serve": 764}

#: Frames through the 4nv_4cl pipeline (full / smoke).
PIPE_FRAMES = 32
SMOKE_PIPE_FRAMES = 8

#: events/second of the *unoptimized* seed on the development machine
#: (best of 7) — informational, for the speedup column only.
REFERENCE_EVENTS_PER_SEC = {"p2p": 35_593, "dma": 99_651, "serve": 54_459}

#: Timing repetitions; the minimum is reported (least-noise estimator
#: for a deterministic computation).
ROUNDS = 5


def run_pipeline(mode, n_frames):
    """One 4nv_4cl run; returns (wall seconds, cycles, events)."""
    config = APP_CONFIGS["4nv_4cl"]
    frames, _ = config.make_inputs(n_frames, seed=0)
    runtime = fresh_runtime(config)
    dataflow = config.build_dataflow()
    start = time.perf_counter()
    runtime.esp_run(dataflow, frames, mode=mode)
    wall = time.perf_counter() - start
    env = runtime.soc.env
    return wall, env.now, env.events_processed


def run_serve(n_requests, frames_per_request):
    """One serving trace; returns (wall seconds, cycles, events)."""
    runtime, server = build_server()
    trace = build_trace(n_requests, frames_per_request)
    start = time.perf_counter()
    server.run_trace(trace)
    wall = time.perf_counter() - start
    env = runtime.soc.env
    return wall, env.now, env.events_processed


def measure_workload(name, smoke=False):
    """Best-of-``ROUNDS`` timing of one workload, cycle-checked."""
    if name == "serve":
        run = (lambda: run_serve(1, 1)) if smoke else (
            lambda: run_serve(2, 2))
    else:
        mode = "p2p" if name == "p2p" else "pipe"
        n_frames = SMOKE_PIPE_FRAMES if smoke else PIPE_FRAMES
        run = lambda: run_pipeline(mode, n_frames)  # noqa: E731

    expected_cycles = (SMOKE_CYCLES if smoke else SEED_CYCLES)[name]
    expected_events = (SMOKE_EVENTS if smoke else SEED_EVENTS)[name]
    best = None
    for _ in range(ROUNDS):
        wall, cycles, events = run()
        if cycles != expected_cycles:
            raise AssertionError(
                f"cycle drift on workload {name!r}: simulated {cycles} "
                f"cycles, seed pinned {expected_cycles} — the hot-path "
                f"fast paths must be bit-identical in simulated time")
        if events != expected_events:
            raise AssertionError(
                f"event-count drift on workload {name!r}: dispatched "
                f"{events} events, seed pinned {expected_events}")
        best = wall if best is None else min(best, wall)
    return {
        "cycles": expected_cycles,
        "events": expected_events,
        "wall_s": round(best, 6),
        "events_per_sec": round(expected_events / best),
    }


def run_bench(smoke=False):
    """All three workloads; returns the BENCH_perf.json payload."""
    results = {}
    for name in ("p2p", "dma", "serve"):
        results[name] = measure_workload(name, smoke=smoke)
        if not smoke:
            reference = REFERENCE_EVENTS_PER_SEC[name]
            results[name]["speedup_vs_reference"] = round(
                results[name]["events_per_sec"] / reference, 2)
    return {
        "benchmark": "bench_perf",
        "variant": "smoke" if smoke else "full",
        "rounds": ROUNDS,
        "reference_events_per_sec": REFERENCE_EVENTS_PER_SEC,
        "workloads": results,
    }


def write_report(payload):
    out = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


def print_report(payload):
    print(f"\nsimulator performance ({payload['variant']}, best of "
          f"{payload['rounds']} rounds):")
    for name, row in payload["workloads"].items():
        speed = row.get("speedup_vs_reference")
        extra = f"  ({speed:.2f}x vs reference)" if speed else ""
        print(f"  {name:6s} {row['cycles']:>7d} cycles  "
              f"{row['events']:>6d} events  {row['wall_s'] * 1e3:8.1f} ms  "
              f"{row['events_per_sec']:>8d} ev/s{extra}")


# -- pytest entry points ----------------------------------------------------

def test_perf_baseline():
    """Cycle pins hold and the report is written (full workloads)."""
    payload = run_bench(smoke=False)
    path = write_report(payload)
    print_report(payload)
    print(f"  report: {path}")
    for row in payload["workloads"].values():
        assert row["events_per_sec"] > 0


# -- standalone -------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="trimmed workloads for CI")
    args = parser.parse_args(argv)
    payload = run_bench(smoke=args.smoke)
    path = write_report(payload)
    print_report(payload)
    print(f"  report: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
