"""Table I reproduction benchmark.

Regenerates every cell of the paper's Table I ("summary of results
using the best-case configuration"): FPGA utilization, dynamic power,
and frames/s on ESP4ML / Intel i7 / Jetson TX1 for the three
applications. The printed table shows measured vs paper values.

Run:  pytest benchmarks/bench_table1.py --benchmark-only -s
"""

from repro.eval import generate_table1, render_table1
from repro.platforms import PAPER_FPS

from .conftest import BENCH_FRAMES


def test_table1(once):
    columns = once(generate_table1, n_frames=BENCH_FRAMES)
    print("\n" + render_table1(columns))

    for cluster, column in columns.items():
        paper = PAPER_FPS["esp4ml"][cluster]
        ratio = column.fps_esp4ml / paper
        # Shape check: within a factor-2 band of the paper's testbed.
        assert 0.5 < ratio < 2.0, (cluster, ratio)
        assert column.power_watts > 0


def test_table1_resources_only(once):
    """Resource/power rows alone (no simulation) — the synthesis step."""
    from repro.eval import build_soc1, build_soc2
    from repro.hls import XCVU9P
    from repro.platforms import soc_power_watts

    def synthesize():
        soc1, soc2 = build_soc1(), build_soc2()
        return (XCVU9P.utilization(soc1.resources()),
                soc_power_watts(soc1),
                XCVU9P.utilization(soc2.resources()),
                soc_power_watts(soc2))

    util1, power1, util2, power2 = once(synthesize)
    print(f"\nSoC-1: LUT {util1['luts']:.0%} FF {util1['ffs']:.0%} "
          f"BRAM {util1['brams']:.0%}  {power1:.2f} W "
          f"(paper: 48%/24%/57%, 1.70 W)")
    print(f"SoC-2: LUT {util2['luts']:.0%} FF {util2['ffs']:.0%} "
          f"BRAM {util2['brams']:.0%}  {power2:.2f} W "
          f"(paper: 19%/11%/21%, 0.98 W)")
    assert util1["brams"] > util2["brams"]
    assert power1 > power2
