#!/usr/bin/env python3
"""Check relative links in the repository's markdown documentation.

Walks every markdown link in ``README.md`` and ``docs/*.md`` (plus any
extra files given on the command line), resolves relative targets
against the containing file, and fails when the target does not exist.
Anchor fragments (``#section`` and ``file.md#section``) are validated
against the target file's headings using GitHub's slug rules (
lowercase, formatting stripped, punctuation dropped, spaces to
hyphens, ``-1``/``-2`` suffixes for duplicates); absolute URLs
(``http(s)://``, ``mailto:``) are skipped. Exit code is the number of
problems, so CI fails on any.

Usage:  python tools/check_links.py [extra.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, Set

#: Inline markdown links: [text](target). Images share the syntax.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Targets that are not filesystem paths.
EXTERNAL = re.compile(r"^(https?|ftp|mailto):")
#: ATX headings (``# ...`` through ``###### ...``).
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*(?:#+\s*)?$")
#: Inline markup stripped before slugification: emphasis, code spans,
#: and the text half of inline links.
MARKUP = re.compile(r"[*_`]|\[([^\]]*)\]\([^)]*\)")

REPO_ROOT = Path(__file__).resolve().parent.parent


def slugify(heading: str) -> str:
    """GitHub's anchor slug for one heading's text."""
    text = MARKUP.sub(lambda m: m.group(1) or "", heading)
    text = text.strip().lower()
    # Drop everything but word characters, spaces and hyphens, then
    # turn each space into a hyphen (runs are preserved by GitHub).
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path: Path) -> Set[str]:
    """Every anchor ``path`` exposes, with ``-N`` duplicate suffixes."""
    counts: Dict[str, int] = {}
    anchors: Set[str] = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if not match:
            continue
        slug = slugify(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if not seen else f"{slug}-{seen}")
    return anchors


def _rel(path: Path) -> Path:
    """Repo-relative when possible (extra files may live anywhere)."""
    try:
        return path.relative_to(REPO_ROOT)
    except ValueError:
        return path


def iter_links(path: Path):
    """Yield (line number, target) for every inline link in ``path``."""
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path, anchor_cache: Dict[Path, Set[str]]) -> list:
    problems = []
    for lineno, target in iter_links(path):
        if EXTERNAL.match(target):
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (path.parent / file_part).resolve() if file_part \
            else path
        if not resolved.exists():
            problems.append(
                f"{_rel(path)}:{lineno}: broken link "
                f"-> {target}")
            continue
        if not fragment or resolved.suffix.lower() != ".md":
            continue
        if resolved not in anchor_cache:
            anchor_cache[resolved] = heading_anchors(resolved)
        if fragment.lower() not in anchor_cache[resolved]:
            problems.append(
                f"{_rel(path)}:{lineno}: broken "
                f"anchor -> {target} (no heading slugs to "
                f"#{fragment.lower()} in "
                f"{_rel(resolved)})")
    return problems


def main(argv) -> int:
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    files += [Path(arg).resolve() for arg in argv]
    missing = [f for f in files if not f.exists()]
    for f in missing:
        print(f"checked file does not exist: {f}", file=sys.stderr)
    problems = []
    anchor_cache: Dict[Path, Set[str]] = {}
    for f in files:
        if f.exists():
            problems.extend(check_file(f, anchor_cache))
    for problem in problems:
        print(problem, file=sys.stderr)
    total = len(problems) + len(missing)
    if not total:
        print(f"{len(files)} files, all relative links and anchors "
              f"resolve")
    return total


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
