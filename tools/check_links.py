#!/usr/bin/env python3
"""Check relative links in the repository's markdown documentation.

Walks every markdown link in ``README.md`` and ``docs/*.md`` (plus any
extra files given on the command line), resolves relative targets
against the containing file, and fails when the target does not exist.
Anchors (``file.md#section``) are checked for file existence only;
absolute URLs (``http(s)://``, ``mailto:``) are skipped. Exit code is
the number of broken links, so CI fails on any.

Usage:  python tools/check_links.py [extra.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links: [text](target). Images share the syntax.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Targets that are not filesystem paths.
EXTERNAL = re.compile(r"^(https?|ftp|mailto):")

REPO_ROOT = Path(__file__).resolve().parent.parent


def iter_links(path: Path):
    """Yield (line number, target) for every inline link in ``path``."""
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path) -> list:
    problems = []
    for lineno, target in iter_links(path):
        if EXTERNAL.match(target) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            problems.append(
                f"{path.relative_to(REPO_ROOT)}:{lineno}: broken link "
                f"-> {target}")
    return problems


def main(argv) -> int:
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    files += [Path(arg).resolve() for arg in argv]
    missing = [f for f in files if not f.exists()]
    for f in missing:
        print(f"checked file does not exist: {f}", file=sys.stderr)
    problems = []
    for f in files:
        if f.exists():
            problems.extend(check_file(f))
    for problem in problems:
        print(problem, file=sys.stderr)
    total = len(problems) + len(missing)
    if not total:
        print(f"{len(files)} files, all relative links resolve")
    return total


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
